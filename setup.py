"""Setuptools shim for legacy editable installs (offline environments).

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517 --no-build-isolation`` works where the
``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
