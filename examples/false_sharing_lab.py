#!/usr/bin/env python3
"""False-sharing lab: how packing density and protocol interact.

Sweeps the padding of a per-thread counter array from fully packed (8
counters per 64-byte region — worst false sharing) to fully padded (one
counter per region — no sharing at all) and reports misses and traffic for
each protocol.  This reproduces the linear-regression story from the
paper's evaluation: padding fixes MESI in software, Protozoa-MW fixes it
in hardware with no source changes.

Run:  python examples/false_sharing_lab.py
"""

from repro.api import MemAccess, ProtocolKind, SystemConfig, simulate

CORES = 8
ITERS = 300
BASE = 0x40000


def counter_trace(core: int, stride_bytes: int):
    """Each core increments its own counter, placed stride_bytes apart."""
    addr = BASE + core * stride_bytes
    pc = 0x1000
    for _ in range(ITERS):
        yield MemAccess.read(addr, 8, pc, think=2)
        yield MemAccess.write(addr, 8, pc + 4, think=1)


def run(kind: ProtocolKind, stride: int):
    config = SystemConfig(protocol=kind, cores=CORES)
    streams = [counter_trace(core, stride) for core in range(CORES)]
    return simulate(streams, config, name=f"lab-{stride}")


def main() -> None:
    strides = [8, 16, 32, 64]  # 8,4,2,1 counters per region
    print(f"{CORES} threads x {ITERS} increments; counter stride sweep\n")
    print(f"{'stride':>7} {'sharers/region':>15} | " +
          " | ".join(f"{k.short_name:>14}" for k in ProtocolKind))
    print(f"{'':>7} {'':>15} | " +
          " | ".join(f"{'miss':>6} {'KB':>7}" for _ in ProtocolKind))
    print("-" * 90)
    for stride in strides:
        cells = []
        for kind in ProtocolKind:
            result = run(kind, stride)
            cells.append(f"{result.stats.misses:>6} "
                         f"{result.traffic_bytes() / 1024:>7.1f}")
        sharers = max(64 // stride, 1)
        print(f"{stride:>7} {sharers:>15} | " + " | ".join(cells))
    print()
    print("Fully packed (stride 8): MESI/SW ping-pong; MW is immune.")
    print("Fully padded (stride 64): every protocol behaves the same —")
    print("adaptive coherence granularity only matters when data is packed.")


if __name__ == "__main__":
    main()
