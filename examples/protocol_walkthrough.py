#!/usr/bin/env python3
"""Protocol walkthrough: the paper's Figure 4 and Figure 7 transactions.

Drives a protocol engine directly (no trace), printing every coherence
message as it flows, to show

* Figure 4 — a write miss (GETX) in Protozoa-SW: the overlapping dirty
  owner writes its whole block back and is invalidated, and the data reply
  carries only the requested words; and
* Figure 7 — the same write miss in Protozoa-MW: the overlapping dirty
  sharer writes back, the overlapping clean sharer invalidates (ACK), and
  the *non-overlapping* dirty sharer answers ACK-S and keeps writing.

Run:  python examples/protocol_walkthrough.py
"""

from repro.api import PredictorKind, ProtocolKind, SystemConfig, build_machine

REGION_BASE = 0x1000  # region 64 (0x1000/64); words at base + 8*w


def addr(word: int) -> int:
    return REGION_BASE + 8 * word


def attach_tracer(protocol):
    log = []

    def hook(mtype, src, dst, payload_words):
        data = f" +{payload_words * 8}B data" if payload_words else ""
        log.append(f"    {mtype.label:<10} node{src} -> node{dst}{data}")

    protocol.trace_hook = hook
    return log


def show(log, title):
    print(title)
    for line in log:
        print(line)
    log.clear()
    print()


def figure4() -> None:
    print("=" * 64)
    print("Figure 4: GETX handling in Protozoa-SW")
    print("=" * 64)
    # The single-word predictor makes every request exactly the accessed
    # words, matching the paper's hand-drawn figures.
    protocol = build_machine(
        SystemConfig(protocol=ProtocolKind.PROTOZOA_SW, cores=4,
                     predictor=PredictorKind.SINGLE_WORD))
    log = attach_tracer(protocol)

    # Core 1 writes words 2-6 (becomes the dirty overlapping owner).
    for w in range(2, 7):
        protocol.write(1, addr(w), 8, pc=0x10)
    show(log, "  [setup] Core-1 writes words 2-6 (owner, dirty):")

    # Core 0 issues GETX for words 0-3.
    protocol.write(0, addr(0), 8 * 4, pc=0x20)
    show(log, "  [Figure 4] Core-0 GETX words 0-3 -> owner writes back all, "
              "DATA returns only 0-3:")


def figure7() -> None:
    print("=" * 64)
    print("Figure 7: GETX handling in Protozoa-MW")
    print("=" * 64)
    protocol = build_machine(
        SystemConfig(protocol=ProtocolKind.PROTOZOA_MW, cores=4,
                     predictor=PredictorKind.SINGLE_WORD))
    log = attach_tracer(protocol)

    for w in range(2, 7):  # Core 1: overlapping dirty sharer (words 2-6)
        protocol.write(1, addr(w), 8, pc=0x10)
    protocol.read(2, addr(0), 8, pc=0x20)  # Core 2: overlapping clean sharer
    protocol.write(3, addr(7), 8, pc=0x30)  # Core 3: non-overlapping dirty
    show(log, "  [setup] C1 dirty 2-6, C2 reads word 0, C3 dirty word 7:")

    protocol.write(0, addr(0), 8 * 4, pc=0x40)
    show(log, "  [Figure 7] Core-0 GETX words 0-3 -> C1 WBACK+inv, C2 ACK, "
              "C3 ACK-S (stays owner):")

    # The punch line: C0 and C3 now both write with zero further traffic.
    protocol.write(0, addr(1), 8, pc=0x41)
    protocol.write(3, addr(7), 8, pc=0x31)
    show(log, "  [after] C0 writes word 1 and C3 writes word 7 again "
              "(no messages = concurrent writers):")


def main() -> None:
    figure4()
    figure7()


if __name__ == "__main__":
    main()
