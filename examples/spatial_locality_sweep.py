#!/usr/bin/env python3
"""Spatial-locality sweep: fixed block sizes vs adaptive granularity.

Runs two contrasting single-thread-per-core workloads —

* ``dense``:  sequential streaming (every word of every region used), and
* ``sparse``: random single-word accesses over a large footprint —

under MESI at block sizes 16/32/64/128 bytes (the paper's Table 1 axis),
then under Protozoa-MW, whose Amoeba L1 + PC predictor picks the
granularity per access site.  Dense wants the biggest block; sparse wants
the smallest; the adaptive design gets both at once, which no fixed size
can (the paper's "no application-wide optimal granularity" rows).

Run:  python examples/spatial_locality_sweep.py
"""

import itertools
import random

from repro.api import MemAccess, ProtocolKind, SystemConfig, simulate

CORES = 4
PER_CORE = 4000
FOOTPRINT = 512 * 1024


def dense_stream(core: int):
    base = 0x100_0000 * (core + 1)
    offset = 0
    while True:
        yield MemAccess.read(base + offset, 8, pc=0x10, think=3)
        offset = (offset + 8) % FOOTPRINT


def sparse_stream(core: int):
    rng = random.Random(1000 + core)
    base = 0x100_0000 * (core + 1)
    words = FOOTPRINT // 8
    while True:
        yield MemAccess.read(base + rng.randrange(words) * 8, 8, pc=0x20, think=3)


def mixed_stream(core: int):
    """Half dense, half sparse — the per-site adaptivity showcase."""
    dense, sparse = dense_stream(core), sparse_stream(core)
    while True:
        for _ in range(8):
            yield next(dense)
        for _ in range(8):
            yield next(sparse)


def run(make_stream, config):
    streams = [itertools.islice(make_stream(core), PER_CORE) for core in range(CORES)]
    return simulate(streams, config, name="sweep")


def main() -> None:
    workloads = [("dense", dense_stream), ("sparse", sparse_stream),
                 ("mixed", mixed_stream)]
    print(f"{'workload':>9} {'config':>12} {'mpki':>8} {'used%':>7} {'KB':>9}")
    print("-" * 50)
    for name, make in workloads:
        for block in (16, 32, 64, 128):
            config = SystemConfig(protocol=ProtocolKind.MESI,
                                  cores=CORES).with_block_bytes(block)
            r = run(make, config)
            print(f"{name:>9} {'MESI-' + str(block):>12} {r.mpki():>8.2f} "
                  f"{100 * r.used_fraction():>6.1f}% {r.traffic_bytes() // 1024:>9}")
        config = SystemConfig(protocol=ProtocolKind.PROTOZOA_MW, cores=CORES)
        r = run(make, config)
        buckets = r.block_size_buckets()
        print(f"{name:>9} {'Protozoa-MW':>12} {r.mpki():>8.2f} "
              f"{100 * r.used_fraction():>6.1f}% {r.traffic_bytes() // 1024:>9}"
              f"   blocks: " + " ".join(f"{k}w={v:.0%}" for k, v in buckets.items()))
        print()


if __name__ == "__main__":
    main()
