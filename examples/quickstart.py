#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 OpenMP counter example.

Two threads each increment their own counter, but both counters live in
the same 64-byte cache line:

    volatile int Item[MAX_THREADS];
    void worker(int index) { for (i = 0; i < ITER; i++) Item[index]++; }

Under MESI the line ping-pongs between the cores on every increment.
Protozoa-SW moves only the needed word but still invalidates at region
granularity, so the ping-pong remains.  Protozoa-MW lets both cores keep
their own word cached for writing — after warm-up, no misses and no
coherence traffic at all.

Run:  python examples/quickstart.py
"""

from repro.api import MemAccess, ProtocolKind, SystemConfig, simulate

ITERS = 500
THREADS = 2
ITEM_BASE = 0x8000  # both counters in one 64-byte region


def worker_trace(index: int):
    """The memory accesses of `for (...) Item[index]++`."""
    addr = ITEM_BASE + index * 8
    pc = 0x400100
    for _ in range(ITERS):
        yield MemAccess.read(addr, 8, pc, think=2)  # load Item[index]
        yield MemAccess.write(addr, 8, pc + 4, think=1)  # store Item[index]


def main() -> None:
    print(f"Figure 1 counter example: {THREADS} threads x {ITERS} increments,"
          f" counters share one region\n")
    header = f"{'protocol':>10} {'misses':>8} {'invalidations':>14} " \
             f"{'traffic(B)':>11} {'exec cycles':>12}"
    print(header)
    print("-" * len(header))
    baseline = None
    for kind in ProtocolKind:
        config = SystemConfig(protocol=kind, cores=max(THREADS, 2))
        streams = [worker_trace(i) for i in range(THREADS)]
        result = simulate(streams, config, name="counter")
        stats = result.stats
        if kind is ProtocolKind.MESI:
            baseline = stats.misses or 1
        print(f"{kind.short_name:>10} {stats.misses:>8} "
              f"{stats.invalidations_sent:>14} {result.traffic_bytes():>11} "
              f"{result.exec_cycles():>12}")
    print()
    print("MESI/SW ping-pong on every increment; Protozoa-MW caches both")
    print("words for writing simultaneously and eliminates the misses "
          f"(MESI had {baseline}).")


if __name__ == "__main__":
    main()
