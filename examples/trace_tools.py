#!/usr/bin/env python3
"""Trace tooling tour: dump, profile, and replay a workload trace.

Shows the library's trace pipeline end-to-end:

1. generate the synthetic `histogram` trace and save it to disk
   (the same text format an external Pin-style tool could produce);
2. profile it protocol-independently (sharing census, spatial density);
3. replay the identical trace under MESI and Protozoa-MW and compare.

Run:  python examples/trace_tools.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    ProtocolKind,
    SystemConfig,
    build_streams,
    load_trace,
    profile_streams,
    save_trace,
    simulate,
)

WORKLOAD = "histogram"
CORES = 8
PER_CORE = 1500


def main() -> None:
    streams = build_streams(WORKLOAD, cores=CORES, per_core=PER_CORE)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{WORKLOAD}.trace"
        count = save_trace(streams, path)
        replayable = load_trace(path)
    print(f"1. dumped {count} records of '{WORKLOAD}' "
          f"({CORES} cores x {PER_CORE}) and read them back\n")

    profile = profile_streams(replayable)
    print("2. protocol-independent profile:")
    for key, value in profile.summary().items():
        print(f"   {key:>14}: {value}")
    print(f"   -> {profile.falsely_shared_fraction:.1%} of touched regions "
          "are falsely shared (packed per-thread bins)\n")

    print("3. identical trace under two protocols:")
    print(f"   {'protocol':>10} {'misses':>8} {'traffic(B)':>11} {'used%':>7}")
    for kind in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"{WORKLOAD}.trace"
            save_trace(build_streams(WORKLOAD, cores=CORES,
                                     per_core=PER_CORE), path)
            trace = load_trace(path)
        result = simulate(trace, SystemConfig(protocol=kind, cores=CORES),
                          name=WORKLOAD)
        print(f"   {kind.short_name:>10} {result.stats.misses:>8} "
              f"{result.traffic_bytes():>11} "
              f"{100 * result.used_fraction():>6.1f}%")
    print("\nProtozoa-MW ships fewer bytes and keeps the falsely-shared "
          "bins cached for writing.")


if __name__ == "__main__":
    main()
