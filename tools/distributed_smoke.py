#!/usr/bin/env python3
"""CI smoke test for multi-host sweeps (the ``distributed-smoke`` job).

End to end, through the real CLI entry points:

1. start ``repro serve`` on an ephemeral port — the service doubles as
   the fleet's shared blob store (``/blob/<key>`` endpoints);
2. run a single-process ``repro report`` as the byte-identity reference;
3. run **two concurrent** ``repro report --journal <shared> --store
   http://...`` workers over the same matrix: they lease specs from the
   shared journal's claim directory, publish results to the service's
   store, and absorb each other's completions;
4. assert both workers' reports are byte-identical to the reference;
5. assert the fleet divided the work (no spec simulated twice) and the
   shared store actually served blobs across processes
   (``repro_service_blob_hits_total`` > 0).

Exit status 0 on success; any failure prints a diagnosis and exits 1.

Usage: python tools/distributed_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
WORKLOADS = "histogram,kmeans"
CORES, SCALE = 4, 200

SUMMARY = re.compile(
    r"sweep shared via .*: (\d+) run\(s\) computed here, "
    r"(\d+) absorbed from other workers, (\d+) lease takeover\(s\)")


def fail(message: str) -> "NoReturn":  # noqa: F821 — py3.10 friendly
    print(f"distributed-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def report_cmd(out: Path, journal: Path = None, store: str = None):
    cmd = [sys.executable, "-m", "repro", "report", "--out", str(out),
           "--cores", str(CORES), "--scale", str(SCALE), "--jobs", "1"]
    if journal is not None:
        cmd += ["--journal", str(journal)]
    if store is not None:
        cmd += ["--store", store]
    return cmd


def metrics(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/metrics", timeout=30) as resp:
        return json.loads(resp.read().decode("utf-8"))


def counter_total(counters: dict, name: str) -> int:
    return sum(value for key, value in counters.items()
               if key.split("{")[0] == name)


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="repro-distributed-smoke-"))
    base_env = dict(os.environ,
                    PYTHONPATH=str(REPO / "src"),
                    REPRO_WORKLOADS=WORKLOADS,
                    REPRO_TRACE_CACHE_DIR=str(scratch / "traces"))
    for name in ("REPRO_FAULTS", "REPRO_STORE", "REPRO_OBS"):
        base_env.pop(name, None)

    serve_env = dict(base_env,
                     REPRO_CACHE_DIR=str(scratch / "service-cache"))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(scratch / "state")],
        env=serve_env, text=True, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT)
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if match is None:
            fail(f"serve printed no URL banner: {banner!r}")
        url = match.group(0)
        print(f"distributed-smoke: shared store at {url}")

        # The single-process reference every worker must reproduce.
        ref_env = dict(base_env,
                       REPRO_CACHE_DIR=str(scratch / "reference-cache"))
        ref_path = scratch / "reference.txt"
        reference = subprocess.run(report_cmd(ref_path), env=ref_env,
                                   text=True, capture_output=True,
                                   timeout=900)
        if reference.returncode != 0:
            fail(f"reference report failed:\n{reference.stderr}")
        ref_bytes = ref_path.read_bytes()
        print(f"distributed-smoke: reference report: {len(ref_bytes)} bytes")

        # Two workers, one journal, one remote store — started together.
        journal = scratch / "journal.jsonl"
        outs = [scratch / "worker1.txt", scratch / "worker2.txt"]
        workers = [subprocess.Popen(report_cmd(out, journal=journal,
                                               store=url),
                                    env=dict(base_env), text=True,
                                    stdout=subprocess.PIPE,
                                    stderr=subprocess.PIPE)
                   for out in outs]
        executed = takeovers = 0
        for index, worker in enumerate(workers, start=1):
            _, stderr = worker.communicate(timeout=900)
            if worker.returncode != 0:
                fail(f"worker {index} failed:\n{stderr}")
            match = SUMMARY.search(stderr)
            if match is None:
                fail(f"worker {index} printed no sharing summary:\n{stderr}")
            ran, absorbed, taken = (int(g) for g in match.groups())
            print(f"distributed-smoke: worker {index}: {ran} computed, "
                  f"{absorbed} absorbed, {taken} takeover(s)")
            executed += ran
            takeovers += taken

        for out in outs:
            if out.read_bytes() != ref_bytes:
                fail(f"{out.name} differs from the single-process reference")
        print("distributed-smoke: both worker reports byte-identical "
              "to the reference")

        cells = len(list((scratch / "service-cache").rglob("*.json")))
        if takeovers != 0:
            fail(f"{takeovers} lease takeover(s) in a healthy fleet")
        if executed != cells:
            fail(f"fleet simulated {executed} run(s) for {cells} distinct "
                 "cells — the leases did not divide the work")
        print(f"distributed-smoke: {cells} cells simulated exactly once "
              "across the fleet")

        counters = metrics(url)["counters"]
        hits = counter_total(counters, "repro_service_blob_hits_total")
        puts = counter_total(counters, "repro_service_blob_puts_total")
        if puts == 0:
            fail("workers never published a blob to the shared store")
        if hits == 0:
            fail("shared store served zero blob hits — workers did not "
                 "share results")
        print(f"distributed-smoke: shared store: {puts} blob put(s), "
              f"{hits} blob hit(s) across workers")
        print("distributed-smoke: PASS")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
