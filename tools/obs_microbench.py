#!/usr/bin/env python
"""Micro-benchmark of per-event observability recording cost.

Isolates the three recording strategies the simulator can be in, doing
the same logical work per event (one counter bump + one histogram
observation), without any simulation around them:

* ``disabled`` — the zero-cost-off shape: one attribute load and an
  ``is None`` test per event, nothing recorded;
* ``scratch``  — the deferred fast path: a preassigned
  ``CounterScratch`` slot add plus a ``BoundHistogram`` value-indexed
  add per event, folded into the registry once at the end;
* ``legacy``   — the eager path the fast path replaced:
  ``MetricsRegistry.inc`` (label formatting + dict upsert) plus
  ``HistogramData.observe`` per event.

The scratch and legacy registries must dump byte-identically — the
deferred path is an optimization, not a different metric — and the run
exits nonzero if they do not, which is what makes this suitable as a CI
smoke step.  Prints a JSON report (ns/event per mode + ratios).

Usage: ``python tools/obs_microbench.py [--n 2000000]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    from repro.obs.metrics import MetricsRegistry
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.obs.metrics import MetricsRegistry

#: Deterministic value stream with a realistic spread of small ints
#: (hop counts / flit counts are single digits to low tens).
VALUES = [(i * 7) % 23 for i in range(1024)]


def bench_disabled(n: int) -> tuple:
    hook = None
    values = VALUES
    start = time.perf_counter()
    for i in range(n):
        if hook is not None:
            hook(values[i & 1023])
    return time.perf_counter() - start, MetricsRegistry()


def bench_scratch(n: int) -> tuple:
    registry = MetricsRegistry()
    scratch = registry.counter_scratch()
    slot = scratch.slot("repro_txn_total", op="read", outcome="hit")
    slots = scratch.slots
    counts = registry.bound_histogram("repro_message_hops",
                                      max_value=max(VALUES)).counts
    values = VALUES
    start = time.perf_counter()
    for i in range(n):
        slots[slot] += 1
        counts[values[i & 1023]] += 1
    registry.fold_pending()
    return time.perf_counter() - start, registry


def bench_legacy(n: int) -> tuple:
    registry = MetricsRegistry()
    inc = registry.inc
    observe = registry.histogram("repro_message_hops").observe
    values = VALUES
    start = time.perf_counter()
    for i in range(n):
        inc("repro_txn_total", op="read", outcome="hit")
        observe(values[i & 1023])
    return time.perf_counter() - start, registry


MODES = {
    "disabled": bench_disabled,
    "scratch": bench_scratch,
    "legacy": bench_legacy,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2_000_000,
                        help="events per mode (default 2,000,000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per mode (default 3)")
    args = parser.parse_args(argv)

    report = {"events": args.n, "repeats": args.repeats, "modes": {}}
    dumps = {}
    for mode, fn in MODES.items():
        best = None
        for _ in range(max(1, args.repeats)):
            seconds, registry = fn(args.n)
            if best is None or seconds < best:
                best = seconds
        dumps[mode] = registry.to_dict()
        report["modes"][mode] = {
            "seconds": round(best, 4),
            "ns_per_event": round(best / args.n * 1e9, 1),
        }

    modes = report["modes"]
    report["scratch_vs_legacy_speedup"] = round(
        modes["legacy"]["ns_per_event"] / modes["scratch"]["ns_per_event"], 2)
    report["scratch_tax_ns"] = round(
        modes["scratch"]["ns_per_event"] - modes["disabled"]["ns_per_event"],
        1)
    equivalent = (json.dumps(dumps["scratch"], sort_keys=True)
                  == json.dumps(dumps["legacy"], sort_keys=True))
    report["scratch_equals_legacy"] = equivalent
    print(json.dumps(report, indent=2))
    if not equivalent:
        print("FAIL: scratch-folded registry dump differs from the eager "
              "path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
