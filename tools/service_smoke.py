#!/usr/bin/env python3
"""CI smoke test for the sweep service (the ``service-smoke`` job).

End to end, through the real CLI entry points:

1. start ``repro serve`` on an ephemeral port in a subprocess;
2. submit a two-protocol sweep with ``repro submit --wait`` and save
   the result matrix;
3. assert the matrix byte-matches a direct in-process
   ``repro.api.sweep`` of the same grid (separate result cache, so the
   service actually computed its copy);
4. re-submit the identical sweep and assert it is answered from cache
   with **zero** new engine executions.

Exit status 0 on success; any failure prints a diagnosis and exits 1.

Usage: python tools/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
WORKLOADS = "histogram,kmeans"
PROTOCOLS = "mesi,mw"
CORES, SCALE = 4, 300


def fail(message: str) -> "NoReturn":  # noqa: F821 — py3.10 friendly
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def cli(args, env, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          env=env, text=True, capture_output=True,
                          timeout=600, **kwargs)


def health(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/health", timeout=30) as resp:
        return json.loads(resp.read().decode("utf-8"))


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    env = dict(os.environ,
               PYTHONPATH=str(REPO / "src"),
               REPRO_CACHE_DIR=str(scratch / "service-cache"),
               REPRO_JOBS="2")
    env.pop("REPRO_FAULTS", None)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(scratch / "state")],
        env=env, text=True, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT)
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if match is None:
            fail(f"serve printed no URL banner: {banner!r}")
        url = match.group(0)
        print(f"service-smoke: serving at {url}")

        submit = ["submit", "--url", url, "--workloads", WORKLOADS,
                  "--protocol", PROTOCOLS, "--cores", str(CORES),
                  "--scale", str(SCALE)]
        matrix_path = scratch / "matrix.json"
        first = cli(submit + ["--wait", "--out", str(matrix_path)], env)
        print(first.stdout, end="")
        if first.returncode != 0:
            fail(f"submit --wait failed:\n{first.stdout}\n{first.stderr}")
        if "queued" not in first.stdout:
            fail(f"first submission should queue, got:\n{first.stdout}")

        # The service's matrix must byte-match a direct repro.api.sweep
        # of the same grid, computed against a *separate* result cache.
        os.environ["REPRO_CACHE_DIR"] = str(scratch / "reference-cache")
        os.environ["REPRO_JOBS"] = "2"
        sys.path.insert(0, str(REPO / "src"))
        from repro.api import RunSpec, parse_protocol, sweep

        specs = [RunSpec(workload=workload, protocol=parse_protocol(name),
                         cores=CORES, per_core=SCALE, seed=0)
                 for workload in WORKLOADS.split(",")
                 for name in PROTOCOLS.split(",")]
        reference = {spec.digest(): result.to_dict()
                     for spec, result in sweep(specs).items()}
        served = {RunSpec.from_payload(cell["spec"]).digest(): cell["result"]
                  for cell in json.loads(matrix_path.read_text())["results"]}
        if served != reference:
            fail("service matrix does not match direct repro.api.sweep")
        print(f"service-smoke: matrix of {len(served)} cells byte-matches "
              "direct sweep")

        executed_before = health(url)["engine"]["executed"]
        second = cli(submit, env)
        print(second.stdout, end="")
        if second.returncode != 0:
            fail(f"re-submit failed:\n{second.stdout}\n{second.stderr}")
        if "served from cache" not in second.stdout:
            fail(f"re-submission was not a cache hit:\n{second.stdout}")
        executed_after = health(url)["engine"]["executed"]
        if executed_after != executed_before:
            fail(f"re-submission ran the engine: executed went "
                 f"{executed_before} -> {executed_after}")
        print("service-smoke: re-submission served from cache, "
              "zero new engine executions")

        jobs = cli(["jobs", "--url", url], env)
        if jobs.returncode != 0 or "done" not in jobs.stdout:
            fail(f"jobs listing failed:\n{jobs.stdout}\n{jobs.stderr}")
        print("service-smoke: PASS")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
