#!/usr/bin/env python3
"""Lint: examples and docs must import only the public API surface.

Everything user-facing — ``examples/*.py`` and the fenced python blocks
in ``README.md`` / ``docs/*.md`` — may import from ``repro`` or
``repro.api`` only.  Deep module paths (``repro.system.machine``,
``repro.trace.io``, ...) are implementation detail: showing them in
docs re-freezes layouts the facade exists to keep movable.

Also rejects the deprecated cache constructors: ``ResultCache`` /
``TraceCache`` calls that pass a path positionally or via ``root=`` are
shims over :class:`repro.api.FsStore` — user-facing material must show
the store-first surface (``ResultCache(store=FsStore(path))`` or
``configure_store("file:///path")``).

Exit status 1 lists every violation as ``file:line: import``.

Usage: python tools/check_public_surface.py [repo_root]
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

ALLOWED = {"repro", "repro.api"}

FENCE = re.compile(r"^```(\w*)\s*$")


def bad_imports(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro") and alias.name not in ALLOWED:
                    yield node.lineno, f"import {alias.name}"
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and module.startswith("repro") \
                    and module not in ALLOWED:
                yield node.lineno, f"from {module} import ..."


#: Cache constructors whose legacy path argument is a deprecation shim.
CACHE_CLASSES = {"ResultCache", "TraceCache"}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def deprecated_cache_calls(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    """``ResultCache(path)`` / ``TraceCache(root=...)`` style calls."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in CACHE_CLASSES:
            continue
        if node.args:
            yield (node.lineno,
                   f"{name}(<path>) positional root is deprecated — "
                   f"use {name}(store=FsStore(path))")
        for keyword in node.keywords:
            if keyword.arg in ("root", "dir", "cache_dir"):
                yield (node.lineno,
                       f"{name}({keyword.arg}=...) is deprecated — "
                       f"use {name}(store=FsStore(path))")


def check_python_source(source: str, label: str,
                        line_offset: int = 0) -> List[str]:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # Doc snippets may be deliberately elided (``...``); skip what
        # does not parse rather than failing the build over prose.
        return []
    findings = list(bad_imports(tree)) + list(deprecated_cache_calls(tree))
    return [f"{label}:{line + line_offset}: {what}"
            for line, what in sorted(findings)]


def python_blocks(text: str) -> Iterator[Tuple[int, str]]:
    """(starting line, source) for each fenced ``python`` block."""
    lines = text.splitlines()
    block: List[str] = []
    start = 0
    language = None
    for number, line in enumerate(lines, start=1):
        fence = FENCE.match(line.strip())
        if fence is None:
            if language == "python":
                block.append(line)
            continue
        if language is None:
            language = fence.group(1) or "text"
            start = number
            block = []
        else:
            if language == "python" and block:
                yield start, "\n".join(block)
            language = None
    return


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    problems: List[str] = []
    for path in sorted((root / "examples").glob("*.py")):
        problems += check_python_source(path.read_text(encoding="utf-8"),
                                        str(path.relative_to(root)))
    doc_files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    for path in doc_files:
        if not path.exists():
            continue
        for start, source in python_blocks(path.read_text(encoding="utf-8")):
            problems += check_python_source(
                source, str(path.relative_to(root)), line_offset=start)
    if problems:
        print("public-surface violations (import only repro / repro.api):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("public surface clean: examples and docs import only repro/repro.api")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
