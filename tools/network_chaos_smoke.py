#!/usr/bin/env python3
"""CI smoke test for coordinator outages (the ``network-chaos-smoke`` job).

End to end, through the real CLI entry points:

1. start ``repro serve`` on an ephemeral port; record the single-process
   reference report every later phase must reproduce byte-for-byte;
2. run a worker over ``--store tiered+http://...?local=DIR`` with the
   network fault sites armed (``store-get-error`` / ``store-put-stall``
   / ``store-conn-refused``) **and** kill the coordinator mid-sweep,
   restarting it a couple of seconds later — injected weather plus a
   real outage.  The tier spools unflushed writes and serves reads
   locally; the worker must finish with a byte-identical report;
3. audit the tier with ``repro doctor --store tiered+...`` once the
   coordinator is back: the audit drains the spool to the remote and
   must find zero quarantine leaks or structural problems;
4. cold-local / warm-remote: a second worker with a *fresh* local tier
   absorbs the whole sweep from the coordinator — zero cells computed;
5. warm-local / unreachable-remote: stop the coordinator for good and
   run a third worker against the warmed tier — still byte-identical,
   still zero cells computed, remote completely dark.

A fault-site firing report (token counts, phase outcomes) is written to
``network-chaos-report.json`` for the CI artifact upload.

Exit status 0 on success; any failure prints a diagnosis and exits 1.

Usage: python tools/network_chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
WORKLOADS = "histogram,kmeans"
CORES, SCALE = 4, 200
FAULTS = ("store-get-error:n=2:every=3;store-put-stall:n=1:ms=50;"
          "store-conn-refused:n=1:every=5")
NETWORK_SITES = ("store-get-error", "store-put-stall", "store-conn-refused")

SUMMARY = re.compile(
    r"sweep shared via .*: (\d+) run\(s\) computed here, "
    r"(\d+) absorbed from other workers, (\d+) lease takeover\(s\)")

REPORT: dict = {"phases": {}, "fired": {}}


def fail(message: str) -> "NoReturn":  # noqa: F821 — py3.10 friendly
    REPORT["ok"] = False
    REPORT["failure"] = message
    _write_report()
    print(f"network-chaos-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _write_report() -> None:
    with open("network-chaos-report.json", "w") as fh:
        json.dump(REPORT, fh, indent=2, sort_keys=True)
        fh.write("\n")


def report_cmd(out: Path, journal: Path, store: str):
    return [sys.executable, "-m", "repro", "report", "--out", str(out),
            "--cores", str(CORES), "--scale", str(SCALE), "--jobs", "1",
            "--journal", str(journal), "--store", store]


def start_serve(env: dict, port: int = 0):
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--state-dir", env["_STATE_DIR"]],
        env={k: v for k, v in env.items() if not k.startswith("_")},
        text=True, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    banner = server.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if match is None:
        server.kill()
        fail(f"serve printed no URL banner: {banner!r}")
    return server, match.group(0), int(match.group(1))


def stop_serve(server) -> None:
    server.terminate()
    try:
        server.wait(timeout=10)
    except subprocess.TimeoutExpired:
        server.kill()


def summary_of(stderr: str):
    match = SUMMARY.search(stderr)
    if match is None:
        fail(f"worker printed no sharing summary:\n{stderr}")
    return tuple(int(group) for group in match.groups())


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="repro-network-chaos-"))
    base_env = dict(os.environ,
                    PYTHONPATH=str(REPO / "src"),
                    REPRO_WORKLOADS=WORKLOADS,
                    REPRO_TRACE_CACHE_DIR=str(scratch / "traces"))
    for name in ("REPRO_FAULTS", "REPRO_FAULTS_DIR", "REPRO_STORE",
                 "REPRO_OBS"):
        base_env.pop(name, None)

    serve_env = dict(base_env,
                     REPRO_CACHE_DIR=str(scratch / "service-cache"),
                     REPRO_TRACE_CACHE_DIR=str(scratch / "service-traces"),
                     _STATE_DIR=str(scratch / "state"))
    server, url, port = start_serve(serve_env)
    try:
        print(f"network-chaos-smoke: coordinator at {url}")

        # The single-process reference every phase must reproduce.
        ref_env = dict(base_env,
                       REPRO_CACHE_DIR=str(scratch / "reference-cache"))
        ref_path = scratch / "reference.txt"
        reference = subprocess.run(
            [sys.executable, "-m", "repro", "report", "--out",
             str(ref_path), "--cores", str(CORES), "--scale", str(SCALE),
             "--jobs", "1"],
            env=ref_env, text=True, capture_output=True, timeout=900)
        if reference.returncode != 0:
            fail(f"reference report failed:\n{reference.stderr}")
        ref_bytes = ref_path.read_bytes()
        print(f"network-chaos-smoke: reference: {len(ref_bytes)} bytes")

        # Phase 1: faulted worker through a tiered store, coordinator
        # killed mid-sweep and restarted.
        journal = scratch / "journal.jsonl"
        budget = scratch / "fault-budget"
        tier1 = scratch / "tier1"
        tiered_url = f"tiered+{url}?local={tier1}"
        env1 = dict(base_env, REPRO_FAULTS=FAULTS,
                    REPRO_FAULTS_DIR=str(budget))
        worker = subprocess.Popen(
            report_cmd(scratch / "w1.txt", journal, tiered_url),
            env=env1, text=True, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE)

        deadline = time.monotonic() + 600
        while time.monotonic() < deadline:
            if worker.poll() is not None:
                break  # finished before the flap: identity still checked
            if journal.exists() and journal.read_text().count("\n") >= 1:
                break
            time.sleep(0.1)
        flapped = worker.poll() is None
        if flapped:
            server.kill()
            server.wait(timeout=10)
            print("network-chaos-smoke: coordinator KILLED mid-sweep")
            time.sleep(2.0)
            server, url2, _ = start_serve(serve_env, port=port)
            if url2 != url:
                fail(f"coordinator came back at {url2}, expected {url}")
            print("network-chaos-smoke: coordinator restarted")
        stdout, stderr = worker.communicate(timeout=900)
        if worker.returncode != 0:
            fail(f"faulted worker failed (rc {worker.returncode}):\n{stderr}")
        if (scratch / "w1.txt").read_bytes() != ref_bytes:
            fail("faulted worker report differs from the reference")
        executed1, absorbed1, takeovers1 = summary_of(stderr)
        fired = {site: len(list(budget.glob(f"{site}.*")))
                 for site in NETWORK_SITES}
        REPORT["fired"] = fired
        if sum(fired.values()) == 0:
            fail("no network fault site ever fired — the rehearsal was idle")
        spooled_after = len(list((tier1 / "spool").glob("*"))) \
            if (tier1 / "spool").is_dir() else 0
        REPORT["phases"]["faulted"] = {
            "executed": executed1, "absorbed": absorbed1,
            "takeovers": takeovers1, "coordinator_flapped": flapped,
            "spool_remaining_at_exit": spooled_after}
        print(f"network-chaos-smoke: faulted worker byte-identical "
              f"({executed1} computed, flap={'yes' if flapped else 'no'}, "
              f"fired={fired}, {spooled_after} spooled at exit)")

        # Phase 2: doctor the tier — drains the spool to the healthy
        # remote and must find zero quarantine leaks.
        doctor = subprocess.run(
            [sys.executable, "-m", "repro", "doctor", "--store",
             tiered_url],
            env=dict(base_env), text=True, capture_output=True, timeout=300)
        if doctor.returncode != 0:
            fail(f"doctor found problems in the tier:\n{doctor.stdout}")
        leftover = len(list((tier1 / "spool").glob("*"))) \
            if (tier1 / "spool").is_dir() else 0
        if leftover:
            fail(f"{leftover} spooled write(s) survived a healthy reconnect")
        REPORT["phases"]["doctor"] = {"ok": True, "spool_drained": True}
        print("network-chaos-smoke: doctor clean, spool drained")

        # Phase 3: cold local tier, warm remote — zero simulations.
        tier2 = scratch / "tier2"
        cold = subprocess.run(
            report_cmd(scratch / "w2.txt", journal,
                       f"tiered+{url}?local={tier2}"),
            env=dict(base_env), text=True, capture_output=True, timeout=900)
        if cold.returncode != 0:
            fail(f"cold-local worker failed:\n{cold.stderr}")
        if (scratch / "w2.txt").read_bytes() != ref_bytes:
            fail("cold-local worker report differs from the reference")
        executed2, absorbed2, _ = summary_of(cold.stderr)
        if executed2 != 0:
            fail(f"cold-local/warm-remote worker re-simulated {executed2} "
                 "cell(s) — the remote read-through failed")
        REPORT["phases"]["cold_local_warm_remote"] = {
            "executed": executed2, "absorbed": absorbed2}
        print(f"network-chaos-smoke: cold-local worker absorbed "
              f"{absorbed2} cell(s), computed 0")

        # Phase 4: warm local tier, remote gone for good.
        stop_serve(server)
        server = None
        dark = subprocess.run(
            report_cmd(scratch / "w3.txt", journal,
                       f"tiered+{url}?local={tier2}"),
            env=dict(base_env), text=True, capture_output=True, timeout=900)
        if dark.returncode != 0:
            fail(f"warm-local worker failed with the remote dark:\n"
                 f"{dark.stderr}")
        if (scratch / "w3.txt").read_bytes() != ref_bytes:
            fail("warm-local worker report differs from the reference")
        executed3, absorbed3, _ = summary_of(dark.stderr)
        if executed3 != 0:
            fail(f"warm-local/unreachable-remote worker re-simulated "
                 f"{executed3} cell(s) — the local tier did not serve")
        REPORT["phases"]["warm_local_dark_remote"] = {
            "executed": executed3, "absorbed": absorbed3}
        print(f"network-chaos-smoke: warm-local worker survived a dark "
              f"coordinator ({absorbed3} absorbed, 0 computed)")

        REPORT["ok"] = True
        _write_report()
        print("network-chaos-smoke: PASS")
        return 0
    finally:
        if server is not None:
            stop_serve(server)


if __name__ == "__main__":
    sys.exit(main())
