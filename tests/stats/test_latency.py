"""Tests for the miss-latency histogram."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.latency import LatencyHistogram


class TestRecording:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile_bound(0.5) == 0

    def test_basic_stats(self):
        h = LatencyHistogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.count == 3
        assert h.mean == pytest.approx(20.0)
        assert h.min == 10 and h.max == 30

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_bucket_boundaries(self):
        h = LatencyHistogram()
        h.record(0)
        h.record(1)
        h.record(2)
        h.record(3)
        h.record(4)
        assert h.buckets[0] == 2  # 0 and 1
        assert h.buckets[1] == 2  # 2 and 3
        assert h.buckets[2] == 1  # 4

    def test_overflow_clamped(self):
        h = LatencyHistogram(max_exponent=4)
        h.record(10 ** 9)
        assert h.buckets[4] == 1


class TestPercentiles:
    def test_p50_in_dominant_bucket(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.record(8)  # bucket [8, 15]
        h.record(1024)
        assert h.percentile_bound(0.5) == 15
        assert h.percentile_bound(0.99) == 15
        assert h.percentile_bound(1.0) >= 1024

    def test_invalid_fraction(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile_bound(0.0)
        with pytest.raises(ValueError):
            h.percentile_bound(1.5)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    def test_percentile_bound_upper_bounds_true_percentile(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        values.sort()
        for frac in (0.5, 0.95, 1.0):
            index = max(int(frac * len(values)) - 1, 0)
            assert h.percentile_bound(frac) >= values[index]


class TestReporting:
    def test_as_dict_keys(self):
        h = LatencyHistogram()
        h.record(100)
        d = h.as_dict()
        assert set(d) == {"count", "mean", "min", "max", "p50<=", "p95<=", "p99<="}

    def test_nonzero_buckets(self):
        h = LatencyHistogram()
        h.record(1)
        h.record(100)
        entries = h.nonzero_buckets()
        assert entries[0][0] == 0
        assert all(count > 0 for _, _, count in entries)
        assert sum(count for _, _, count in entries) == 2
