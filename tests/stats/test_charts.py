"""Tests for the ASCII chart renderer."""

from repro.stats.charts import bar, hbar_chart, stacked_chart


class TestBar:
    def test_full_scale(self):
        assert bar(1.0, 1.0, width=10) == "#" * 10

    def test_half_cell_rounding(self):
        assert bar(0.55, 1.0, width=10) == "#" * 5 + "+"

    def test_zero(self):
        assert bar(0.0, 1.0, width=10) == ""

    def test_zero_scale(self):
        assert bar(1.0, 0.0) == ""

    def test_clamped_to_width(self):
        assert len(bar(5.0, 1.0, width=10)) == 10


class TestHBarChart:
    def test_labels_and_values(self):
        text = hbar_chart({"MESI": 1.0, "MW": 0.5}, title="traffic")
        lines = text.splitlines()
        assert lines[0] == "traffic"
        assert "MESI" in lines[1] and "1.000" in lines[1]
        assert "0.500" in lines[2]

    def test_reference_marker(self):
        text = hbar_chart({"MESI": 1.0, "MW": 0.5}, reference=1.0, width=20)
        assert "|" in text or text.count("#") > 0  # marker at/beyond scale end

    def test_empty_series(self):
        assert hbar_chart({}, title="t") == "t"

    def test_relative_lengths(self):
        text = hbar_chart({"a": 1.0, "b": 0.25}, width=40)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") > 3 * b_line.count("#")


class TestStackedChart:
    def test_segments_and_legend(self):
        rows = [("MESI", {"used": 0.3, "unused": 0.5, "ctrl": 0.2}),
                ("MW", {"used": 0.3, "unused": 0.0, "ctrl": 0.1})]
        segments = [("used", "U"), ("unused", "-"), ("ctrl", "c")]
        text = stacked_chart(rows, segments, width=20, title="fig9")
        assert "fig9" in text
        assert "U=used" in text
        mesi_line = [ln for ln in text.splitlines() if "MESI" in ln][0]
        assert "1.000" in mesi_line
        assert mesi_line.count("-") > 0

    def test_empty_rows(self):
        assert stacked_chart([], [("a", "A")], title="t") == "t"
