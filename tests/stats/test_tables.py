"""Tests for table rendering and ratio helpers."""

import pytest

from repro.stats.tables import format_table, geomean, normalize


class TestNormalize:
    def test_basic(self):
        out = normalize({"a": 10, "b": 5}, "a")
        assert out == {"a": 1.0, "b": 0.5}

    def test_zero_baseline(self):
        assert normalize({"a": 0, "b": 5}, "a") == {"a": 0.0, "b": 0.0}


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geomean([0.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestFormatTable:
    def test_alignment_and_underline(self):
        text = format_table(["name", "x"], [["alpha", 1.5], ["b", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded equally

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
