"""Tests for run statistics and derived metrics."""

import pytest

from repro.coherence.messages import MsgCategory
from repro.stats.counters import RunStats, TrafficBreakdown


class TestTrafficBreakdown:
    def test_empty(self):
        t = TrafficBreakdown()
        assert t.total == 0
        assert t.fractions() == {"used": 0.0, "unused": 0.0, "control": 0.0}

    def test_totals(self):
        t = TrafficBreakdown()
        t.used_data = 60
        t.unused_data = 20
        t.control[MsgCategory.REQ.value] = 20
        assert t.control_total == 20
        assert t.total == 100
        assert t.fractions() == {"used": 0.6, "unused": 0.2, "control": 0.2}


class TestRunStats:
    def test_mpki(self):
        s = RunStats(cores=2)
        s.instructions = 2000
        s.read_misses = 3
        s.write_misses = 2
        s.upgrade_misses = 1
        assert s.misses == 6
        assert s.mpki() == pytest.approx(3.0)

    def test_mpki_no_instructions(self):
        assert RunStats(2).mpki() == 0.0

    def test_miss_rate(self):
        s = RunStats(2)
        s.reads, s.writes = 6, 4
        s.read_misses = 2
        assert s.miss_rate() == pytest.approx(0.2)
        assert s.accesses == 10

    def test_data_words_accounting(self):
        s = RunStats(2)
        s.data_words(3, 1)
        assert s.traffic.used_data == 24
        assert s.traffic.unused_data == 8

    def test_used_fraction(self):
        s = RunStats(2)
        s.data_words(3, 1)
        assert s.used_fraction() == pytest.approx(0.75)
        assert RunStats(2).used_fraction() == 0.0

    def test_control_bytes_by_category(self):
        s = RunStats(2)
        s.control_bytes(MsgCategory.INV, 8)
        s.control_bytes(MsgCategory.INV, 8)
        s.control_bytes(MsgCategory.NACK, 8)
        assert s.traffic.control["inv"] == 16
        assert s.traffic.control["nack"] == 8

    def test_execution_cycles_is_slowest_core(self):
        s = RunStats(3)
        s.core_cycles = [10, 99, 5]
        assert s.execution_cycles() == 99

    def test_block_size_buckets(self):
        s = RunStats(2)
        for width, n in [(1, 2), (2, 2), (4, 4), (8, 8)]:
            for _ in range(n):
                s.record_install(width)
        buckets = s.block_size_buckets()
        assert buckets["1-2"] == pytest.approx(4 / 16)
        assert buckets["3-4"] == pytest.approx(4 / 16)
        assert buckets["5-6"] == 0.0
        assert buckets["7-8"] == pytest.approx(8 / 16)

    def test_block_size_buckets_empty(self):
        assert sum(RunStats(2).block_size_buckets().values()) == 0.0

    def test_summary_keys(self):
        summary = RunStats(2).summary()
        for key in ("instructions", "mpki", "invalidations", "traffic_bytes",
                    "used_frac", "exec_cycles"):
            assert key in summary
