"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import PredictorKind, ProtocolKind, SystemConfig
from repro.system.machine import build_protocol


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Point the experiment engine's persistent cache at a session tempdir.

    Tests must neither read stale entries from nor write entries into the
    user's real ``~/.cache/repro``.
    """
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session", autouse=True)
def _hermetic_trace_cache(tmp_path_factory):
    """Point the packed trace cache at a session tempdir (same contract as
    the result-cache fixture: no reads from or writes to the user's real
    ``~/.cache/repro/traces``)."""
    import os

    old = os.environ.get("REPRO_TRACE_CACHE_DIR")
    os.environ["REPRO_TRACE_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-trace-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_TRACE_CACHE_DIR", None)
    else:
        os.environ["REPRO_TRACE_CACHE_DIR"] = old

@pytest.fixture(scope="session", autouse=True)
def _hermetic_resilience_env():
    """Strip ambient fault-injection / retry knobs from the environment.

    An armed ``REPRO_FAULTS`` (or stray retry overrides) in the invoking
    shell would perturb every engine-backed test; resilience tests arm
    faults explicitly through monkeypatch instead.
    """
    import os

    names = ("REPRO_FAULTS", "REPRO_FAULTS_DIR", "REPRO_MAX_RETRIES",
             "REPRO_TASK_TIMEOUT", "REPRO_BACKOFF_BASE", "REPRO_RETRY_SEED")
    saved = {name: os.environ.pop(name, None) for name in names}
    from repro.resilience.faults import reset_injector

    reset_injector()
    yield
    for name, value in saved.items():
        if value is not None:
            os.environ[name] = value


ALL_KINDS = list(ProtocolKind)
PROTOZOA_KINDS = [k for k in ALL_KINDS if k is not ProtocolKind.MESI]


def small_config(kind: ProtocolKind, cores: int = 4, *,
                 predictor: PredictorKind = PredictorKind.SINGLE_WORD,
                 check: bool = True, **overrides) -> SystemConfig:
    """A small fully-checked machine for protocol scenario tests.

    The single-word predictor keeps requests exactly at the accessed words
    so scenarios control overlap precisely.
    """
    return SystemConfig(
        protocol=kind,
        cores=cores,
        predictor=predictor,
        check_invariants=check,
        check_values=check,
        **overrides,
    )


def make_engine(kind: ProtocolKind, cores: int = 4, **kw):
    return build_protocol(small_config(kind, cores, **kw))


class MessageLog:
    """Collects (label, src, dst, payload_words) tuples from the engine."""

    def __init__(self, protocol):
        self.entries = []
        protocol.trace_hook = self._hook

    def _hook(self, mtype, src, dst, payload_words):
        self.entries.append((mtype.label, src, dst, payload_words))

    def labels(self):
        return [e[0] for e in self.entries]

    def count(self, label: str) -> int:
        return sum(1 for e in self.entries if e[0] == label)

    def clear(self):
        self.entries.clear()


@pytest.fixture(params=ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def any_kind(request):
    return request.param


@pytest.fixture(params=PROTOZOA_KINDS, ids=[k.short_name for k in PROTOZOA_KINDS])
def protozoa_kind(request):
    return request.param


def region_addr(region: int, word: int = 0, region_bytes: int = 64) -> int:
    return region * region_bytes + word * 8
