"""The public surface: repro.api works, repro re-exports it, old deep
import paths still work but warn."""

import importlib
import warnings

import pytest

import repro
import repro.api as api
from repro.common.params import ProtocolKind


class TestFacade:
    def test_run_by_short_name(self):
        result = api.run("histogram", "mw", cores=4, per_core=150)
        assert result.name == "histogram"
        assert result.config.protocol is ProtocolKind.PROTOZOA_MW
        assert result.stats.accesses == 4 * 150

    def test_run_with_obs(self):
        result = api.run("histogram", "mesi", cores=2, per_core=100,
                         obs=True)
        assert result.obs is not None
        assert result.obs.events.seen == result.stats.accesses

    def test_build_machine_from_overrides(self):
        engine = api.build_machine(protocol="sw+mr", cores=4)
        assert engine.config.protocol is ProtocolKind.PROTOZOA_SW_MR
        assert engine.config.cores == 4

    def test_build_machine_from_config(self):
        config = api.SystemConfig(protocol=ProtocolKind.MESI, cores=2)
        engine = api.build_machine(config)
        assert engine.config is config

    def test_build_machine_rejects_config_plus_overrides(self):
        config = api.SystemConfig()
        with pytest.raises(api.ConfigError):
            api.build_machine(config, cores=8)

    def test_sweep_runs_grid(self):
        specs = [api.RunSpec("histogram", kind, cores=2, per_core=80)
                 for kind in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]
        results = api.sweep(specs, jobs=1)
        assert set(results) == set(specs)
        for spec, result in results.items():
            assert result.config.protocol is spec.protocol

    def test_sweep_matches_run_counters(self):
        spec = api.RunSpec("histogram", ProtocolKind.MESI, cores=2,
                           per_core=80)
        swept = api.sweep([spec], jobs=1)[spec]
        direct = api.run("histogram", "mesi", cores=2, per_core=80)
        assert swept.stats.to_dict() == direct.stats.to_dict()

    def test_save_and_load_trace(self, tmp_path):
        streams = api.build_streams("histogram", cores=2, per_core=50)
        path = tmp_path / "t.trace"
        count = api.save_trace(streams, path)
        assert count == 100
        back = api.load_trace(path)
        assert [len(s) for s in back] == [50, 50]
        assert back[0][0].addr == streams[0][0].addr

    def test_parse_protocol_accepts_all_spellings(self):
        assert api.parse_protocol("MESI") is ProtocolKind.MESI
        assert api.parse_protocol("sw+mr") is ProtocolKind.PROTOZOA_SW_MR
        assert api.parse_protocol("swmr") is ProtocolKind.PROTOZOA_SW_MR
        assert api.parse_protocol("protozoa-mw") is ProtocolKind.PROTOZOA_MW
        assert (api.parse_protocol(ProtocolKind.PROTOZOA_SW)
                is ProtocolKind.PROTOZOA_SW)
        with pytest.raises(api.ConfigError):
            api.parse_protocol("moesi")


class TestTopLevelReexports:
    def test_repro_reexports_the_api_surface(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name), name

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestDeprecationShims:
    SHIMS = {
        "repro.experiments.engine": "repro.experiments._engine",
        "repro.system.simulator": "repro.system._simulator",
        "repro.trace.cache": "repro.trace._cache",
    }

    @pytest.mark.parametrize("old", sorted(SHIMS))
    def test_old_path_warns(self, old):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module(old)
            importlib.reload(module)
        assert any(issubclass(w.category, DeprecationWarning)
                   and "repro.api" in str(w.message) for w in caught), old

    @pytest.mark.parametrize("old", sorted(SHIMS))
    def test_shim_preserves_identity(self, old):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = importlib.import_module(old)
        impl = importlib.import_module(self.SHIMS[old])
        public = [n for n in dir(shim) if not n.startswith("_")]
        assert public, old
        for name in public:
            if hasattr(impl, name):
                assert getattr(shim, name) is getattr(impl, name), name

    def test_runspec_identity_across_paths(self):
        """Cached pickles and dict keys rely on one RunSpec class."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.experiments.engine import RunSpec as old_spec
        assert old_spec is api.RunSpec is repro.RunSpec


class TestSweepValidation:
    """sweep() rejects malformed spec collections before any simulation."""

    def spec(self, seed=0):
        return api.RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                           cores=2, per_core=60, seed=seed)

    def test_bare_runspec_rejected_with_guidance(self):
        with pytest.raises(api.ConfigError, match=r"sweep\(\[spec\]\)"):
            api.sweep(self.spec())

    @pytest.mark.parametrize("bad", ["histogram", b"histogram", {"a": 1}])
    def test_wrong_container_types_rejected(self, bad):
        with pytest.raises(api.ConfigError, match="iterable of RunSpec"):
            api.sweep(bad)

    def test_non_iterable_rejected(self):
        with pytest.raises(api.ConfigError, match="iterable of RunSpec"):
            api.sweep(42)

    def test_non_spec_item_named_by_index(self):
        with pytest.raises(api.ConfigError, match=r"specs\[1\] is str"):
            api.sweep([self.spec(), "mesi"])

    def test_duplicate_cells_named_by_both_indices(self):
        with pytest.raises(api.ConfigError,
                           match=r"specs\[2\] duplicates specs\[0\]"):
            api.sweep([self.spec(0), self.spec(1), self.spec(0)])

    def test_generator_input_still_works(self):
        results = api.sweep(self.spec(seed) for seed in (0, 1))
        assert len(results) == 2

    def test_service_surface_exported(self):
        assert api.ServiceClient is repro.ServiceClient
        assert api.SweepService is repro.SweepService
        assert callable(api.serve)
