"""Tests for the protocol-independent trace profiler."""

import pytest

from repro.trace.analysis import profile_streams, profile_workload
from repro.trace.events import MemAccess


def region_word(region, word):
    return region * 64 + word * 8


class TestClassification:
    def test_private_region(self):
        streams = [[MemAccess.write(region_word(0, 1))], []]
        profile = profile_streams(streams)
        assert profile.class_fraction("private") == 1.0

    def test_read_shared_region(self):
        streams = [[MemAccess.read(region_word(0, 1))],
                   [MemAccess.read(region_word(0, 5))]]
        profile = profile_streams(streams)
        assert profile.class_fraction("read-shared") == 1.0

    def test_false_shared_region(self):
        streams = [[MemAccess.write(region_word(0, 0))],
                   [MemAccess.write(region_word(0, 7))]]
        profile = profile_streams(streams)
        assert profile.falsely_shared_fraction == 1.0

    def test_true_shared_region(self):
        streams = [[MemAccess.write(region_word(0, 3))],
                   [MemAccess.read(region_word(0, 3))]]
        profile = profile_streams(streams)
        assert profile.class_fraction("true-shared") == 1.0

    def test_reader_overlapping_disjoint_writers_is_true_sharing(self):
        streams = [[MemAccess.write(region_word(0, 0))],
                   [MemAccess.write(region_word(0, 7)),
                    MemAccess.read(region_word(0, 0))]]
        profile = profile_streams(streams)
        assert profile.class_fraction("true-shared") == 1.0


class TestAggregates:
    def test_counts(self):
        streams = [[MemAccess.read(0), MemAccess.write(8)], [MemAccess.read(64)]]
        profile = profile_streams(streams)
        assert profile.accesses == 3
        assert profile.writes == 1
        assert profile.regions == 2
        assert profile.live_words == 3
        assert profile.write_fraction == pytest.approx(1 / 3)

    def test_density(self):
        streams = [[MemAccess.read(region_word(0, w)) for w in range(8)],
                   [MemAccess.read(region_word(1, 0))]]
        profile = profile_streams(streams)
        assert profile.spatial_density == pytest.approx((8 + 1) / 2)

    def test_summary_keys(self):
        profile = profile_streams([[MemAccess.read(0)]])
        assert set(profile.summary()) == {
            "accesses", "write_frac", "regions", "density_words",
            "private", "read_shared", "true_shared", "false_shared",
        }


class TestWorkloadProfiles:
    """Each synthetic benchmark must carry its paper-ascribed profile."""

    def test_linreg_dominated_by_false_sharing_traffic(self):
        profile = profile_workload("linear-regression", per_core=400)
        assert profile.falsely_shared_fraction > 0  # the counter regions
        assert profile.write_fraction > 0.3  # increment-heavy

    def test_matmul_private_and_dense(self):
        profile = profile_workload("matrix-multiply", per_core=400)
        assert profile.class_fraction("private") + \
            profile.class_fraction("read-shared") > 0.95
        assert profile.spatial_density > 4.0

    def test_canneal_sparse(self):
        profile = profile_workload("canneal", per_core=400)
        assert profile.spatial_density < 2.5

    def test_histogram_bins_falsely_shared(self):
        profile = profile_workload("histogram", per_core=600)
        assert profile.falsely_shared_fraction > 0

    def test_string_match_mixed_fine_grain(self):
        profile = profile_workload("string-match", per_core=600)
        assert profile.falsely_shared_fraction > 0

    @pytest.mark.parametrize("name", ["apache", "h2", "barnes"])
    def test_irregular_apps_have_true_sharing(self, name):
        profile = profile_workload(name, per_core=600)
        assert profile.class_fraction("true-shared") > 0
