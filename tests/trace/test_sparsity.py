"""Tests for sparse-footprint pattern variants."""

import itertools
import random

from repro.trace.patterns import REGION, WORD, private_random, shared_read_table


def take(gen, n):
    return list(itertools.islice(gen, n))


def rng():
    return random.Random(7)


class TestSparseRandom:
    def test_live_subset_is_one_per_stride(self):
        evs = take(private_random(0, 64 * 1024, 1, sparsity=8, rng=rng()), 3000)
        slots = {e.addr // (8 * WORD) for e in evs}
        words = {e.addr for e in evs}
        # Exactly one live word per 8-word stride (deterministic jitter).
        per_slot = {}
        for e in evs:
            per_slot.setdefault(e.addr // (8 * WORD), set()).add(e.addr)
        assert all(len(ws) == 1 for ws in per_slot.values())
        assert len(slots) == len(words)

    def test_jitter_scatters_offsets(self):
        evs = take(private_random(0, 64 * 1024, 1, sparsity=8, rng=rng()), 3000)
        offsets = {(e.addr % REGION) // WORD for e in evs}
        assert len(offsets) > 3  # not a fixed stride at offset 0

    def test_sparsity_one_is_dense(self):
        evs = take(private_random(0, 1024, 1, sparsity=1, rng=rng()), 2000)
        assert len({e.addr for e in evs}) == 128  # every word reachable

    def test_addresses_stay_in_footprint(self):
        evs = take(private_random(0x1000, 4096, 1, sparsity=5, rng=rng()), 1000)
        assert all(0x1000 <= e.addr < 0x1000 + 4096 for e in evs)


class TestSparseTable:
    def test_sparse_entries_scattered(self):
        evs = take(shared_read_table(0, 48 * 1024, 1, span_words=2, sparsity=3,
                                     rng=rng()), 4000)
        starts = {e.addr for i, e in enumerate(evs) if i % 2 == 0}
        # Live entries are 1/3 of all slots.
        assert len(starts) <= 48 * 1024 // (16 * 3)
        offsets = {(s % (16 * 3)) for s in starts}
        assert len(offsets) > 1  # jittered, not strided

    def test_entries_remain_contiguous_spans(self):
        evs = take(shared_read_table(0, 48 * 1024, 1, span_words=4, sparsity=2,
                                     rng=rng()), 400)
        for i in range(0, 400, 4):
            group = evs[i:i + 4]
            assert [e.addr for e in group] == \
                [group[0].addr + 8 * j for j in range(4)]
