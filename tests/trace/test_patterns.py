"""Tests for the workload pattern primitives."""

import itertools
import random

import pytest

from repro.trace.events import MemAccess
from repro.trace.patterns import (
    REGION,
    consumer_stream,
    false_sharing_counter,
    interleave,
    migratory_regions,
    packed_slots,
    private_random,
    private_stream,
    producer_stream,
    shared_read_table,
    stencil_stream,
)


def take(gen, n=100):
    return list(itertools.islice(gen, n))


def rng():
    return random.Random(42)


class TestPrivateStream:
    def test_sequential_and_wrapping(self):
        evs = take(private_stream(0x1000, 64, pc=1, rng=rng()), 10)
        addrs = [e.addr for e in evs]
        assert addrs[:8] == [0x1000 + 8 * i for i in range(8)]
        assert addrs[8] == 0x1000  # wrapped

    def test_write_fraction(self):
        evs = take(private_stream(0, 8 * 1024, pc=1, write_frac=1.0, rng=rng()))
        assert all(e.is_write for e in evs)
        evs = take(private_stream(0, 8 * 1024, pc=1, write_frac=0.0, rng=rng()))
        assert not any(e.is_write for e in evs)


class TestPrivateRandom:
    def test_stays_in_footprint(self):
        evs = take(private_random(0x2000, 256, pc=1, rng=rng()), 200)
        assert all(0x2000 <= e.addr < 0x2000 + 256 for e in evs)

    def test_word_aligned(self):
        evs = take(private_random(0x2000, 4096, pc=1, rng=rng()))
        assert all(e.addr % 8 == 0 for e in evs)


class TestFalseSharingCounter:
    def test_rmw_pattern(self):
        evs = take(false_sharing_counter(0x3000, slot=2, pc=5), 6)
        kinds = [e.is_write for e in evs]
        assert kinds == [False, True] * 3
        assert all(e.addr == 0x3000 + 16 for e in evs)

    def test_slots_share_regions(self):
        a = take(false_sharing_counter(0x3000, 0, 1), 1)[0]
        b = take(false_sharing_counter(0x3000, 7, 1), 1)[0]
        assert a.addr // REGION == b.addr // REGION
        c = take(false_sharing_counter(0x3000, 8, 1), 1)[0]
        assert c.addr // REGION == a.addr // REGION + 1

    def test_write_only_mode(self):
        evs = take(false_sharing_counter(0, 0, 1, read_modify_write=False), 4)
        assert all(e.is_write for e in evs)


class TestPackedSlots:
    def test_adjacent_cores_share_regions(self):
        # 24-byte slots: cores 0..2 all touch region 0.
        seen = set()
        for core in range(3):
            for e in take(packed_slots(0, core, 24, pc=1, rng=rng()), 50):
                seen.add((core, e.addr // REGION))
        regions0 = {r for c, r in seen if c == 0}
        regions2 = {r for c, r in seen if c == 2}
        assert regions0 & regions2  # overlap -> false sharing

    def test_cores_never_touch_same_word(self):
        words = {}
        for core in range(4):
            for e in take(packed_slots(0, core, 24, pc=1, rng=rng()), 100):
                words.setdefault(e.addr, set()).add(core)
        assert all(len(cores) == 1 for cores in words.values())


class TestSharedTable:
    def test_entries_span_words(self):
        evs = take(shared_read_table(0, 1024, pc=1, span_words=4, rng=rng()), 40)
        assert all(not e.is_write for e in evs)
        # Groups of 4 consecutive words.
        for i in range(0, 40, 4):
            group = evs[i:i + 4]
            assert [e.addr for e in group] == [group[0].addr + 8 * j for j in range(4)]


class TestProducerConsumer:
    def test_producer_writes_whole_regions(self):
        evs = take(producer_stream(0x4000, 4, pc=1), 16)
        assert all(e.is_write for e in evs)
        assert [e.addr for e in evs[:8]] == [0x4000 + 8 * i for i in range(8)]

    def test_consumer_reads(self):
        evs = take(consumer_stream(0x4000, 4, pc=1), 8)
        assert all(not e.is_write for e in evs)


class TestMigratory:
    def test_rmw_visits(self):
        evs = take(migratory_regions(0x5000, 8, core=0, pc=1, rng=rng()), 16)
        assert evs[0].is_write is False and evs[1].is_write is True
        assert evs[0].addr == evs[1].addr

    def test_cores_staggered(self):
        a = take(migratory_regions(0, 8, core=0, pc=1, rng=rng()), 1)[0]
        b = take(migratory_regions(0, 8, core=3, pc=1, rng=rng()), 1)[0]
        assert a.addr // REGION != b.addr // REGION


class TestStencil:
    def test_mostly_in_own_slab(self):
        evs = take(stencil_stream(1, 4, 0, 4096, pc=1, rng=rng()), 200)
        own = [e for e in evs if 4096 <= e.addr < 8192]
        assert len(own) > 150

    def test_boundary_reads_touch_neighbours(self):
        evs = take(stencil_stream(1, 4, 0, 4096, pc=1, boundary_every=4,
                                  rng=rng()), 400)
        foreign = [e for e in evs if not 4096 <= e.addr < 8192]
        assert foreign
        assert all(not e.is_write for e in foreign)


class TestInterleave:
    def test_mixes_components(self):
        a = (MemAccess.read(0x1000) for _ in itertools.count())
        b = (MemAccess.read(0x2000) for _ in itertools.count())
        evs = take(interleave(rng(), [(1, a), (1, b)], burst=4), 400)
        addrs = {e.addr for e in evs}
        assert addrs == {0x1000, 0x2000}

    def test_zero_weights_rejected(self):
        a = iter(())
        with pytest.raises(ValueError):
            next(interleave(rng(), [(0, a)]))

    def test_weights_respected_roughly(self):
        a = (MemAccess.read(0x1000) for _ in itertools.count())
        b = (MemAccess.read(0x2000) for _ in itertools.count())
        evs = take(interleave(rng(), [(9, a), (1, b)], burst=2), 2000)
        frac_a = sum(1 for e in evs if e.addr == 0x1000) / len(evs)
        assert frac_a > 0.7
