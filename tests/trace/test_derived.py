"""Tests for the derived-column computation and its sidecar format."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.trace import derived as derived_mod
from repro.trace._cache import TraceCache
from repro.trace.derived import (
    DERIVED_FORMAT_VERSION,
    DerivedColumns,
    derive,
    derived_for,
)
from repro.trace.events import MemAccess
from repro.trace.packed import PackedTrace
from repro.trace.workloads import build_streams


def packed(workload: str = "kmeans", cores: int = 4, per_core: int = 200,
           seed: int = 0) -> PackedTrace:
    return PackedTrace.from_streams(
        build_streams(workload, cores=cores, per_core=per_core, seed=seed))


def columns_equal(a: DerivedColumns, b: DerivedColumns) -> bool:
    if (a.region_bytes, a.total_regions, a.cores) != (
            b.region_bytes, b.total_regions, b.cores):
        return False
    slots = ("region_idx", "amask", "wmask", "think_cum", "writes_cum",
             "wpop_cum", "hard_pos", "region_ids")
    return all(getattr(ca, name) == getattr(cb, name)
               for ca, cb in zip(a.per_core, b.per_core) for name in slots)


class TestDerive:
    def test_python_and_numpy_agree(self):
        trace = packed()
        if derived_mod.numpy_or_none() is None:
            pytest.skip("numpy not installed; only one derive path exists")
        assert columns_equal(derived_mod._derive_python(trace, 64),
                             derive(trace, 64))

    def test_shapes(self):
        trace = packed(cores=3, per_core=150)
        cols = derive(trace, 64)
        assert cols.cores == 3
        assert cols.matches(trace)
        for core in cols.per_core:
            assert core.events == 150
            # Prefix sums carry a leading zero for O(1) span differences.
            assert len(core.think_cum) == 151
            assert core.think_cum[0] == 0

    def test_region_width_rejected(self):
        with pytest.raises(SimulationError):
            derive(packed(), 64 * 1024)


class TestSidecarFormat:
    def test_round_trip(self):
        cols = derive(packed(), 64)
        assert columns_equal(DerivedColumns.loads(cols.dumps()), cols)

    def test_truncated_blob_rejected(self):
        blob = derive(packed(), 64).dumps()
        with pytest.raises(SimulationError):
            DerivedColumns.loads(blob[:len(blob) // 2])

    def test_bad_magic_rejected(self):
        blob = derive(packed(), 64).dumps()
        with pytest.raises(SimulationError):
            DerivedColumns.loads(b"XXXX" + blob[4:])

    def test_version_skew_rejected(self):
        blob = bytearray(derive(packed(), 64).dumps())
        # Version is the field right after the 8-byte magic.
        blob[8] = DERIVED_FORMAT_VERSION + 1
        with pytest.raises(SimulationError):
            DerivedColumns.loads(bytes(blob))


class TestDerivedFor:
    def test_memoizes_per_trace(self):
        trace = packed()
        assert derived_for(trace, 64) is derived_for(trace, 64)

    def test_sidecar_written_and_reloaded(self, tmp_path):
        cache = TraceCache(root=tmp_path, enabled=True)
        trace = cache.get_or_build("kmeans", cores=4, per_core=200, seed=0)
        derived_for(trace, 64)
        sidecar = cache.derived_path_for("kmeans", 4, 200, 0, 64)
        assert sidecar.is_file()
        # A second cache hit parses the sidecar instead of re-deriving.
        again = cache.get_or_build("kmeans", cores=4, per_core=200, seed=0)
        assert columns_equal(derived_for(again, 64), derived_for(trace, 64))

    def test_corrupt_sidecar_rebuilt(self, tmp_path):
        cache = TraceCache(root=tmp_path, enabled=True)
        trace = cache.get_or_build("kmeans", cores=4, per_core=200, seed=0)
        derived_for(trace, 64)
        sidecar = cache.derived_path_for("kmeans", 4, 200, 0, 64)
        sidecar.write_bytes(b"garbage")
        again = cache.get_or_build("kmeans", cores=4, per_core=200, seed=0)
        cols = derived_for(again, 64)
        assert cols.matches(again)
        # The rebuild rewrote a valid sidecar in place.
        DerivedColumns.loads(sidecar.read_bytes())

    def test_shape_mismatch_sidecar_rebuilt(self, tmp_path):
        cache = TraceCache(root=tmp_path, enabled=True)
        small = cache.get_or_build("kmeans", cores=2, per_core=100, seed=0)
        derived_for(small, 64)
        wrong = cache.derived_path_for("kmeans", 2, 100, 0, 64)
        big = cache.get_or_build("kmeans", cores=4, per_core=200, seed=0)
        # Plant the wrong trace's sidecar at the big trace's path.
        target = cache.derived_path_for("kmeans", 4, 200, 0, 64)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(wrong.read_bytes())
        cols = derived_for(big, 64)
        assert cols.matches(big)

    def test_events_hard_positions_are_sorted(self):
        cols = derive(packed("linear-regression"), 64)
        for core in cols.per_core:
            positions = list(core.hard_pos)
            assert positions == sorted(positions)

    def test_synthetic_private_trace_has_no_hard_events(self):
        # Each core touches its own disjoint regions: everything commutes.
        streams = [[MemAccess.read(c * 0x10000 + 8 * i) for i in range(20)]
                   for c in range(2)]
        cols = derive(PackedTrace.from_streams(streams), 64)
        assert all(len(core.hard_pos) == 0 for core in cols.per_core)

    def test_shared_written_region_is_hard_everywhere(self):
        # One region, read by core 0, written by core 1: every event on it
        # is a hard (non-commuting) position.
        streams = [[MemAccess.read(0) for _ in range(5)],
                   [MemAccess.write(0) for _ in range(5)]]
        cols = derive(PackedTrace.from_streams(streams), 64)
        assert all(len(core.hard_pos) == 5 for core in cols.per_core)
