"""Tests for trace event records."""

import pytest

from repro.trace.events import MemAccess


class TestConstruction:
    def test_read_factory(self):
        e = MemAccess.read(0x100, 8, pc=7, think=3)
        assert not e.is_write
        assert (e.addr, e.size, e.pc, e.think) == (0x100, 8, 7, 3)

    def test_write_factory(self):
        assert MemAccess.write(0x100).is_write

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            MemAccess(False, -1)
        with pytest.raises(ValueError):
            MemAccess(False, 0, size=0)
        with pytest.raises(ValueError):
            MemAccess(False, 0, think=-1)

    def test_repr(self):
        assert "W 0x10" in repr(MemAccess.write(0x10))
        assert "R 0x10" in repr(MemAccess.read(0x10))
