"""Tests for the 28-benchmark registry."""

import pytest

from repro.common.errors import ConfigError
from repro.trace.workloads import WORKLOADS, build_streams, get_workload

PAPER_TABLE5 = {
    # suite -> benchmarks the paper lists (Table 5)
    "SPLASH2": {"barnes", "cholesky", "fft", "lu", "ocean", "radix", "water"},
    "PARSEC": {"blackscholes", "bodytrack", "canneal", "facesim",
               "fluidanimate", "x264", "raytrace", "swaptions", "streamcluster"},
    "Phoenix": {"histogram", "kmeans", "linear-regression", "matrix-multiply",
                "reverse-index", "string-match", "word-count"},
    "Commercial": {"apache", "spec-jbb"},
    "DaCapo": {"h2", "tradebeans"},
    "Denovo": {"parkd"},
}


class TestRegistry:
    def test_all_28_benchmarks_present(self):
        assert len(WORKLOADS) == 28

    def test_suites_match_table5(self):
        for suite, names in PAPER_TABLE5.items():
            got = {n for n, s in WORKLOADS.items() if s.suite == suite}
            assert got == names, f"{suite}: {got ^ names}"

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigError):
            get_workload("quake3")

    def test_false_sharing_flags(self):
        assert WORKLOADS["linear-regression"].falsely_shares
        assert WORKLOADS["histogram"].falsely_shares
        assert not WORKLOADS["matrix-multiply"].falsely_shares

    def test_paper_metadata_carried(self):
        spec = get_workload("linear-regression")
        assert spec.paper_optimal == "16"
        assert spec.paper_used_pct == 27


class TestStreams:
    def test_build_streams_shape(self):
        streams = build_streams("kmeans", cores=4, per_core=50)
        assert len(streams) == 4
        assert all(len(s) == 50 for s in streams)

    def test_deterministic(self):
        a = build_streams("apache", cores=2, per_core=40, seed=1)
        b = build_streams("apache", cores=2, per_core=40, seed=1)
        assert [(e.addr, e.is_write) for e in a[0]] == \
               [(e.addr, e.is_write) for e in b[0]]

    def test_seed_changes_stream(self):
        a = build_streams("apache", cores=2, per_core=40, seed=1)
        b = build_streams("apache", cores=2, per_core=40, seed=2)
        assert [(e.addr, e.is_write) for e in a[0]] != \
               [(e.addr, e.is_write) for e in b[0]]

    def test_cores_get_distinct_streams(self):
        streams = build_streams("canneal", cores=2, per_core=40)
        assert [e.addr for e in streams[0]] != [e.addr for e in streams[1]]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_generates(self, name):
        streams = build_streams(name, cores=4, per_core=30)
        for stream in streams:
            for e in stream:
                assert e.addr >= 0
                assert 1 <= e.size <= 64

    def test_false_sharing_workload_shares_regions_across_cores(self):
        streams = build_streams("linear-regression", cores=8, per_core=100)
        regions = [
            {e.addr // 64 for e in stream} for stream in streams
        ]
        shared = set()
        for i in range(8):
            for j in range(i + 1, 8):
                shared |= regions[i] & regions[j]
        assert shared  # at least one region touched by multiple cores

    def test_private_workload_rarely_shares_written_words(self):
        streams = build_streams("matrix-multiply", cores=4, per_core=200)
        written = {}
        for core, stream in enumerate(streams):
            for e in stream:
                if e.is_write:
                    written.setdefault(e.addr, set()).add(core)
        assert all(len(cores) == 1 for cores in written.values())
