"""Trace-cache correctness: content addressing, degradation, hermeticity."""

import os

import pytest

import repro.trace._cache as trace_cache_mod
from repro.trace._cache import (
    TraceCache,
    packed_streams,
    trace_cache_dir,
    trace_digest,
)
from repro.trace.packed import PackedTrace
from repro.trace.workloads import build_streams

RECIPE = dict(workload="kmeans", cores=4, per_core=80, seed=0)


class TestDigest:
    def test_digest_is_stable(self):
        assert trace_digest("kmeans", 4, 80, 0) == trace_digest("kmeans", 4, 80, 0)

    def test_digest_covers_every_axis(self):
        base = trace_digest("kmeans", 4, 80, 0)
        variants = {
            trace_digest("histogram", 4, 80, 0),
            trace_digest("kmeans", 8, 80, 0),
            trace_digest("kmeans", 4, 81, 0),
            trace_digest("kmeans", 4, 80, 1),
        }
        assert base not in variants
        assert len(variants) == 4

    def test_digest_covers_format_version(self, monkeypatch):
        before = trace_digest("kmeans", 4, 80, 0)
        monkeypatch.setattr("repro.trace._cache.FORMAT_VERSION", 999)
        assert trace_digest("kmeans", 4, 80, 0) != before


class TestCache:
    def test_build_then_hit(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=True)
        first = cache.get_or_build(**RECIPE)
        assert cache.built == 1 and cache.misses == 1 and cache.hits == 0
        second = cache.get_or_build(**RECIPE)
        assert cache.built == 1 and cache.hits == 1
        assert first == second
        assert first == PackedTrace.from_streams(
            build_streams(RECIPE["workload"], cores=RECIPE["cores"],
                          per_core=RECIPE["per_core"], seed=RECIPE["seed"]))

    def test_layout_fans_out_by_digest_prefix(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=True)
        cache.get_or_build(**RECIPE)
        digest = trace_digest(RECIPE["workload"], RECIPE["cores"],
                              RECIPE["per_core"], RECIPE["seed"])
        assert (tmp_path / digest[:2] / f"{digest}.bin").exists()

    def test_corrupt_entry_degrades_to_rebuild(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=True)
        good = cache.get_or_build(**RECIPE)
        path = cache.path_for(RECIPE["workload"], RECIPE["cores"],
                              RECIPE["per_core"], RECIPE["seed"])
        path.write_bytes(b"garbage, not a packed trace")
        rebuilt = cache.get_or_build(**RECIPE)
        assert cache.built == 2
        assert rebuilt == good
        # The rebuild repaired the entry on disk.
        assert PackedTrace.load(path) == good

    def test_truncated_entry_degrades_to_rebuild(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=True)
        good = cache.get_or_build(**RECIPE)
        path = cache.path_for(RECIPE["workload"], RECIPE["cores"],
                              RECIPE["per_core"], RECIPE["seed"])
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        assert cache.get_or_build(**RECIPE) == good
        assert cache.built == 2

    def test_empty_entry_degrades_to_rebuild(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=True)
        good = cache.get_or_build(**RECIPE)
        path = cache.path_for(RECIPE["workload"], RECIPE["cores"],
                              RECIPE["per_core"], RECIPE["seed"])
        path.write_bytes(b"")
        assert cache.get_or_build(**RECIPE) == good

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=False)
        cache.get_or_build(**RECIPE)
        assert not any(tmp_path.iterdir())

    def test_repro_cache_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert TraceCache(tmp_path).enabled is False

    def test_repro_trace_cache_env_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
        assert TraceCache(tmp_path).enabled is True
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        monkeypatch.delenv("REPRO_CACHE")
        assert TraceCache(tmp_path).enabled is False


class TestLocation:
    def test_env_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "t"))
        assert trace_cache_dir() == tmp_path / "t"

    def test_defaults_beside_result_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rc"))
        assert trace_cache_dir() == tmp_path / "rc" / "traces"

    def test_suite_is_hermetic(self):
        """The autouse fixture must keep traces out of ~/.cache."""
        home = os.path.expanduser("~")
        assert not str(trace_cache_dir()).startswith(home + "/.cache")

    def test_packed_streams_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "mine"))
        trace = packed_streams(**RECIPE)
        assert trace.cores == RECIPE["cores"]
        assert any((tmp_path / "mine").rglob("*.bin"))
