"""Package marker so bare pytest resolves repo-root imports."""
