"""Tests for trace file round-tripping."""

import io

import pytest

from repro.common.errors import SimulationError
from repro.trace.events import MemAccess
from repro.trace.io import read_trace, write_trace
from repro.trace.workloads import build_streams


class TestRoundTrip:
    def test_simple_roundtrip(self):
        streams = [
            [MemAccess.read(0x100, 8, 0x40, 3), MemAccess.write(0x108, 4, 0x44, 0)],
            [MemAccess.write(0x2000, 8, 0x50, 7)],
        ]
        buf = io.StringIO()
        count = write_trace(streams, buf)
        assert count == 3
        buf.seek(0)
        back = read_trace(buf)
        assert len(back) == 2
        first = back[0][0]
        assert (first.is_write, first.addr, first.size, first.pc, first.think) == \
            (False, 0x100, 8, 0x40, 3)
        assert back[1][0].is_write

    def test_workload_roundtrip_exact(self):
        streams = build_streams("histogram", cores=4, per_core=100)
        buf = io.StringIO()
        write_trace(streams, buf)
        buf.seek(0)
        back = read_trace(buf)
        for orig, rest in zip(streams, back):
            assert [(e.is_write, e.addr, e.size, e.pc, e.think) for e in orig] == \
                [(e.is_write, e.addr, e.size, e.pc, e.think) for e in rest]

    def test_empty_core_streams_preserved(self):
        buf = io.StringIO()
        write_trace([[], [MemAccess.read(0)]], buf)
        buf.seek(0)
        back = read_trace(buf)
        assert back[0] == []
        assert len(back[1]) == 1


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SimulationError):
            read_trace(io.StringIO("not a trace\n"))

    def test_bad_header(self):
        with pytest.raises(SimulationError):
            read_trace(io.StringIO("#repro-trace v1 cores=x\n"))

    def test_bad_field_count(self):
        with pytest.raises(SimulationError):
            read_trace(io.StringIO("#repro-trace v1 cores=1\n0 R 100\n"))

    def test_bad_kind(self):
        with pytest.raises(SimulationError):
            read_trace(io.StringIO("#repro-trace v1 cores=1\n0 X 100 8 0 0\n"))

    def test_core_out_of_range(self):
        with pytest.raises(SimulationError):
            read_trace(io.StringIO("#repro-trace v1 cores=1\n3 R 100 8 0 0\n"))

    def test_comments_and_blanks_skipped(self):
        text = "#repro-trace v1 cores=1\n\n# comment\n0 R 100 8 0 0\n"
        back = read_trace(io.StringIO(text))
        assert len(back[0]) == 1
