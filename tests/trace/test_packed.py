"""PackedTrace: columnar round-trips, binary format, replay parity."""

import io
import struct

import pytest

from repro.common.errors import SimulationError
from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.trace.events import MemAccess
from repro.trace.io import read_trace, write_trace
from repro.trace.packed import FORMAT_VERSION, PackedTrace
from repro.trace.workloads import build_streams


def fields(stream):
    return [(e.is_write, e.addr, e.size, e.pc, e.think) for e in stream]


def sample_streams():
    return [
        [MemAccess.read(0x100, 8, 0x40, 3), MemAccess.write(0x108, 4, 0x44, 0)],
        [],
        [MemAccess.write(0x2000, 16, 0x50, 7)],
    ]


class TestStreamRoundTrip:
    def test_streams_round_trip_preserves_every_field(self):
        streams = sample_streams()
        packed = PackedTrace.from_streams(streams)
        assert packed.cores == 3
        assert packed.counts == [2, 0, 1]
        assert len(packed) == 3
        for orig, back in zip(streams, packed.streams()):
            assert fields(orig) == fields(back)

    def test_workload_round_trip_exact(self):
        streams = build_streams("histogram", cores=4, per_core=150)
        packed = PackedTrace.from_streams(streams)
        for orig, back in zip(streams, packed.streams()):
            assert fields(orig) == fields(back)

    def test_text_io_and_packed_agree(self):
        """text format -> MemAccess -> PackedTrace -> MemAccess -> text."""
        streams = build_streams("kmeans", cores=4, per_core=100)
        buf = io.StringIO()
        write_trace(streams, buf)
        buf.seek(0)
        packed = PackedTrace.from_streams(read_trace(buf))
        assert packed == PackedTrace.from_streams(streams)
        buf2 = io.StringIO()
        write_trace(packed.streams(), buf2)
        assert buf.getvalue() == buf2.getvalue()

    def test_text_reader_rejects_negative_addr(self):
        text = "#repro-trace v1 cores=1\n0 R -10 8 0 0\n"
        with pytest.raises(SimulationError):
            read_trace(io.StringIO(text))

    def test_iter_core_revalidates_records(self):
        """Tampered columns fail the MemAccess addr<0 invariant on replay."""
        packed = PackedTrace.from_streams([[MemAccess.read(0x100)]])
        packed.core_columns(0)[1][0] = -1  # addr column
        with pytest.raises(ValueError):
            list(packed.iter_core(0))

    def test_equality(self):
        a = PackedTrace.from_streams(sample_streams())
        b = PackedTrace.from_streams(sample_streams())
        assert a == b
        b.core_columns(0)[4][0] += 1  # think column
        assert a != b


class TestBinaryFormat:
    def test_bytes_round_trip(self):
        packed = PackedTrace.from_streams(sample_streams())
        clone = PackedTrace.loads(packed.dumps())
        assert clone == packed

    def test_file_round_trip_via_mmap(self, tmp_path):
        packed = PackedTrace.from_streams(
            build_streams("histogram", cores=4, per_core=80))
        path = tmp_path / "t.bin"
        with open(path, "wb") as fh:
            n = packed.dump(fh)
        assert path.stat().st_size == n
        assert PackedTrace.load(path) == packed

    def test_empty_cores_round_trip(self):
        packed = PackedTrace.from_streams([[], []])
        clone = PackedTrace.loads(packed.dumps())
        assert clone.cores == 2
        assert clone.counts == [0, 0]

    def test_bad_magic_rejected(self):
        with pytest.raises(SimulationError):
            PackedTrace.loads(b"NOTATRACE" + b"\x00" * 32)

    def test_unknown_version_rejected(self):
        blob = bytearray(PackedTrace.from_streams([[]]).dumps())
        blob[8] = FORMAT_VERSION + 1  # version byte follows the 8-byte magic
        with pytest.raises(SimulationError):
            PackedTrace.loads(bytes(blob))

    def test_truncated_file_rejected(self, tmp_path):
        packed = PackedTrace.from_streams(sample_streams())
        blob = packed.dumps()
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SimulationError):
                PackedTrace.loads(blob[:cut])
        path = tmp_path / "cut.bin"
        path.write_bytes(blob[:len(blob) - 3])
        with pytest.raises(SimulationError):
            PackedTrace.load(path)

    def test_trailing_garbage_rejected(self):
        blob = PackedTrace.from_streams(sample_streams()).dumps()
        with pytest.raises(SimulationError):
            PackedTrace.loads(blob + b"\x00")

    def test_negative_addr_in_file_rejected(self):
        packed = PackedTrace.from_streams([[MemAccess.read(0x100)]])
        packed.core_columns(0)[1][0] = -5  # addr column
        with pytest.raises(SimulationError):
            PackedTrace.loads(packed.dumps())

    def test_invalid_size_in_file_rejected(self):
        packed = PackedTrace.from_streams([[MemAccess.read(0x100)]])
        packed.core_columns(0)[2][0] = 0  # size column
        with pytest.raises(SimulationError):
            PackedTrace.loads(packed.dumps())

    def test_header_layout_is_stable(self):
        """The on-disk prefix is pinned: magic, version, endian, cores."""
        blob = PackedTrace.from_streams([[], [], []]).dumps()
        magic, version, _, _, cores = struct.unpack_from("<8sBBHI", blob, 0)
        assert magic == b"REPROPKT"
        assert version == FORMAT_VERSION
        assert cores == 3


class TestReplayParity:
    @pytest.mark.parametrize("kind", list(ProtocolKind),
                             ids=[k.short_name for k in ProtocolKind])
    def test_packed_replay_bit_identical_to_object_replay(self, kind):
        streams = build_streams("histogram", cores=4, per_core=150)
        packed = PackedTrace.from_streams(streams)
        config = SystemConfig(protocol=kind, cores=4)
        a = simulate(streams, config, name="h")
        b = simulate(packed, config, name="h")
        assert a.stats.to_dict() == b.stats.to_dict()
        assert a.flit_hops() == b.flit_hops()
        assert a.dir_owned_buckets() == b.dir_owned_buckets()

    def test_packed_replay_honours_max_accesses(self):
        streams = build_streams("kmeans", cores=4, per_core=100)
        packed = PackedTrace.from_streams(streams)
        config = SystemConfig(protocol=ProtocolKind.MESI, cores=4)
        a = simulate(streams, config, max_accesses=37)
        b = simulate(packed, config, max_accesses=37)
        assert a.stats.truncated and b.stats.truncated
        assert a.stats.to_dict() == b.stats.to_dict()

    def test_packed_rejects_too_many_streams(self):
        packed = PackedTrace.from_streams([[MemAccess.read(0)]] * 8)
        config = SystemConfig(protocol=ProtocolKind.MESI, cores=4)
        with pytest.raises(SimulationError):
            simulate(packed, config)
