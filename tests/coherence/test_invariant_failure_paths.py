"""Every ``check_region`` raise site, hit by direct state corruption.

``tests/coherence/test_invariants.py`` proves the checker raises; these
tests pin each *distinct* failure path to its exact message, so a
refactor that silently drops one of the checks fails loudly here.
"""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.params import ProtocolKind
from repro.common.wordrange import WordRange
from repro.memory.block import Block, LineState

from tests.conftest import make_engine

REGION = 16


def plant(p, core, start, end, state):
    """Force a block into an L1 behind the protocol's back."""
    rng = WordRange(start, end)
    block = Block(REGION, rng, state, [0] * rng.width)
    p.l1s[core].insert(block, lambda v: None)
    return block


class TestWordLevelSWMR:
    def test_two_writable_holders_of_one_word(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        plant(p, 0, 3, 3, LineState.M)
        plant(p, 1, 3, 3, LineState.M)
        with pytest.raises(InvariantViolation,
                           match=r"writable at cores 0 and 1"):
            p.check_region_invariants(REGION)

    def test_writable_word_cached_elsewhere(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        plant(p, 0, 3, 3, LineState.M)
        plant(p, 1, 3, 3, LineState.S)
        entry = p.directory.entry(REGION)
        entry.writers.add(0)
        entry.readers.add(1)
        with pytest.raises(InvariantViolation,
                           match=r"writable at 0 but cached at \[0, 1\]"):
            p.check_region_invariants(REGION)


class TestRegionLevelSWMR:
    def test_exclusive_plus_disjoint_sharer(self):
        # Disjoint words are fine under MW but illegal for region-granularity
        # protocols, where an exclusive region admits no other sharer.
        p = make_engine(ProtocolKind.PROTOZOA_SW)
        plant(p, 0, 0, 0, LineState.M)
        plant(p, 1, 7, 7, LineState.S)
        entry = p.directory.entry(REGION)
        entry.writers.add(0)
        entry.readers.add(1)
        with pytest.raises(InvariantViolation,
                           match=r"region-level SWMR broken"):
            p.check_region_invariants(REGION)

    def test_two_exclusive_holders(self):
        p = make_engine(ProtocolKind.MESI)
        plant(p, 0, 0, 0, LineState.E)
        plant(p, 1, 7, 7, LineState.E)
        entry = p.directory.entry(REGION)
        entry.writers.update({0, 1})
        with pytest.raises(InvariantViolation,
                           match=r"multiple exclusive holders \[0, 1\]"):
            p.check_region_invariants(REGION)


class TestDirectoryTracking:
    def test_untracked_sharer(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        plant(p, 2, 0, 0, LineState.S)
        with pytest.raises(
                InvariantViolation,
                match=r"cores \[2\] cache blocks but are untracked"):
            p.check_region_invariants(REGION)

    def test_exclusive_holder_not_in_writers(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        plant(p, 2, 0, 0, LineState.E)
        p.directory.entry(REGION).readers.add(2)  # tracked, but as a reader
        with pytest.raises(InvariantViolation,
                           match=r"exclusive holders \[2\] not in writers"):
            p.check_region_invariants(REGION)

    def test_multiple_writers_tracked_outside_mw(self):
        # Directory-only corruption: no L1 blocks at all, so every earlier
        # check passes and the writer-arity check is what fires.
        p = make_engine(ProtocolKind.PROTOZOA_SW_MR)
        p.directory.entry(REGION).writers.update({0, 1})
        with pytest.raises(InvariantViolation,
                           match=r"tracked multiple writers \[0, 1\]"):
            p.check_region_invariants(REGION)

    def test_writer_alongside_sharers_under_sw(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW)
        entry = p.directory.entry(REGION)
        entry.writers.add(0)
        entry.readers.add(1)
        with pytest.raises(
                InvariantViolation,
                match=r"tracks writer \[0\] with other sharers \[1\]"):
            p.check_region_invariants(REGION)

    def test_writer_alongside_sharers_under_mesi(self):
        p = make_engine(ProtocolKind.MESI)
        entry = p.directory.entry(REGION)
        entry.writers.add(0)
        entry.readers.add(2)
        with pytest.raises(InvariantViolation,
                           match=r"tracks writer \[0\] with other sharers \[2\]"):
            p.check_region_invariants(REGION)
