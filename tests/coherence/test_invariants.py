"""Tests for the invariant checker itself (it must catch violations)."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.params import ProtocolKind
from repro.common.wordrange import WordRange
from repro.memory.block import Block, LineState

from tests.conftest import make_engine, region_addr

REGION = 16


def addr(word):
    return region_addr(REGION, word)


def plant(p, core, start, end, state):
    """Force a block into an L1 behind the protocol's back."""
    rng = WordRange(start, end)
    block = Block(REGION, rng, state, [0] * rng.width)
    p.l1s[core].insert(block, lambda v: None)
    return block


class TestCheckerCatchesViolations:
    def test_two_writable_holders_of_one_word(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.write(0, addr(3))
        plant(p, 1, 3, 3, LineState.M)
        p.directory.entry(REGION).writers.add(1)
        with pytest.raises(InvariantViolation):
            p.check_region_invariants(REGION)

    def test_writable_plus_reader_overlap(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.write(0, addr(3))
        plant(p, 1, 3, 3, LineState.S)
        p.directory.entry(REGION).readers.add(1)
        with pytest.raises(InvariantViolation):
            p.check_region_invariants(REGION)

    def test_untracked_sharer(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        plant(p, 2, 0, 0, LineState.S)  # never told the directory
        with pytest.raises(InvariantViolation):
            p.check_region_invariants(REGION)

    def test_exclusive_holder_missing_from_writers(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        plant(p, 2, 0, 0, LineState.E)
        p.directory.entry(REGION).readers.add(2)  # tracked, but as reader
        with pytest.raises(InvariantViolation):
            p.check_region_invariants(REGION)

    def test_region_level_swmr_for_sw(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW)
        p.write(0, addr(0))
        # A *disjoint* S copy elsewhere is fine at word level but illegal
        # for the region-granularity SW protocol.
        plant(p, 1, 7, 7, LineState.S)
        p.directory.entry(REGION).readers.add(1)
        with pytest.raises(InvariantViolation):
            p.check_region_invariants(REGION)

    def test_multiple_writers_illegal_outside_mw(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW_MR)
        plant(p, 0, 0, 0, LineState.M)
        plant(p, 1, 7, 7, LineState.M)
        entry = p.directory.entry(REGION)
        entry.writers.update({0, 1})
        with pytest.raises(InvariantViolation):
            p.check_region_invariants(REGION)


class TestCheckerAcceptsLegalStates:
    def test_mw_disjoint_writers_legal(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.write(0, addr(0))
        p.write(1, addr(7))
        p.check_region_invariants(REGION)

    def test_reader_overlap_legal(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.read(0, addr(3))
        p.read(1, addr(3))
        p.check_region_invariants(REGION)

    def test_stale_directory_superset_legal(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.read(0, addr(3))
        p.directory.entry(REGION).readers.add(2)  # stale superset is fine
        p.check_region_invariants(REGION)

    def test_empty_region_legal(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.check_region_invariants(999)


class TestValueChecking:
    def test_stale_value_detected(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        p.write(0, addr(3))
        block = p.l1s[0].peek(REGION, 3)
        block.data[0] = 424242  # corrupt the cached value
        with pytest.raises(InvariantViolation):
            p.read(0, addr(3))

    def test_read_unfetched_word_is_protocol_error(self):
        from repro.common.errors import ProtocolError
        p = make_engine(ProtocolKind.PROTOZOA_MW)
        with pytest.raises(ProtocolError):
            p._do_read(0, REGION, WordRange(0, 0))
