"""Scenario tests for Protozoa-SW (Sections 3.2-3.3 of the paper)."""

from repro.common.params import ProtocolKind
from repro.memory.block import LineState

from tests.conftest import MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


def addr(word):
    return BASE + word * 8


def engine(**kw):
    return make_engine(ProtocolKind.PROTOZOA_SW, **kw)


class TestVariableGranularity:
    def test_single_word_fetch(self):
        p = engine()
        log = MessageLog(p)
        p.read(0, addr(3))
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][3] == 1  # one word, not eight

    def test_multiple_blocks_per_region_in_one_l1(self):
        p = engine()
        p.write(0, addr(0))
        p.write(0, addr(7))
        blocks = p.l1s[0].blocks_of(REGION)
        assert len(blocks) == 2
        assert {b.range.start for b in blocks} == {0, 7}

    def test_adjacent_fetches_merge(self):
        p = engine()
        p.read(0, addr(2))
        p.read(0, addr(2) + 8 * 1)  # word 3: separate block (adjacent)
        # adjacent but non-overlapping blocks stay separate
        assert len(p.l1s[0].blocks_of(REGION)) == 2

    def test_overlapping_fetch_merges(self):
        p = engine()
        p.read(0, addr(2), 16)  # words 2-3
        p.read(0, addr(3), 16)  # words 3-4: overlaps -> merge into 2-4
        blocks = p.l1s[0].blocks_of(REGION)
        assert len(blocks) == 1
        assert blocks[0].range.as_tuple() == (2, 4)


class TestOwnerAddOns:
    """Paper Section 3.3: Additional GETXs and multiple writebacks."""

    def test_additional_getx_from_owner_probes_nobody(self):
        p = engine()
        p.write(1, addr(1))  # owner of the region
        log = MessageLog(p)
        p.write(1, addr(5))  # additional GETX from the same owner
        assert log.count("Fwd-GETX") == 0
        assert log.count("INV") == 0
        assert log.count("GETX") == 1
        assert len(p.l1s[1].blocks_of(REGION)) == 2

    def test_intermediate_wback_keeps_sharer(self):
        from repro.common.params import CacheGeometry
        # Tiny Amoeba L1: one set, budget for two one-word blocks.
        p = engine(cores=2, l1=CacheGeometry(sets=1, set_bytes=32))
        sets = 1
        p.write(0, addr(0))
        p.write(0, addr(5))
        log = MessageLog(p)
        # Third block forces eviction of the LRU dirty block: WBACK, not LAST.
        p.write(0, addr(7))
        assert log.count("WBACK") == 1
        assert log.count("WBACK-LAST") == 0
        assert 0 in p.directory.peek(REGION).sharers()

    def test_final_wback_is_last_and_unsets_sharer(self):
        from repro.common.params import CacheGeometry
        p = engine(cores=2, l1=CacheGeometry(sets=1, set_bytes=16))
        p.write(0, addr(0))  # single one-word block fills the budget
        log = MessageLog(p)
        p.write(0, region_addr(REGION + 1))  # different region, same set
        assert log.count("WBACK-LAST") == 1
        assert p.directory.peek(REGION).sharers() == set()


class TestRegionGranularityCoherence:
    """SW keeps coherence at region granularity: false sharing persists."""

    def test_disjoint_writer_still_invalidates(self):
        p = engine()
        p.write(1, addr(7))  # core 1 writes word 7
        log = MessageLog(p)
        p.write(0, addr(0))  # core 0 writes word 0: disjoint, still invalidates
        assert log.count("Fwd-GETX") == 1
        assert p.l1s[1].blocks_of(REGION) == []

    def test_disjoint_reader_invalidated_by_writer(self):
        p = engine()
        p.read(1, addr(7))
        p.read(2, addr(6))
        log = MessageLog(p)
        p.write(0, addr(0))
        assert log.count("INV") == 2
        assert p.l1s[1].blocks_of(REGION) == []
        assert p.l1s[2].blocks_of(REGION) == []

    def test_write_gathers_all_owner_blocks(self):
        p = engine()
        p.write(1, addr(2))
        p.write(1, addr(5))  # two separate dirty blocks at core 1
        log = MessageLog(p)
        p.write(0, addr(0))
        wbacks = [e for e in log.entries if e[0] == "WBACK"]
        assert len(wbacks) == 1  # single gathered writeback (Figure 3)
        assert wbacks[0][3] == 2  # both dirty words transmitted

    def test_multi_block_snoop_counted(self):
        p = engine()
        p.write(1, addr(2))
        p.write(1, addr(5))
        p.write(0, addr(0))
        assert p.mshrs[1].coh_blocking_events == 1


class TestReadSharing:
    def test_variable_granularity_read_sharing(self):
        p = engine()
        p.read(1, addr(0), 16)  # words 0-1
        p.read(2, addr(6), 16)  # words 6-7
        entry = p.directory.peek(REGION)
        assert entry.readers == {1, 2}
        assert p.l1s[1].peek(REGION, 0).state is LineState.S

    def test_gets_downgrades_owner_to_sharer(self):
        p = engine()
        p.write(1, addr(2))
        log = MessageLog(p)
        p.read(0, addr(2))
        assert log.labels()[:3] == ["GETS", "Fwd-GETS", "WBACK"]
        entry = p.directory.peek(REGION)
        assert entry.writers == set()
        assert entry.readers == {0, 1}
        assert p.l1s[1].peek(REGION, 2).state is LineState.S

    def test_owner_keeps_data_after_downgrade(self):
        p = engine(check=True)
        p.write(1, addr(2))
        p.read(0, addr(2))
        p.read(1, addr(2))  # must hit and see its own value
        assert p.stats.read_hits >= 1

    def test_data_reply_carries_only_requested_words(self):
        p = engine()
        p.write(1, addr(2), 8)
        p.write(1, addr(3), 8)
        log = MessageLog(p)
        p.read(0, addr(2), 8)  # wants word 2 only
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][3] == 1


class TestSingleWriterInvariant:
    def test_no_two_owners(self):
        p = engine(check=True)
        p.write(0, addr(0))
        p.write(1, addr(7))
        p.write(2, addr(3))
        entry = p.directory.peek(REGION)
        assert len(entry.writers) == 1
        assert entry.writers == {2}
