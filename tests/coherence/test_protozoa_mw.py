"""Scenario tests for Protozoa-MW: adaptive coherence granularity (§3.4)."""

from repro.common.params import ProtocolKind
from repro.memory.block import LineState

from tests.conftest import MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


def addr(word):
    return BASE + word * 8


def engine(**kw):
    return make_engine(ProtocolKind.PROTOZOA_MW, **kw)


class TestMultipleWriters:
    def test_disjoint_writers_coexist(self):
        p = engine(check=True)
        p.write(0, addr(0))
        p.write(1, addr(7))
        assert p.l1s[0].peek(REGION, 0).state is LineState.M
        assert p.l1s[1].peek(REGION, 7).state is LineState.M
        assert p.directory.peek(REGION).writers == {0, 1}

    def test_steady_state_has_no_traffic(self):
        p = engine()
        p.write(0, addr(0))
        p.write(1, addr(7))
        log = MessageLog(p)
        for _ in range(10):
            p.write(0, addr(0))
            p.write(1, addr(7))
        assert log.entries == []

    def test_sixteen_disjoint_writers(self):
        p = engine(cores=8, check=True)
        for core in range(8):
            p.write(core, addr(core))
        assert p.directory.peek(REGION).writers == set(range(8))

    def test_overlapping_write_evicts_only_overlap(self):
        p = engine(check=True)
        p.write(1, addr(2))
        p.write(1, addr(6))
        log = MessageLog(p)
        p.write(0, addr(2))  # overlaps only word 2
        wbacks = [e for e in log.entries if e[0] == "WBACK"]
        assert wbacks[0][3] == 1  # only the overlapping word written back
        remaining = p.l1s[1].blocks_of(REGION)
        assert [b.range.start for b in remaining] == [6]
        assert 1 in p.directory.peek(REGION).writers  # still a writer


class TestAckS:
    def test_nonoverlapping_writer_answers_ack_s(self):
        p = engine()
        p.write(3, addr(7))
        log = MessageLog(p)
        p.write(0, addr(0))
        assert log.count("ACK-S") == 1
        assert log.count("WBACK") == 0
        assert 3 in p.directory.peek(REGION).writers

    def test_nonoverlapping_reader_stays(self):
        p = engine()
        p.read(2, addr(5))
        p.write(3, addr(7))  # makes core 2 a tracked reader, 3 a writer
        log = MessageLog(p)
        p.write(0, addr(0))
        # Both 2 and 3 are probed (directory doesn't know words), both stay.
        assert log.count("ACK-S") == 2
        assert p.l1s[2].peek(REGION, 5) is not None

    def test_ack_s_counted_in_stats(self):
        p = engine()
        p.write(3, addr(7))
        p.write(0, addr(0))
        assert p.stats.ack_s == 1


class TestReads:
    def test_reader_does_not_probe_other_readers(self):
        p = engine()
        p.read(1, addr(0))
        p.read(2, addr(0))
        log = MessageLog(p)
        p.read(3, addr(0))
        assert log.count("INV") == 0
        assert log.count("Fwd-GETS") == 0

    def test_read_downgrades_overlapping_writer(self):
        p = engine(check=True)
        p.write(1, addr(2))
        log = MessageLog(p)
        p.read(0, addr(2))
        assert log.labels()[:3] == ["GETS", "Fwd-GETS", "WBACK"]
        assert p.l1s[1].peek(REGION, 2).state is LineState.S
        # Both now read-share word 2.
        p.read(1, addr(2))
        assert p.stats.read_hits >= 1

    def test_read_leaves_nonoverlapping_writer_alone(self):
        p = engine(check=True)
        p.write(1, addr(7))
        log = MessageLog(p)
        p.read(0, addr(0))
        assert log.count("ACK-S") == 1
        assert p.l1s[1].peek(REGION, 7).state is LineState.M
        # Writer continues writing with no traffic.
        log.clear()
        p.write(1, addr(7))
        assert log.entries == []


class TestStaleSharers:
    def test_stale_sharer_nacks_and_is_dropped(self):
        p = engine()
        p.read(1, addr(0))
        p.read(2, addr(0))  # both S
        block = p.l1s[1].peek(REGION, 0)
        p.l1s[1].remove(block)  # silent clean drop
        log = MessageLog(p)
        p.write(0, addr(3))
        assert log.count("NACK") == 1
        assert 1 not in p.directory.peek(REGION).sharers()
        # Second write probes only remaining sharers.
        log.clear()
        p.write(0, addr(4))
        assert log.count("NACK") == 0


class TestDirectoryCensus:
    def test_multi_owner_bucket(self):
        p = engine()
        p.write(0, addr(0))
        p.write(1, addr(7))  # lookup sees 1 owner -> "1owner"
        p.write(2, addr(3))  # lookup sees 2 owners -> ">1owner"
        buckets = p.directory.owned_access_buckets()
        assert buckets[">1owner"] >= 1

    def test_word_level_swmr_enforced(self):
        p = engine(check=True)
        p.write(0, addr(0))
        p.write(1, addr(0))  # takes over word 0
        assert p.l1s[0].blocks_of(REGION) == []
        p.check_all_invariants()


class TestValuePropagation:
    def test_write_write_handoff(self):
        p = engine(check=True)
        p.write(0, addr(3))
        p.write(1, addr(3))
        p.read(2, addr(3))  # value check verifies core 1's value arrives

    def test_patchwork_read_after_disjoint_writes(self):
        p = engine(check=True)
        for core, word in [(0, 0), (1, 3), (2, 7)]:
            p.write(core, addr(word))
        # Core 3 reads all three words; L2 must have patched the writebacks.
        p.read(3, addr(0))
        p.read(3, addr(3))
        p.read(3, addr(7))
