"""Tests for the region-granularity directory and Figure 11 histogram."""

from repro.coherence.directory import Directory, DirectoryEntry


class TestEntry:
    def test_fresh_entry_unused(self):
        e = DirectoryEntry()
        assert e.unused
        assert not e.owned
        assert e.sharers() == set()

    def test_sole_owner(self):
        e = DirectoryEntry()
        e.writers.add(3)
        assert e.sole_owner() == 3
        e.writers.add(5)
        assert e.sole_owner() is None

    def test_drop_removes_both_roles(self):
        e = DirectoryEntry()
        e.readers.add(1)
        e.writers.add(1)
        e.drop(1)
        assert e.unused

    def test_sharers_union(self):
        e = DirectoryEntry()
        e.readers.update({1, 2})
        e.writers.add(3)
        assert e.sharers() == {1, 2, 3}


class TestDirectory:
    def test_entry_created_on_demand(self):
        d = Directory()
        assert d.peek(7) is None
        e = d.entry(7)
        assert d.peek(7) is e
        assert len(d) == 1

    def test_forget(self):
        d = Directory()
        d.entry(7)
        d.forget(7)
        assert d.peek(7) is None
        d.forget(7)  # idempotent

    def test_iteration(self):
        d = Directory()
        d.entry(1)
        d.entry(2)
        assert sorted(r for r, _ in d) == [1, 2]


class TestOwnedHistogram:
    def test_unowned_lookup_not_counted(self):
        d = Directory()
        d.entry(0).readers.add(1)
        d.lookup(0)
        assert sum(d.owned_access_buckets().values()) == 0

    def test_one_owner_only(self):
        d = Directory()
        d.entry(0).writers.add(1)
        d.lookup(0)
        assert d.owned_access_buckets() == {
            "1owner": 1, "1owner+sharers": 0, ">1owner": 0,
        }

    def test_one_owner_with_sharers(self):
        d = Directory()
        e = d.entry(0)
        e.writers.add(1)
        e.readers.add(2)
        d.lookup(0)
        assert d.owned_access_buckets()["1owner+sharers"] == 1

    def test_multi_owner(self):
        d = Directory()
        e = d.entry(0)
        e.writers.update({1, 2})
        d.lookup(0)
        d.lookup(0)
        assert d.owned_access_buckets()[">1owner"] == 2

    def test_owner_also_reader_counts_as_owner_only(self):
        # A core tracked in both vectors is one sharer, not "owner+sharers".
        d = Directory()
        e = d.entry(0)
        e.writers.add(1)
        e.readers.add(1)
        d.lookup(0)
        assert d.owned_access_buckets()["1owner"] == 1
