"""Scenario tests for the MESI baseline protocol."""

import pytest

from repro.common.params import ProtocolKind
from repro.memory.block import LineState

from tests.conftest import MessageLog, make_engine, region_addr

R0 = region_addr(16)  # region 16, homed on node 0 in a 16-node mesh
R1 = region_addr(17)


def engine(**kw):
    return make_engine(ProtocolKind.MESI, **kw)


class TestReadPath:
    def test_cold_read_grants_exclusive(self):
        p = engine()
        p.read(0, R0)
        block = p.l1s[0].peek(16, 0)
        assert block.state is LineState.E
        assert p.directory.peek(16).writers == {0}

    def test_second_read_hits(self):
        p = engine()
        p.read(0, R0)
        log = MessageLog(p)
        p.read(0, R0 + 8)  # same block, different word
        assert log.entries == []

    def test_shared_read_grants_s_to_both(self):
        p = engine()
        p.read(0, R0)
        p.read(1, R0)
        assert p.l1s[0].peek(16, 0).state is LineState.S
        assert p.l1s[1].peek(16, 0).state is LineState.S
        entry = p.directory.peek(16)
        assert entry.readers == {0, 1}
        assert entry.writers == set()

    def test_read_from_dirty_owner_is_4hop(self):
        p = engine()
        p.write(0, R0, 8)
        log = MessageLog(p)
        p.read(1, R0)
        assert log.labels() == ["GETS", "Fwd-GETS", "WBACK", "DATA"]
        # full-block writeback and full-block fill
        assert log.entries[2][3] == 8
        assert log.entries[3][3] == 8

    def test_value_forwarded_from_owner(self):
        p = engine(check=True)
        p.write(0, R0, 8)  # value check would fail if DATA were stale
        p.read(1, R0)

    def test_full_block_always_transferred(self):
        p = engine()
        log = MessageLog(p)
        p.read(0, R0)
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][3] == 8


class TestWritePath:
    def test_write_invalidates_all_sharers(self):
        p = engine()
        for core in (1, 2, 3):
            p.read(core, R0)
        log = MessageLog(p)
        p.write(0, R0)
        assert log.count("INV") == 3
        assert log.count("ACK") >= 3
        for core in (1, 2, 3):
            assert p.l1s[core].peek(16, 0) is None
        assert p.directory.peek(16).writers == {0}

    def test_upgrade_sends_no_data(self):
        p = engine()
        p.read(0, R0)
        p.read(1, R0)
        log = MessageLog(p)
        p.write(0, R0)
        assert "UPGRADE" in log.labels()
        assert log.count("DATA") == 0
        assert p.stats.upgrade_misses == 1

    def test_write_to_dirty_remote_forwards(self):
        p = engine()
        p.write(1, R0)
        log = MessageLog(p)
        p.write(0, R0)
        assert log.labels() == ["GETX", "Fwd-GETX", "WBACK", "DATA"]
        assert p.l1s[1].peek(16, 0) is None

    def test_silent_e_to_m_upgrade(self):
        p = engine()
        p.read(0, R0)  # E
        log = MessageLog(p)
        p.write(0, R0)  # silent E->M
        assert log.entries == []
        assert p.l1s[0].peek(16, 0).state is LineState.M

    def test_write_after_silent_e_drop_is_reowned(self):
        p = engine()
        p.read(0, R0)  # E at core 0, tracked as writer
        # Simulate silent drop by filling the set (region 16 and 16+sets collide).
        # Easier: remove the block directly, as a silent clean eviction would.
        block = p.l1s[0].peek(16, 0)
        p.l1s[0].remove(block)
        log = MessageLog(p)
        p.write(0, R0)
        # Directory still thinks core 0 owns it: no probes needed.
        assert log.count("INV") == 0 and log.count("Fwd-GETX") == 0
        assert p.l1s[0].peek(16, 0).state is LineState.M


class TestNacks:
    def test_stale_sharer_nacks_probe(self):
        p = engine()
        p.read(1, R0)  # E at core 1 (tracked as writer)
        block = p.l1s[1].peek(16, 0)
        p.l1s[1].remove(block)  # silent clean drop
        log = MessageLog(p)
        p.read(0, R0)
        assert log.count("NACK") == 1
        assert p.directory.peek(16).sharers() == {0}


class TestEviction:
    def test_dirty_eviction_writes_back_last(self):
        # Two regions in the same set with a 1-way fixed cache force eviction.
        p = make_engine(ProtocolKind.MESI, cores=2)
        sets = p.l1s[0].num_sets
        p.write(0, region_addr(16))
        log = MessageLog(p)
        p.write(0, region_addr(16 + sets))  # same set -> evict dirty victim
        assert log.count("WBACK-LAST") >= 0  # depends on associativity
        if log.count("WBACK-LAST"):
            assert 16 not in {b.region for b in p.l1s[0]}

    def test_forced_eviction_with_tiny_cache(self):
        from repro.common.params import CacheGeometry
        p = make_engine(
            ProtocolKind.MESI, cores=2,
            l1=CacheGeometry(sets=1, set_bytes=288, fixed_ways=1),
        )
        sets = p.l1s[0].num_sets
        p.write(0, region_addr(16))
        log = MessageLog(p)
        p.write(0, region_addr(16 + sets))  # same set -> evicts the victim
        assert log.count("WBACK-LAST") == 1
        assert p.directory.peek(16).sharers() == set()
        assert p.stats.writebacks_last == 1

    def test_clean_eviction_is_silent(self):
        from repro.common.params import CacheGeometry
        p = make_engine(
            ProtocolKind.MESI, cores=2,
            l1=CacheGeometry(sets=1, set_bytes=288, fixed_ways=1),
        )
        sets = p.l1s[0].num_sets
        p.read(0, region_addr(16))
        log = MessageLog(p)
        p.read(0, region_addr(16 + sets))
        assert log.count("WBACK") == 0 and log.count("WBACK-LAST") == 0
        # Directory still (stale) tracks core 0 for region 16.
        assert 0 in p.directory.peek(16).sharers()


class TestBlockSizeSweep:
    @pytest.mark.parametrize("block_bytes,words", [(16, 2), (32, 4), (128, 16)])
    def test_other_block_sizes(self, block_bytes, words):
        from tests.conftest import small_config
        from repro.system.machine import build_protocol
        cfg = small_config(ProtocolKind.MESI, cores=2).with_block_bytes(block_bytes)
        p = build_protocol(cfg)
        log = MessageLog(p)
        p.read(0, 0)
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][3] == words
