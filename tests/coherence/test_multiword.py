"""Multi-word access handling across all protocols."""

import pytest

from repro.common.params import ProtocolKind
from repro.memory.block import LineState

from tests.conftest import ALL_KINDS, MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
class TestMultiWordAccesses:
    def test_full_region_read(self, kind):
        p = make_engine(kind, check=True)
        p.read(0, BASE, 64)
        covered = p.l1s[0].covered_mask(REGION, p.amap.full_range())
        assert covered == 0xFF

    def test_full_region_write(self, kind):
        p = make_engine(kind, check=True)
        p.write(0, BASE, 64)
        for word in range(8):
            block = p.l1s[0].peek(REGION, word)
            assert block is not None and block.state is LineState.M

    def test_partial_span_read_then_adjacent_write(self, kind):
        p = make_engine(kind, check=True)
        p.read(0, BASE + 16, 24)  # words 2-4
        p.write(0, BASE + 40, 16)  # words 5-6
        assert p.l1s[0].covered_mask(REGION, p.amap.full_range()) & 0b01111100 \
            == 0b01111100

    def test_cross_region_access_clamped(self, kind):
        # Accesses never straddle regions: the range clips at the boundary.
        p = make_engine(kind, check=True)
        p.read(0, BASE + 56, 32)  # word 7 + would-be spill
        assert p.l1s[0].peek(REGION, 7) is not None
        assert p.l1s[0].blocks_of(REGION + 1) == []

    def test_write_spanning_own_and_remote_words(self, kind):
        p = make_engine(kind, check=True)
        p.write(0, BASE, 16)  # core 0 owns words 0-1
        p.write(1, BASE + 32, 16)  # core 1 owns words 4-5
        p.write(0, BASE, 64)  # core 0 takes the whole region
        assert p.l1s[1].overlapping(REGION, p.amap.full_range()) == []
        # Values must have been patched through (check_values verifies).
        p.read(0, BASE + 32)

    def test_upgrade_span_is_exclusive_everywhere(self, kind):
        p = make_engine(kind, check=True)
        p.read(0, BASE, 64)
        p.read(1, BASE, 64)
        p.write(0, BASE + 24, 16)  # words 3-4 upgrade
        # Core 1 must have lost at least the overlapping words.
        assert p.l1s[1].covered_mask(REGION, p.amap.full_range()) & 0b00011000 == 0

    def test_merge_survives_repeated_overlapping_spans(self, kind):
        p = make_engine(kind, check=True)
        for start in range(0, 6):
            p.read(0, BASE + start * 8, 24)  # sliding 3-word window
        p.l1s[0].check_integrity()
        assert p.l1s[0].covered_mask(REGION, p.amap.full_range()) == 0xFF


class TestMergedStateEscalation:
    def test_read_merge_with_own_dirty_requests_exclusive(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW, check=True)
        p.write(0, BASE + 32, 8)  # word 4 dirty at core 0
        p.read(1, BASE + 16, 8)  # word 2 shared at core 1
        log = MessageLog(p)
        # Core 0 reads words 2-4: merges with its own M block, so the
        # request must be exclusive and invalidate core 1's overlap.
        p.read(0, BASE + 16, 24)
        assert p.l1s[1].blocks_of(REGION) == []
        merged = p.l1s[0].peek(REGION, 3)
        assert merged.state is LineState.M
        p.check_all_invariants()
