"""Engine edge cases and defensive-path coverage."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import ProtocolKind

from tests.conftest import MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


class TestAccessValidation:
    def test_core_out_of_range(self):
        p = make_engine(ProtocolKind.MESI, cores=2)
        with pytest.raises(SimulationError):
            p.read(5, BASE)
        with pytest.raises(SimulationError):
            p.write(-1, BASE)

    def test_byte_sized_accesses(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW, check=True)
        p.write(0, BASE + 3, 1)  # single byte within word 0
        p.read(1, BASE + 5, 2)  # two bytes, same word
        assert p.stats.accesses == 2


class TestFlushSemantics:
    def test_flush_empties_caches_and_directory(self, any_kind):
        p = make_engine(any_kind)
        p.write(0, BASE)
        p.read(1, region_addr(17))
        p.flush()
        assert len(p.l1s[0]) == 0
        assert len(p.l1s[1]) == 0
        for region in (16, 17):
            entry = p.directory.peek(region)
            assert entry is None or entry.unused

    def test_flush_is_idempotent(self, any_kind):
        p = make_engine(any_kind)
        p.write(0, BASE)
        p.flush()
        before = p.stats.traffic.total
        p.flush()
        assert p.stats.traffic.total == before

    def test_simulation_continues_after_flush(self, any_kind):
        p = make_engine(any_kind, check=True)
        p.write(0, BASE)
        p.flush()
        p.read(1, BASE)  # value must still be correct (L2 holds it)


class TestRepeatedOwnership:
    def test_ownership_round_robin(self, any_kind):
        p = make_engine(any_kind, check=True)
        for turn in range(12):
            p.write(turn % 4, BASE)
        entry = p.directory.peek(REGION)
        assert 3 in entry.writers

    def test_read_write_read_same_core(self, any_kind):
        p = make_engine(any_kind, check=True)
        p.read(0, BASE)
        p.write(0, BASE)
        log = MessageLog(p)
        p.read(0, BASE)
        assert log.entries == []  # M block satisfies the read


class TestStatsSanity:
    def test_latency_histogram_populated(self, any_kind):
        p = make_engine(any_kind)
        p.read(0, BASE)
        p.read(1, BASE)
        assert p.stats.miss_latency.count == p.stats.misses
        assert p.stats.miss_latency.mean > p.config.l1.hit_latency

    def test_hit_latency_constant(self, any_kind):
        p = make_engine(any_kind)
        p.read(0, BASE)
        assert p.read(0, BASE) == p.config.l1.hit_latency

    def test_miss_latency_exceeds_hit(self, any_kind):
        p = make_engine(any_kind)
        first = p.read(0, BASE)
        assert first > p.config.l1.hit_latency

    def test_remote_dirty_costs_more_than_clean(self, any_kind):
        # Full-region footprints so the dirty writeback (5 flits) is
        # visibly more expensive than the clean downgrade ACK (1 flit).
        clean = make_engine(any_kind)
        clean.read(1, BASE, 64)
        clean_latency = clean.read(0, BASE, 64)
        dirty = make_engine(any_kind)
        dirty.write(1, BASE, 64)
        dirty_latency = dirty.read(0, BASE, 64)
        assert dirty_latency > clean_latency  # 4-hop beats 2-hop


class TestColdMissCosts:
    def test_memory_latency_charged_once(self, any_kind):
        p = make_engine(any_kind)
        cold = p.read(0, BASE)
        warm = p.read(1, BASE)
        assert cold >= p.config.memory_latency
        assert warm < p.config.memory_latency

    def test_memory_messages_not_counted_at_l1(self, any_kind):
        p = make_engine(any_kind)
        p.read(0, BASE)
        # Control at L1: GETS + DATA header only; MEM_READ/MEM_DATA excluded.
        assert p.stats.traffic.control_total == 16
