"""Correctness invariant (i) from Section 3.6: with fixed whole-region
predictions, Protozoa's transitions match MESI's.

Running Protozoa-SW with the whole-region predictor against MESI on the
same trace must produce identical miss counts, invalidations, writebacks,
and byte-for-byte identical traffic (as long as capacity evictions don't
engage, since the two L1 organisations differ there)."""

import random

import pytest

from repro.common.params import PredictorKind, ProtocolKind

from tests.conftest import make_engine


def drive(p, seed=7, accesses=2000, regions=12):
    rng = random.Random(seed)
    for _ in range(accesses):
        core = rng.randrange(p.config.cores)
        addr = rng.randrange(regions) * 64 + rng.randrange(8) * 8
        if rng.random() < 0.4:
            p.write(core, addr, 8, pc=rng.randrange(8))
        else:
            p.read(core, addr, 8, pc=rng.randrange(8))
    return p


@pytest.fixture(scope="module")
def pair():
    mesi = drive(make_engine(ProtocolKind.MESI))
    sw = drive(make_engine(ProtocolKind.PROTOZOA_SW,
                           predictor=PredictorKind.WHOLE_REGION))
    return mesi, sw


class TestMESIEquivalence:
    def test_identical_misses(self, pair):
        mesi, sw = pair
        assert mesi.stats.misses == sw.stats.misses
        assert mesi.stats.read_misses == sw.stats.read_misses
        assert mesi.stats.write_misses == sw.stats.write_misses
        assert mesi.stats.upgrade_misses == sw.stats.upgrade_misses

    def test_identical_invalidations(self, pair):
        mesi, sw = pair
        assert mesi.stats.invalidations_sent == sw.stats.invalidations_sent
        assert mesi.stats.nacks == sw.stats.nacks

    def test_identical_writebacks(self, pair):
        mesi, sw = pair
        assert mesi.stats.writebacks == sw.stats.writebacks

    def test_identical_traffic_bytes(self, pair):
        mesi, sw = pair
        mesi.flush()
        sw.flush()
        assert mesi.stats.traffic.total == sw.stats.traffic.total
        assert mesi.stats.traffic.control == sw.stats.traffic.control

    def test_identical_flit_hops(self, pair):
        mesi, sw = pair
        assert mesi.net.total_flit_hops == sw.net.total_flit_hops


class TestMWEquivalenceOnPrivateData:
    """With no sharing at all, every protocol behaves identically."""

    def test_private_traffic_identical(self):
        results = {}
        for kind in ProtocolKind:
            p = make_engine(kind, predictor=PredictorKind.WHOLE_REGION)
            rng = random.Random(3)
            for _ in range(1500):
                core = rng.randrange(p.config.cores)
                # Each core touches a disjoint set of regions.
                region = 100 * core + rng.randrange(10)
                addr = region * 64 + rng.randrange(8) * 8
                if rng.random() < 0.4:
                    p.write(core, addr)
                else:
                    p.read(core, addr)
            p.flush()
            results[kind] = (p.stats.misses, p.stats.traffic.total,
                             p.net.total_flit_hops)
        assert len(set(results.values())) == 1
