"""Tests for L2 capacity recalls (inclusion maintenance)."""

import pytest

from repro.common.params import L2Config

from tests.conftest import ALL_KINDS, MessageLog, make_engine, region_addr


def tiny_l2_engine(kind, capacity_regions=4):
    # L2Config tiles*tile_kib*1024 bytes -> capacity_regions at 64 B/region.
    # Use one tile holding exactly capacity_regions KiB-fractions: easiest is
    # a custom config object with a small tile.
    cfg_kib = max(capacity_regions * 64 // 1024, 1)
    p = make_engine(kind, cores=2, l2=L2Config(tiles=1, tile_kib=cfg_kib))
    assert p.l2.capacity_regions == max(capacity_regions, 16)
    return p


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
class TestRecall:
    def test_recall_invalidates_l1_copies(self, kind):
        p = make_engine(kind, cores=2)
        p.l2.capacity_regions = 2  # shrink after construction
        p.write(0, region_addr(10))
        p.read(1, region_addr(11))
        p.read(0, region_addr(12))  # overflows: region 10 recalled
        assert not p.l2.present(10)
        assert p.l1s[0].blocks_of(10) == []
        assert p.directory.peek(10) is None

    def test_recall_preserves_dirty_data(self, kind):
        p = make_engine(kind, cores=2)
        p.l2.capacity_regions = 2
        p.write(0, region_addr(10))
        p.read(1, region_addr(11))
        p.read(0, region_addr(12))  # recalls region 10 (dirty writeback)
        assert p.l2.memory_writebacks == 1
        # Re-reading region 10 must return the written value (value check).
        p.read(0, region_addr(10))

    def test_recall_emits_invalidation_messages(self, kind):
        p = make_engine(kind, cores=2)
        p.l2.capacity_regions = 2
        p.write(0, region_addr(10))
        p.read(1, region_addr(11))
        log = MessageLog(p)
        p.read(0, region_addr(12))
        assert log.count("INV") >= 1  # the recall probe

    def test_lru_region_chosen(self, kind):
        p = make_engine(kind, cores=2)
        p.l2.capacity_regions = 2
        p.read(0, region_addr(10))
        p.read(0, region_addr(11))
        p.read(1, region_addr(10))  # miss at core 1: refreshes region 10 at L2
        p.read(0, region_addr(12))
        assert p.l2.present(10)
        assert not p.l2.present(11)
