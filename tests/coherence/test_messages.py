"""Tests for message types, categories, and byte sizing (paper Table 3)."""

import pytest

from repro.coherence.messages import MsgCategory, MsgType


class TestSizes:
    def test_control_messages_are_8_bytes(self):
        for mtype in (MsgType.GETS, MsgType.GETX, MsgType.UPGRADE, MsgType.INV,
                      MsgType.ACK, MsgType.ACK_S, MsgType.NACK,
                      MsgType.FWD_GETS, MsgType.FWD_GETX):
            assert mtype.size_bytes() == 8

    def test_data_message_header_plus_words(self):
        assert MsgType.DATA.size_bytes(0) == 8
        assert MsgType.DATA.size_bytes(4) == 8 + 32
        assert MsgType.WBACK.size_bytes(8) == 8 + 64

    def test_control_cannot_carry_payload(self):
        with pytest.raises(ValueError):
            MsgType.ACK.size_bytes(1)


class TestCategories:
    def test_figure10_buckets(self):
        assert MsgType.GETS.category is MsgCategory.REQ
        assert MsgType.GETX.category is MsgCategory.REQ
        assert MsgType.UPGRADE.category is MsgCategory.REQ
        assert MsgType.FWD_GETS.category is MsgCategory.FWD
        assert MsgType.FWD_GETX.category is MsgCategory.FWD
        assert MsgType.INV.category is MsgCategory.INV
        assert MsgType.ACK.category is MsgCategory.ACK
        assert MsgType.ACK_S.category is MsgCategory.ACK
        assert MsgType.NACK.category is MsgCategory.NACK

    def test_data_headers_bucketed_separately(self):
        assert MsgType.DATA.category is MsgCategory.HDR
        assert MsgType.WBACK.category is MsgCategory.HDR
        assert MsgType.WBACK_LAST.category is MsgCategory.HDR


class TestProtozoaAdditions:
    """Table 3: the message types Protozoa adds over MESI."""

    def test_wback_last_exists_and_carries_data(self):
        assert MsgType.WBACK_LAST.carries_data

    def test_ack_s_is_control(self):
        assert not MsgType.ACK_S.carries_data
        assert MsgType.ACK_S.size_bytes() == 8

    def test_labels_unique(self):
        labels = [m.label for m in MsgType]
        assert len(labels) == len(set(labels))
