"""Tests for the Section 3.6 metadata storage model."""

import pytest

from repro.coherence.overhead import (
    directory_overhead,
    entry_bits,
    overhead_table,
)
from repro.common.params import ProtocolKind, SystemConfig


class TestEntryBits:
    def test_mesi_and_sw_identical(self):
        # "For Protozoa-SW, each directory entry is identical in size to
        # the baseline MESI protocol."
        assert entry_bits(ProtocolKind.MESI, 16) == 16
        assert entry_bits(ProtocolKind.PROTOZOA_SW, 16) == 16

    def test_mw_doubles(self):
        # "Protozoa-MW doubles the size of each directory entry."
        assert entry_bits(ProtocolKind.PROTOZOA_MW, 16) == 32

    def test_swmr_adds_log_p(self):
        # "Protozoa-SW+MR ... needs only logP additional bits."
        assert entry_bits(ProtocolKind.PROTOZOA_SW_MR, 16) == 16 + 4
        assert entry_bits(ProtocolKind.PROTOZOA_SW_MR, 64) == 64 + 6

    def test_small_core_counts(self):
        assert entry_bits(ProtocolKind.PROTOZOA_SW_MR, 2) == 3


class TestDirectorySizing:
    def test_entries_track_l2_regions(self):
        cfg = SystemConfig()
        ov = directory_overhead(cfg)
        assert ov.entries == 32 * 1024 * 1024 // 64
        assert ov.bits_per_entry == 16

    def test_table4_mesi_overhead(self):
        # 16-bit vector per 64-byte block = 2/64 ~ 3.1% of the L2 array.
        cfg = SystemConfig()
        ov = directory_overhead(cfg)
        assert ov.overhead_vs_l2(cfg.l2.capacity_bytes) == pytest.approx(2 / 64)

    def test_mw_costs_twice_mesi(self):
        mesi = directory_overhead(SystemConfig())
        mw = directory_overhead(SystemConfig(protocol=ProtocolKind.PROTOZOA_MW))
        assert mw.total_bytes == 2 * mesi.total_bytes

    def test_total_bits_bytes(self):
        ov = directory_overhead(SystemConfig(cores=16))
        assert ov.total_bytes == ov.total_bits // 8


class TestTable:
    def test_render(self):
        text = overhead_table(16)
        assert "MESI" in text and "MW" in text
        assert "2.00" in text  # MW doubles
