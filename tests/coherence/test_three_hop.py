"""Tests for the 3-hop forwarding option (paper Section 6)."""

import pytest

from repro.common.params import ProtocolKind

from tests.conftest import ALL_KINDS, MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


def addr(word):
    return BASE + word * 8


class TestMESIThreeHop:
    def test_dirty_owner_forwards_directly(self):
        p = make_engine(ProtocolKind.MESI, three_hop=True)
        p.write(1, addr(0))
        log = MessageLog(p)
        p.read(0, addr(0))
        # DATA now originates at core 1's node, not the home.
        data = [e for e in log.entries if e[0] == "DATA"]
        assert len(data) == 1
        assert data[0][1] == p.topology.core_node(1)
        assert data[0][2] == p.topology.core_node(0)
        assert log.count("WBACK") == 1  # home still patched in parallel
        assert log.count("ACK") >= 1  # completion from home

    def test_three_hop_lowers_latency(self):
        def read_latency(three_hop):
            p = make_engine(ProtocolKind.MESI, cores=16, three_hop=three_hop)
            # Home of region 21 is node 5; owner at core 15, requester 0:
            # the direct hop is shorter than owner->home->requester.
            p.write(15, region_addr(21))
            return p.read(0, region_addr(21))

        assert read_latency(True) < read_latency(False)

    def test_clean_or_absent_owner_falls_back(self):
        p = make_engine(ProtocolKind.MESI, three_hop=True)
        p.read(1, addr(0))  # E (clean) at core 1
        log = MessageLog(p)
        p.read(0, addr(0))
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][1] == p.topology.home_node(REGION)  # 4-hop from home

    def test_l2_resident_data_unaffected(self):
        p = make_engine(ProtocolKind.MESI, three_hop=True)
        p.read(1, addr(0))
        p.read(2, addr(0))
        log = MessageLog(p)
        p.read(0, addr(0))  # no dirty owner at all
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][1] == p.topology.home_node(REGION)


class TestProtozoaFallback:
    def test_partial_overlap_falls_back_to_four_hop(self):
        # Paper: "it could occur because the fwd request does not overlap,
        # or partially overlap, with the owner" -> fall back to 4-hop.
        p = make_engine(ProtocolKind.PROTOZOA_MW, three_hop=True)
        p.write(1, addr(2))  # owner holds word 2 dirty only
        log = MessageLog(p)
        p.read(0, addr(2), 16)  # wants words 2-3: owner covers only word 2
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][1] == p.topology.home_node(REGION)

    def test_full_overlap_forwards(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW, three_hop=True)
        p.write(1, addr(2), 16)  # owner holds words 2-3 dirty
        log = MessageLog(p)
        p.read(0, addr(2), 16)
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][1] == p.topology.core_node(1)

    def test_multiple_suppliers_fall_back(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW, three_hop=True)
        p.write(1, addr(0))
        p.write(2, addr(7))  # two disjoint dirty owners
        log = MessageLog(p)
        p.write(0, addr(0), 64)  # needs writebacks from both
        data = [e for e in log.entries if e[0] == "DATA"]
        assert data[0][1] == p.topology.home_node(REGION)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
class TestThreeHopCorrectness:
    def test_random_tester_passes(self, kind):
        from repro.common.params import SystemConfig
        from repro.verification.random_tester import RandomTester
        cfg = SystemConfig(protocol=kind, cores=4, three_hop=True)
        RandomTester(cfg, regions=4, seed=31, check_every=16).run(1500)

    def test_values_forwarded_correctly(self, kind):
        p = make_engine(kind, three_hop=True, check=True)
        p.write(1, addr(0))
        p.read(0, addr(0))  # golden-value check validates the forward
        p.write(2, addr(0))
        p.read(3, addr(0))
