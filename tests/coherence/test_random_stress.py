"""Random-tester stress runs (the paper's verification methodology).

Every protocol is driven with adversarial random traffic under full value
and invariant checking, in both hot-sharing and capacity-stress shapes,
plus a hypothesis-driven short fuzz across seeds and parameters.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import ProtocolKind, SystemConfig
from repro.verification.random_tester import RandomTester

from tests.conftest import ALL_KINDS


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
class TestHotSharing:
    def test_contended_regions(self, kind):
        cfg = SystemConfig(protocol=kind, cores=4)
        report = RandomTester(cfg, regions=4, seed=11, check_every=16).run(2000)
        assert report.accesses == 2000
        assert report.misses > 0
        assert report.invalidations > 0

    def test_wide_spans(self, kind):
        cfg = SystemConfig(protocol=kind, cores=4)
        report = RandomTester(cfg, regions=3, max_span_words=8, seed=5, check_every=16).run(1200)
        assert report.writebacks > 0

    def test_write_heavy(self, kind):
        cfg = SystemConfig(protocol=kind, cores=4)
        RandomTester(cfg, regions=4, write_frac=0.9, seed=2, check_every=16).run(1200)

    def test_read_heavy(self, kind):
        cfg = SystemConfig(protocol=kind, cores=4)
        RandomTester(cfg, regions=4, write_frac=0.05, seed=2, check_every=16).run(1200)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
class TestCapacityStress:
    def test_same_set_churn(self, kind):
        cfg = SystemConfig(protocol=kind, cores=4)
        report = RandomTester(cfg, regions=10, seed=13, same_set=True, check_every=16).run(2000)
        assert report.evictions > 0

    def test_nacks_exercised(self, kind):
        cfg = SystemConfig(protocol=kind, cores=4)
        report = RandomTester(cfg, regions=10, seed=13, same_set=True,
                              write_frac=0.6, check_every=16).run(2000)
        assert report.nacks > 0


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def test_many_cores(kind):
    cfg = SystemConfig(protocol=kind, cores=16)
    report = RandomTester(cfg, regions=6, seed=17, check_every=32).run(2000)
    assert report.accesses == 2000


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def test_multi_block_snoops_exercised(kind):
    if kind is ProtocolKind.MESI:
        pytest.skip("fixed blocks never need multi-block snoops")
    cfg = SystemConfig(protocol=kind, cores=4)
    report = RandomTester(cfg, regions=3, seed=19, check_every=16).run(1500)
    assert report.multi_block_snoops > 0


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(ALL_KINDS),
    seed=st.integers(0, 1000),
    regions=st.integers(1, 6),
    write_frac=st.floats(0.1, 0.9),
    same_set=st.booleans(),
)
def test_fuzz_never_violates(kind, seed, regions, write_frac, same_set):
    cfg = SystemConfig(protocol=kind, cores=3)
    tester = RandomTester(cfg, regions=regions, write_frac=write_frac,
                          seed=seed, same_set=same_set, check_every=4)
    tester.run(400)
