"""The paper's figure walkthroughs as executable message-sequence tests.

Each test reconstructs the initial cache/directory state of a figure in
Section 3 and asserts the exact coherence-message sequence the paper draws.
"""

from repro.common.params import ProtocolKind
from repro.memory.block import LineState

from tests.conftest import MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


def addr(word):
    return BASE + word * 8


class TestFigure4:
    """Write miss (GETX) handling in Protozoa-SW."""

    def test_sequence(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW, check=True)
        for w in range(2, 7):
            p.write(1, addr(w))  # Core-1 caches words 2-6 dirty
        log = MessageLog(p)
        p.write(0, addr(0), 8 * 4)  # Core-0 GETX for words 0-3
        assert log.labels() == ["GETX", "Fwd-GETX", "WBACK", "DATA"]
        # 3y: Core-1 writes back all cached words, overlapping or not.
        assert log.entries[2][3] == 5  # words 2-6
        # 4y: the L2 forwards only the requested words 0-3.
        assert log.entries[3][3] == 4

    def test_final_state(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW, check=True)
        for w in range(2, 7):
            p.write(1, addr(w))
        p.write(0, addr(0), 8 * 4)
        assert p.directory.peek(REGION).writers == {0}
        assert p.l1s[1].blocks_of(REGION) == []
        got = p.l1s[0].blocks_of(REGION)
        assert len(got) == 1 and got[0].range.as_tuple() == (0, 3)


class TestFigure5:
    """Multiple L1 operations to sub-blocks in a REGION (owner add-ons)."""

    def test_additional_getx_returns_data_to_owner(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW, check=True)
        p.write(1, addr(1), 8 * 3)  # owner holds 1-3
        log = MessageLog(p)
        p.write(1, addr(4), 8 * 4)  # additional GETX for 4-7
        assert log.labels() == ["GETX", "DATA"]
        assert log.entries[1][3] == 4

    def test_partial_eviction_keeps_directory_tracking(self):
        from repro.common.params import CacheGeometry
        # Budget 40B = tag8+3words + no room for a second 4-word block.
        p = make_engine(ProtocolKind.PROTOZOA_SW, cores=2,
                        l1=CacheGeometry(sets=1, set_bytes=40))
        p.write(1, addr(1), 8 * 3)  # dirty block 1-3
        log = MessageLog(p)
        p.write(1, addr(6), 8 * 2)  # 6-7 forces eviction of 1-3
        assert log.count("WBACK") == 1  # plain WBACK: not the last block
        assert 1 in p.directory.peek(REGION).sharers()


class TestFigure6:
    """The GETS/Fwd-GETX interaction: an owner with dirty words 5-7 that
    also wants 0-3 while a remote writer takes the region."""

    def test_owner_reads_more_words_then_remote_getx(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW, check=True)
        for w in range(5, 8):
            p.write(0, addr(w))  # Core-0 dirty 5-7 (M)
        p.read(0, addr(0), 8 * 4)  # Core-0 GETS 0-3 (owner reading more)
        log = MessageLog(p)
        p.write(1, addr(0), 8 * 8)  # Core-1 GETX 0-7
        assert log.labels() == ["GETX", "Fwd-GETX", "WBACK", "DATA"]
        # Core-0's dirty words 5-7 reach Core-1 through the L2 (value check
        # enforces it); Core-1 owns the region now.
        assert p.directory.peek(REGION).writers == {1}
        assert p.l1s[0].blocks_of(REGION) == []

    def test_downgrade_after_write_supplies_correct_data(self):
        p = make_engine(ProtocolKind.PROTOZOA_SW, check=True)
        for w in range(5, 8):
            p.write(0, addr(w))
        p.write(1, addr(0), 8 * 8)  # core 1 owns 0-7 dirty
        p.read(0, addr(0), 8 * 4)  # core 0 reads back: downgrade core 1
        entry = p.directory.peek(REGION)
        assert entry.writers == set()
        assert entry.readers == {0, 1}


class TestFigure7:
    """Write miss (GETX) handling in Protozoa-MW."""

    def setup_engine(self):
        p = make_engine(ProtocolKind.PROTOZOA_MW, check=True)
        for w in range(2, 7):
            p.write(1, addr(w))  # C1: overlapping dirty sharer (2-6)
        p.read(2, addr(0))  # C2: overlapping clean sharer (word 0)
        p.write(3, addr(7))  # C3: non-overlapping dirty sharer (word 7)
        return p

    def test_sequence(self):
        p = self.setup_engine()
        log = MessageLog(p)
        p.write(0, addr(0), 8 * 4)  # Core-0 GETX words 0-3
        labels = log.labels()
        assert labels[0] == "GETX"
        assert labels[-1] == "DATA"
        # C1 (dirty overlap): WBACK + invalidate of words 2-3.
        wbacks = [e for e in log.entries if e[0] == "WBACK"]
        assert len(wbacks) == 1 and wbacks[0][3] == 2
        # C2 (clean overlap): plain ACK.  C3 (non-overlap): ACK-S.
        assert log.count("ACK") >= 1
        assert log.count("ACK-S") == 1

    def test_final_state_c0_and_c3_both_write(self):
        p = self.setup_engine()
        p.write(0, addr(0), 8 * 4)
        # Final: C0 caches 0-3 for writing, C3 still caches word 7 dirty.
        assert p.l1s[0].blocks_of(REGION)[0].range.as_tuple() == (0, 3)
        assert p.l1s[3].peek(REGION, 7).state is LineState.M
        entry = p.directory.peek(REGION)
        # (Unlike the figure, C1 cached its words as per-word blocks, so its
        # non-overlapping dirty words 4-6 survive and it stays a writer.)
        assert entry.writers == {0, 1, 3}
        log = MessageLog(p)
        p.write(0, addr(1))
        p.write(3, addr(7))
        assert log.entries == []  # concurrent disjoint writers, zero traffic

    def test_c1_partial_survival(self):
        p = self.setup_engine()
        p.write(0, addr(0), 8 * 4)
        # C1's non-overlapping dirty words 4-6 survive.
        kept = sorted(b.range.start for b in p.l1s[1].blocks_of(REGION))
        assert kept == [4, 5, 6]
        assert 1 in p.directory.peek(REGION).writers
