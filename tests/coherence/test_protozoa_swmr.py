"""Scenario tests for Protozoa-SW+MR: single writer + disjoint readers (§3.5)."""

from repro.common.params import ProtocolKind
from repro.memory.block import LineState

from tests.conftest import MessageLog, make_engine, region_addr

REGION = 16
BASE = region_addr(REGION)


def addr(word):
    return BASE + word * 8


def engine(**kw):
    return make_engine(ProtocolKind.PROTOZOA_SW_MR, **kw)


class TestReaderWriterCoexistence:
    def test_disjoint_reader_survives_writer(self):
        p = engine(check=True)
        p.write(1, addr(7))  # writer
        log = MessageLog(p)
        p.read(0, addr(0))  # disjoint reader
        assert log.count("ACK-S") == 1  # writer probed, keeps its word
        assert p.l1s[1].peek(REGION, 7).state is LineState.M
        assert p.l1s[0].peek(REGION, 0) is not None
        entry = p.directory.peek(REGION)
        assert entry.writers == {1}
        assert 0 in entry.readers

    def test_writer_keeps_writing_while_readers_read(self):
        p = engine(check=True)
        p.write(1, addr(7))
        p.read(0, addr(0))
        p.read(2, addr(1))
        log = MessageLog(p)
        p.write(1, addr(7))  # hit
        p.read(0, addr(0))  # hit
        assert log.entries == []

    def test_overlapping_read_downgrades_writer(self):
        p = engine(check=True)
        p.write(1, addr(2))
        p.read(0, addr(2))
        assert p.l1s[1].peek(REGION, 2).state is LineState.S
        entry = p.directory.peek(REGION)
        # Writer had no other dirty blocks: demoted to reader.
        assert entry.writers == set()
        assert entry.readers == {0, 1}

    def test_partially_overlapping_read_keeps_writer_status(self):
        p = engine(check=True)
        p.write(1, addr(2))
        p.write(1, addr(6))  # two dirty blocks
        p.read(0, addr(2))  # downgrades only word 2
        entry = p.directory.peek(REGION)
        assert entry.writers == {1}  # word 6 still dirty
        assert p.l1s[1].peek(REGION, 6).state is LineState.M


class TestSingleWriterRevocation:
    def test_new_writer_revokes_old(self):
        p = engine(check=True)
        p.write(3, addr(7))
        log = MessageLog(p)
        p.write(0, addr(0))  # disjoint, but SW+MR allows only one writer
        assert log.count("Fwd-GETX") == 1
        wbacks = [e for e in log.entries if e[0].startswith("WBACK")]
        assert len(wbacks) == 1  # old writer's dirty data written back
        entry = p.directory.peek(REGION)
        assert entry.writers == {0}
        assert 3 in entry.readers  # downgraded writer remains a sharer

    def test_revoked_writer_keeps_reading_its_word(self):
        p = engine(check=True)
        p.write(3, addr(7))
        p.write(0, addr(0))
        log = MessageLog(p)
        p.read(3, addr(7))  # S copy retained: hit
        assert log.entries == []

    def test_revoked_writer_rewrite_misses_again(self):
        p = engine(check=True)
        p.write(3, addr(7))
        p.write(0, addr(0))
        before = p.stats.misses
        p.write(3, addr(7))  # must re-acquire write permission
        assert p.stats.misses == before + 1
        assert p.directory.peek(REGION).writers == {3}

    def test_overlapping_revocation_invalidates(self):
        p = engine(check=True)
        p.write(3, addr(0))
        p.write(0, addr(0))  # same word: old writer's block must die
        assert p.l1s[3].blocks_of(REGION) == []
        assert 3 not in p.directory.peek(REGION).sharers()

    def test_writer_additional_getx_probes_readers_only(self):
        p = engine(check=True)
        p.write(1, addr(0))
        p.read(2, addr(7))
        log = MessageLog(p)
        p.write(1, addr(3))  # writer extends its footprint
        assert log.count("Fwd-GETX") == 0  # no writer to revoke (itself)
        assert log.count("INV") == 1  # reader probed
        assert log.count("ACK-S") == 1  # disjoint reader stays
        assert p.directory.peek(REGION).writers == {1}


class TestArity:
    def test_never_two_writers(self):
        p = engine(check=True)
        for core, word in [(0, 0), (1, 2), (2, 4), (3, 6)]:
            p.write(core, addr(word))
            assert len(p.directory.peek(REGION).writers) == 1

    def test_overlapping_readers_invalidated_on_write(self):
        p = engine(check=True)
        p.read(1, addr(3))
        p.read(2, addr(3))
        p.write(0, addr(3))
        assert p.l1s[1].blocks_of(REGION) == []
        assert p.l1s[2].blocks_of(REGION) == []

    def test_disjoint_write_traffic_less_than_overlap(self):
        # Disjoint-from-readers write produces ACK-S, no re-fetch misses later.
        p = engine(check=True)
        p.read(1, addr(5))
        p.write(0, addr(0))
        log = MessageLog(p)
        p.read(1, addr(5))  # still cached
        assert log.entries == []
