"""Tests for the random-tester harness itself."""

import pytest

from repro.common.errors import ReproError
from repro.common.params import ProtocolKind, SystemConfig
from repro.verification.random_tester import RandomTester, TesterReport


class TestReport:
    def test_coverage_keys(self):
        report = TesterReport(accesses=5, reads=3, writes=2, misses=2)
        cov = report.coverage()
        assert cov["accesses"] == 5
        assert cov["reads"] == 3
        assert cov["writes"] == 2
        assert cov["misses"] == 2
        assert set(cov) == {"accesses", "reads", "writes", "misses",
                            "invalidations", "nacks", "writebacks",
                            "evictions", "multi_block_snoops"}


class TestTester:
    def test_forces_checking_on(self):
        cfg = SystemConfig(cores=2)  # checks off by default
        tester = RandomTester(cfg)
        assert tester.config.check_invariants
        assert tester.config.check_values

    def test_deterministic_given_seed(self):
        cfg = SystemConfig(cores=2)
        a = RandomTester(cfg, seed=9, check_every=0).run(400)
        b = RandomTester(cfg, seed=9, check_every=0).run(400)
        assert a.coverage() == b.coverage()

    def test_reads_plus_writes_equal_accesses(self):
        cfg = SystemConfig(cores=2)
        report = RandomTester(cfg, seed=1, check_every=0).run(300)
        assert report.reads + report.writes == report.accesses == 300

    def test_detects_seeded_bug(self):
        """A deliberately broken protocol must be caught."""
        from repro.coherence.protozoa_multi import ProtozoaMWProtocol
        from repro.system import machine

        class BrokenMW(ProtozoaMWProtocol):
            def _probe(self, core, region, req, is_write, entry, home):
                if is_write:
                    return []  # never invalidate anyone: SWMR violated
                return super()._probe(core, region, req, is_write, entry, home)

        original = machine._PROTOCOLS[ProtocolKind.PROTOZOA_MW]
        machine._PROTOCOLS[ProtocolKind.PROTOZOA_MW] = BrokenMW
        try:
            cfg = SystemConfig(protocol=ProtocolKind.PROTOZOA_MW, cores=4)
            with pytest.raises(ReproError):
                RandomTester(cfg, regions=2, seed=0).run(2000)
        finally:
            machine._PROTOCOLS[ProtocolKind.PROTOZOA_MW] = original

    def test_detects_stale_data_bug(self):
        """Dropping writebacks must trip the value checker."""
        from repro.coherence.mesi import MESIProtocol
        from repro.system import machine

        class LossyMESI(MESIProtocol):
            def _writeback_blocks(self, core, blocks):
                for b in blocks:
                    b.dirty_mask = 0  # discard dirty data instead of patching
                return 0, 0

        original = machine._PROTOCOLS[ProtocolKind.MESI]
        machine._PROTOCOLS[ProtocolKind.MESI] = LossyMESI
        try:
            cfg = SystemConfig(protocol=ProtocolKind.MESI, cores=4)
            with pytest.raises(ReproError):
                RandomTester(cfg, regions=2, seed=0).run(2000)
        finally:
            machine._PROTOCOLS[ProtocolKind.MESI] = original
