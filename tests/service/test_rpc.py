"""End-to-end JSON-RPC over HTTP: the wire protocol and the full loop.

A real ``ThreadingHTTPServer`` on an ephemeral port, a real
``ServiceClient`` over ``urllib`` — the same path ``repro serve`` /
``repro submit`` take, minus the argv parsing.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro._version import package_version
from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.service import (
    METHODS,
    ServiceClient,
    ServiceError,
    SweepService,
    make_server,
)
from repro.service.rpc import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    INVALID_STATE,
    METHOD_NOT_FOUND,
    NOT_FOUND,
    PARSE_ERROR,
)

SPECS = [RunSpec(workload="histogram", protocol=protocol,
                 cores=2, per_core=80, seed=0)
         for protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]


@pytest.fixture()
def live(tmp_path):
    """A running service + HTTP server + client, all torn down after."""
    engine = ExperimentEngine(
        jobs=1, cache=ResultCache(tmp_path / "cache", enabled=True))
    service = SweepService(state_dir=tmp_path / "state", engine=engine,
                           idle_poll_s=0.05).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield service, ServiceClient(url, timeout_s=30.0), url
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def rpc(url, body: bytes):
    """One raw POST; returns the parsed JSON response."""
    request = urllib.request.Request(
        url + "/", data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30.0) as resp:
        return json.loads(resp.read().decode("utf-8"))


class TestEndToEnd:
    def test_health_reports_version(self, live):
        _, client, _ = live
        health = client.health()
        assert health["ok"] is True
        assert health["version"] == package_version()
        assert health["dispatcher"] is True

    def test_sweep_matches_direct_api(self, live, tmp_path):
        _, client, _ = live
        remote = client.sweep(SPECS, timeout_s=120.0)
        with ExperimentEngine(jobs=1, cache=ResultCache(
                tmp_path / "ref", enabled=True)) as reference_engine:
            reference = reference_engine.run_many(SPECS)
        assert ({s.digest(): r.to_dict() for s, r in remote.items()} ==
                {s.digest(): r.to_dict() for s, r in reference.items()})

    def test_second_submission_is_a_pure_cache_hit(self, live):
        service, client, _ = live
        first = client.submit_sweep(SPECS)
        client.wait(first["job_id"], timeout_s=120.0)
        executed_after_first = service.engine.executed
        # Same sweep, reversed spec order: dedups onto the done job.
        again = client.submit_sweep(list(reversed(SPECS)))
        assert again["job_id"] == first["job_id"]
        assert again["deduped"] is True
        assert again["cached"] is True
        assert service.engine.executed == executed_after_first
        counters = client.metrics()["counters"]
        hits = [v for k, v in counters.items()
                if k.startswith("repro_service_cache_hits_total")]
        assert sum(hits) >= len(SPECS)

    def test_dict_specs_accepted(self, live):
        _, client, _ = live
        submitted = client.submit_sweep(
            [{"workload": "histogram", "protocol": "mesi",
              "cores": 2, "per_core": 80}])
        client.wait(submitted["job_id"], timeout_s=120.0)
        results = client.results(submitted["job_id"])
        (spec, result), = results.items()
        assert spec.workload == "histogram"
        assert result.traffic_bytes() > 0

    def test_cancel_then_status(self, live):
        service, client, _ = live
        service.dispatcher.stop()  # keep the job queued
        submitted = client.submit_sweep(SPECS)
        cancelled = client.cancel(submitted["job_id"])
        assert cancelled["state"] == "cancelled"
        assert client.job_status(submitted["job_id"])["state"] == "cancelled"

    def test_list_jobs(self, live):
        service, client, _ = live
        service.dispatcher.stop()
        submitted = client.submit_sweep(SPECS)
        jobs = client.list_jobs()
        assert [job["id"] for job in jobs] == [submitted["job_id"]]
        assert client.list_jobs(state="done") == []


class TestErrorPaths:
    def test_unknown_method(self, live):
        _, client, _ = live
        with pytest.raises(ServiceError) as exc:
            client.call("explode")
        assert exc.value.code == METHOD_NOT_FOUND

    def test_missing_required_param(self, live):
        _, client, _ = live
        with pytest.raises(ServiceError) as exc:
            client.call("job_status")
        assert exc.value.code == INVALID_PARAMS

    def test_unknown_job(self, live):
        _, client, _ = live
        with pytest.raises(ServiceError) as exc:
            client.job_status("0000000000000000")
        assert exc.value.code == NOT_FOUND

    def test_result_of_unfinished_job_is_invalid_state(self, live):
        service, client, _ = live
        service.dispatcher.stop()
        submitted = client.submit_sweep(SPECS)
        with pytest.raises(ServiceError) as exc:
            client.job_result(submitted["job_id"])
        assert exc.value.code == INVALID_STATE

    def test_bad_specs_rejected_eagerly(self, live):
        _, client, _ = live
        for specs in ([],
                      [{"workload": "doom"}],
                      [{"workload": "histogram", "protocol": "moesi"}],
                      [{"workload": "histogram", "flux_capacitor": 1}]):
            with pytest.raises(ServiceError) as exc:
                client.submit_sweep(specs)
            assert exc.value.code == INVALID_PARAMS

    def test_duplicate_specs_rejected(self, live):
        _, client, _ = live
        with pytest.raises(ServiceError, match="duplicates") as exc:
            client.submit_sweep([SPECS[0], SPECS[0]])
        assert exc.value.code == INVALID_PARAMS

    def test_parse_error(self, live):
        _, _, url = live
        response = rpc(url, b"this is not json {")
        assert response["error"]["code"] == PARSE_ERROR

    def test_batch_requests_rejected(self, live):
        _, _, url = live
        response = rpc(url, json.dumps(
            [{"jsonrpc": "2.0", "id": 1, "method": "health"}]).encode())
        assert response["error"]["code"] == INVALID_REQUEST

    def test_non_string_method(self, live):
        _, _, url = live
        response = rpc(url, json.dumps(
            {"jsonrpc": "2.0", "id": 1, "method": 7}).encode())
        assert response["error"]["code"] == INVALID_REQUEST

    def test_params_must_be_object(self, live):
        _, _, url = live
        response = rpc(url, json.dumps(
            {"jsonrpc": "2.0", "id": 1, "method": "health",
             "params": [1, 2]}).encode())
        assert response["error"]["code"] == INVALID_PARAMS


class TestGetMirrors:
    def test_get_health(self, live):
        _, _, url = live
        with urllib.request.urlopen(url + "/health", timeout=30.0) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
        assert payload["ok"] is True
        assert payload["version"] == package_version()

    def test_get_metrics(self, live):
        _, _, url = live
        with urllib.request.urlopen(url + "/metrics", timeout=30.0) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
        assert "counters" in payload
        # The observability tax is itself observable: fold bookkeeping
        # and the overhead ratio (fold seconds / uptime) are injected as
        # synthetic counters on every dump.
        counters = payload["counters"]
        assert counters["repro_obs_fold_cycles_total"] >= 0
        assert counters["repro_obs_fold_seconds_total"] >= 0
        assert 0 <= counters["repro_obs_overhead_ratio"] < 1

    def test_get_unknown_page_404(self, live):
        _, _, url = live
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(url + "/nope", timeout=30.0)
        assert exc.value.code == 404


class TestRegistry:
    def test_every_advertised_method_is_registered(self):
        assert set(METHODS) == {"submit_sweep", "job_status", "job_result",
                                "cancel", "list_jobs", "health", "metrics",
                                "store_list", "store_quarantine",
                                "store_quarantine_inventory", "store_orphans",
                                "store_remove_orphan",
                                "store_structural_check", "store_gc_log",
                                "store_gc_manifest"}
