"""Dispatcher thread and the per-job progress journal."""

import time

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.service.dispatcher import Dispatcher, JobJournal
from repro.service.app import SweepService
from repro.service.jobs import JobState

SPECS = [RunSpec(workload="histogram", protocol=protocol,
                 cores=2, per_core=80, seed=0)
         for protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]


def wait_until(predicate, timeout_s=30.0, poll_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


class TestJobJournal:
    def test_callback_fires_per_fresh_completion(self, tmp_path):
        seen = []
        journal = JobJournal(tmp_path / "job.jsonl", on_record=seen.append)
        assert journal.record("digest-a")
        assert journal.record("digest-b")
        assert not journal.record("digest-a")  # duplicate: no callback
        journal.close()
        assert seen == ["digest-a", "digest-b"]

    def test_callback_silent_during_replay(self, tmp_path):
        first = JobJournal(tmp_path / "job.jsonl")
        first.record("digest-a")
        first.record("digest-b")
        first.close()
        seen = []
        resumed = JobJournal(tmp_path / "job.jsonl", on_record=seen.append)
        assert seen == []  # replayed completions are not "fresh"
        assert resumed.record("digest-c")
        resumed.close()
        assert seen == ["digest-c"]


class _StubService:
    """process_next that raises once, then reports an idle queue."""

    def __init__(self):
        self.calls = 0

    def process_next(self):
        self.calls += 1
        if self.calls == 1:
            raise RuntimeError("boom")
        return False


class TestDispatcher:
    def test_survives_a_process_next_exception(self):
        stub = _StubService()
        dispatcher = Dispatcher(stub, idle_poll_s=0.01)
        dispatcher.start()
        try:
            assert wait_until(lambda: stub.calls >= 3)
            assert dispatcher.running
        finally:
            dispatcher.stop()
        assert not dispatcher.running

    def test_start_is_idempotent(self):
        stub = _StubService()
        dispatcher = Dispatcher(stub, idle_poll_s=0.01)
        dispatcher.start()
        thread = dispatcher._thread
        dispatcher.start()
        assert dispatcher._thread is thread
        dispatcher.stop()

    def test_drains_submissions_in_background(self, tmp_path):
        engine = ExperimentEngine(
            jobs=1, cache=ResultCache(tmp_path / "cache", enabled=True))
        with SweepService(state_dir=tmp_path / "state", engine=engine,
                          idle_poll_s=0.05) as service:
            submitted = service.submit([s.payload() for s in SPECS])
            assert submitted["state"] == "queued"
            job = service.queue.get(submitted["job_id"])
            assert wait_until(lambda: job.state is JobState.DONE,
                              timeout_s=120.0)
            assert job.completed == len(SPECS)
            assert job.executed == len(SPECS)
            assert service.result_path(job).exists()
