"""JobQueue: durability, dedup, priority ordering, TTL, cancellation."""

import json

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import RunSpec
from repro.service.jobs import JobState, job_key
from repro.service.queue import QUEUE_JOURNAL_NAME, JobQueue


def spec(workload="histogram", protocol=ProtocolKind.MESI, seed=0):
    return RunSpec(workload=workload, protocol=protocol,
                   cores=2, per_core=60, seed=seed)


SPECS = [spec(), spec(protocol=ProtocolKind.PROTOZOA_MW)]


class TestSubmit:
    def test_submit_queues_and_journals(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, deduped = queue.submit(SPECS)
            assert not deduped
            assert job.state is JobState.QUEUED
            assert job.key == job_key(SPECS)
        lines = (tmp_path / QUEUE_JOURNAL_NAME).read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["event"] == "submit"
        assert entry["job"]["key"] == job.key

    def test_same_specs_dedup_in_any_order(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            first, _ = queue.submit(SPECS)
            second, deduped = queue.submit(list(reversed(SPECS)))
            assert deduped
            assert second is first
            assert first.waiters == 2
            assert len(queue) == 1

    def test_done_job_dedups_too(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            queue.pop_next()
            queue.finish(job, JobState.DONE)
            again, deduped = queue.submit(SPECS)
            assert deduped and again is job

    def test_terminal_failure_states_resubmit_fresh(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            queue.cancel(job.id)
            fresh, deduped = queue.submit(SPECS)
            assert not deduped
            assert fresh.state is JobState.QUEUED
            assert fresh.seq > job.seq


class TestDispatchOrder:
    def test_priority_then_fifo(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            low, _ = queue.submit([spec(seed=1)], priority=0)
            high, _ = queue.submit([spec(seed=2)], priority=5)
            low2, _ = queue.submit([spec(seed=3)], priority=0)
            assert queue.pop_next() is high
            assert queue.pop_next() is low
            assert queue.pop_next() is low2
            assert queue.pop_next() is None

    def test_pop_marks_running(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            queue.submit(SPECS)
            job = queue.pop_next(now=42.0)
            assert job.state is JobState.RUNNING
            assert job.started_at == 42.0


class TestCancel:
    def test_cancel_queued(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            cancelled = queue.cancel(job.id)
            assert cancelled.state is JobState.CANCELLED

    def test_cancel_running_refused(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            queue.pop_next()
            with pytest.raises(ValueError, match="running"):
                queue.cancel(job.id)

    def test_cancel_unknown_returns_none(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            assert queue.cancel("no-such-job") is None


class TestTtl:
    def test_queued_job_expires_instead_of_dispatching(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS, ttl_s=10.0, now=100.0)
            assert queue.pop_next(now=200.0) is None
            assert job.state is JobState.EXPIRED

    def test_default_ttl_applies(self, tmp_path):
        with JobQueue(tmp_path, default_ttl_s=5.0) as queue:
            job, _ = queue.submit(SPECS, now=0.0)
            assert job.ttl_s == 5.0


class TestDurability:
    def test_replay_restores_jobs(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS, priority=2)
        with JobQueue(tmp_path) as queue:
            assert queue.replayed == 1
            back = queue.get(job.id)
            assert back is not None
            assert back.specs == SPECS
            assert back.priority == 2
            assert back.state is JobState.QUEUED

    def test_running_job_requeues_on_replay(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            queue.pop_next()
            assert job.state is JobState.RUNNING
        # A new process over the same journal: in-flight work re-queues.
        with JobQueue(tmp_path) as queue:
            assert queue.requeued == 1
            back = queue.get(job.id)
            assert back.state is JobState.QUEUED
            assert back.started_at is None
            assert back.requeues == 1

    def test_terminal_states_survive_replay(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            queue.pop_next()
            job.completed = job.executed = len(SPECS)
            queue.finish(job, JobState.DONE)
        with JobQueue(tmp_path) as queue:
            back = queue.get(job.id)
            assert back.state is JobState.DONE
            assert back.completed == len(SPECS)

    def test_torn_final_line_tolerated(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
        path = tmp_path / QUEUE_JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "state", "key"')  # killed mid-write
        with JobQueue(tmp_path) as queue:
            assert queue.get(job.id).state is JobState.QUEUED

    def test_load_compacts_to_one_line_per_job(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job, _ = queue.submit(SPECS)
            queue.pop_next()
            queue.finish(job, JobState.DONE)
            queue.submit([spec(seed=9)])
        # Journal now holds 3+ events for 2 jobs; loading compacts it.
        with JobQueue(tmp_path):
            pass
        lines = (tmp_path / QUEUE_JOURNAL_NAME).read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["event"] == "submit" for line in lines)

    def test_empty_dir_is_fine(self, tmp_path):
        with JobQueue(tmp_path / "nowhere") as queue:
            assert len(queue) == 0
            assert queue.pop_next() is None


class TestListing:
    def test_jobs_newest_first_with_state_filter(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            first, _ = queue.submit([spec(seed=1)])
            second, _ = queue.submit([spec(seed=2)])
            queue.pop_next()  # claims first (FIFO)
            assert queue.jobs() == [second, first]
            assert queue.jobs(state=JobState.QUEUED) == [second]
            assert queue.jobs(limit=1) == [second]
            assert queue.counts() == {"queued": 1, "running": 1}
