"""Crash recovery: a killed service finishes exactly the remaining work.

Two layers: a deterministic in-process reconstruction of the crash
(queue closed with a job RUNNING, part of the sweep already journaled
and cached), and a real SIGKILL of a live service subprocess mid-job.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.service.app import SweepService
from repro.service.dispatcher import JobJournal
from repro.service.jobs import JobState
from repro.service.queue import JobQueue

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SPECS = [RunSpec(workload="histogram", protocol=protocol, cores=2,
                 per_core=80, seed=seed)
         for seed in (0, 1, 2)
         for protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]


def reference_results(tmp_path):
    with ExperimentEngine(jobs=1, cache=ResultCache(
            tmp_path / "ref", enabled=True)) as engine:
        return engine.run_many(SPECS)


class TestInProcessRecovery:
    def test_requeued_job_skips_completed_specs(self, tmp_path):
        state = tmp_path / "state"
        cache_root = tmp_path / "cache"

        # A prior process claimed the job, finished 2 of 6 specs (journal
        # + result cache both have them), then died without a terminal
        # state transition.
        with JobQueue(state) as queue:
            job, _ = queue.submit(SPECS)
            queue.pop_next()
        journal = JobJournal(state / "journals" / f"{job.id}.jsonl")
        with ExperimentEngine(jobs=1,
                              cache=ResultCache(cache_root, enabled=True),
                              journal=journal) as engine:
            for spec in SPECS[:2]:
                engine.run(spec)
        journal.close()

        # Restart: the queue journal re-queues the in-flight job ...
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(cache_root, enabled=True))
        service = SweepService(state_dir=state, engine=engine)
        try:
            assert service.queue.requeued == 1
            back = service.queue.get(job.id)
            assert back.state is JobState.QUEUED
            assert back.requeues == 1
            assert service.metrics.counter_value(
                "repro_service_jobs_requeued_total") == 1

            # ... and one dispatch pass completes only the remainder.
            assert service.process_next() is True
            assert back.state is JobState.DONE
            assert back.completed == len(SPECS)
            assert back.executed == len(SPECS) - 2
            assert back.cache_hits >= 2

            payload = service.job_result(job.id)
        finally:
            service.stop()

        reference = reference_results(tmp_path)
        assert ({cell["spec"]["seed"]: cell["result"]
                 for cell in payload["results"]
                 if cell["spec"]["protocol"] == "mesi"} ==
                {spec.seed: result.to_dict()
                 for spec, result in reference.items()
                 if spec.protocol is ProtocolKind.MESI})

    def test_done_job_survives_restart_and_serves_results(self, tmp_path):
        state = tmp_path / "state"
        cache_root = tmp_path / "cache"
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(cache_root, enabled=True))
        service = SweepService(state_dir=state, engine=engine)
        try:
            submitted = service.submit([s.payload() for s in SPECS[:2]])
            assert service.process_next() is True
            first = service.job_result(submitted["job_id"])
        finally:
            service.stop()

        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(cache_root, enabled=True))
        service = SweepService(state_dir=state, engine=engine)
        try:
            job = service.queue.get(submitted["job_id"])
            assert job.state is JobState.DONE
            assert service.job_result(submitted["job_id"]) == first
            # A resubmission dedups onto the finished record: no new run.
            again = service.submit([s.payload() for s in SPECS[:2]])
            assert again["deduped"] is True and again["cached"] is True
            assert service.engine.executed == 0
        finally:
            service.stop()

    def test_result_blob_rebuilt_from_cache_when_deleted(self, tmp_path):
        engine = ExperimentEngine(
            jobs=1, cache=ResultCache(tmp_path / "cache", enabled=True))
        service = SweepService(state_dir=tmp_path / "state", engine=engine)
        try:
            submitted = service.submit([s.payload() for s in SPECS[:2]])
            service.process_next()
            job = service.queue.get(submitted["job_id"])
            first = service.job_result(job.id)
            service.result_path(job).unlink()
            assert service.job_result(job.id) == first
            assert service.result_path(job).exists()  # rebuilt durably
        finally:
            service.stop()


CHILD = textwrap.dedent("""\
    import time

    import repro.experiments._engine as eng

    real_simulate = eng.simulate

    def slow_simulate(*args, **kwargs):
        time.sleep(0.15)  # window for the parent's SIGKILL
        return real_simulate(*args, **kwargs)

    eng.simulate = slow_simulate

    from repro.common.params import ProtocolKind
    from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
    from repro.service.app import SweepService

    specs = [RunSpec(workload="histogram", protocol=protocol, cores=2,
                     per_core=80, seed=seed).payload()
             for seed in (0, 1, 2)
             for protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]
    engine = ExperimentEngine(jobs=1,
                              cache=ResultCache({cache!r}, enabled=True))
    service = SweepService(state_dir={state!r}, engine=engine,
                           idle_poll_s=0.05).start()
    service.submit(specs)
    time.sleep(300)  # the dispatcher thread works; the parent kills us
""")


@pytest.mark.slow
class TestSigkillRecovery:
    def test_restarted_service_finishes_the_job(self, tmp_path):
        state = tmp_path / "state"
        cache_root = tmp_path / "cache"
        script = CHILD.format(cache=str(cache_root), state=str(state))
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        env.pop("REPRO_FAULTS", None)
        child = subprocess.Popen([sys.executable, "-c", script], env=env)
        journals = state / "journals"
        try:
            # Wait for some — but not all — spec completions, then kill.
            deadline = time.time() + 60
            while time.time() < deadline:
                files = list(journals.glob("*.jsonl")) if journals.is_dir() \
                    else []
                done = sum(len(f.read_text().splitlines()) for f in files)
                if done >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("service child never journaled a completion")
            child.kill()  # SIGKILL: no flush, no atexit, no cleanup
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGKILL

        # Restart over the same state dir: the queue journal re-queues
        # the in-flight job and the re-run touches only the remainder.
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(cache_root, enabled=True))
        service = SweepService(state_dir=state, engine=engine)
        try:
            assert service.queue.requeued == 1
            (job,) = service.queue.jobs()
            assert job.state is JobState.QUEUED
            assert job.requeues == 1
            assert service.process_next() is True
            assert job.state is JobState.DONE
            assert job.completed == len(SPECS)
            assert job.cache_hits >= 1
            assert job.executed < len(SPECS)
            payload = service.job_result(job.id)
        finally:
            service.stop()

        reference = reference_results(tmp_path)
        assert ({RunSpec.from_payload(cell["spec"]).digest():
                 cell["result"] for cell in payload["results"]} ==
                {spec.digest(): result.to_dict()
                 for spec, result in reference.items()})
