"""Job model: content-addressed identity, TTL, and journal round-trips."""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import RunSpec
from repro.service.jobs import DEFAULT_TTL_S, Job, JobState, job_key

SPEC_A = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                 cores=2, per_core=60, seed=0)
SPEC_B = RunSpec(workload="histogram", protocol=ProtocolKind.PROTOZOA_MW,
                 cores=2, per_core=60, seed=0)
SPEC_C = RunSpec(workload="kmeans", protocol=ProtocolKind.MESI,
                 cores=2, per_core=60, seed=7)


class TestJobKey:
    def test_order_insensitive(self):
        assert job_key([SPEC_A, SPEC_B]) == job_key([SPEC_B, SPEC_A])

    def test_distinct_spec_sets_distinct_keys(self):
        assert job_key([SPEC_A]) != job_key([SPEC_B])
        assert job_key([SPEC_A]) != job_key([SPEC_A, SPEC_B])

    def test_key_is_hex_sha256(self):
        key = job_key([SPEC_A])
        assert len(key) == 64
        int(key, 16)  # must be hex

    def test_id_is_key_prefix(self):
        job = Job(key=job_key([SPEC_A]), specs=[SPEC_A])
        assert job.id == job.key[:16]
        assert job.total == 1


class TestTtl:
    def test_queued_job_expires_past_ttl(self):
        job = Job(key="k", specs=[SPEC_A], ttl_s=10.0, submitted_at=100.0)
        assert not job.expired(now=105.0)
        assert job.expired(now=111.0)

    def test_nonpositive_ttl_never_expires(self):
        job = Job(key="k", specs=[SPEC_A], ttl_s=0.0, submitted_at=0.0)
        assert not job.expired(now=1e12)

    @pytest.mark.parametrize("state", [JobState.RUNNING, JobState.DONE,
                                       JobState.FAILED, JobState.CANCELLED])
    def test_only_queued_jobs_expire(self, state):
        job = Job(key="k", specs=[SPEC_A], ttl_s=1.0, submitted_at=0.0,
                  state=state)
        assert not job.expired(now=1e9)


class TestWireForm:
    def test_round_trip(self):
        job = Job(key=job_key([SPEC_A, SPEC_C]), specs=[SPEC_A, SPEC_C],
                  priority=3, ttl_s=60.0, seq=5, state=JobState.RUNNING,
                  submitted_at=1.0, started_at=2.0, completed=1,
                  cache_hits=1, executed=0, requeues=2)
        back = Job.from_dict(job.to_dict())
        assert back == job
        assert back.specs == [SPEC_A, SPEC_C]  # submission order preserved
        assert back.state is JobState.RUNNING

    def test_unknown_keys_ignored_missing_get_defaults(self):
        data = {"key": "deadbeef" * 8, "specs": [SPEC_A.payload()],
                "some_future_field": 42}
        job = Job.from_dict(data)
        assert job.state is JobState.QUEUED
        assert job.ttl_s == DEFAULT_TTL_S
        assert job.priority == 0
        assert job.requeues == 0

    def test_to_dict_is_json_safe(self):
        import json

        job = Job(key=job_key([SPEC_A]), specs=[SPEC_A])
        json.dumps(job.to_dict())  # must not raise
