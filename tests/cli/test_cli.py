"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_protocol_aliases(self):
        from repro.cli import _protocol
        from repro.common.params import ProtocolKind
        assert _protocol("MESI") is ProtocolKind.MESI
        assert _protocol("sw+mr") is ProtocolKind.PROTOZOA_SW_MR
        assert _protocol("swmr") is ProtocolKind.PROTOZOA_SW_MR
        with pytest.raises(Exception):
            _protocol("moesi")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "linear-regression" in out
        assert out.count("\n") >= 29  # header + 28 workloads

    def test_run(self, capsys):
        rc = main(["run", "--workload", "linear-regression", "--protocol", "mw",
                   "--scale", "200", "--cores", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MPKI" in out and "flit-hops" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--workload", "histogram", "--scale", "150",
                   "--cores", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("MESI", "SW", "SW+MR", "MW"):
            assert name in out

    def test_verify(self, capsys):
        rc = main(["verify", "--protocol", "sw", "--accesses", "400",
                   "--cores", "2"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_seed_sweep(self, capsys):
        rc = main(["verify", "--protocol", "mesi", "--accesses", "200",
                   "--cores", "2", "--seeds", "2", "--same-set",
                   "--max-span", "2", "--check-every", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed 0" in out and "seed 1" in out
        assert "'reads'" in out and "'writes'" in out

    def test_check(self, capsys):
        rc = main(["check", "--protocol", "mesi", "--depth", "3",
                   "--mutant-depth", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RESULT: PASS" in out
        assert "bounded exploration" in out
        assert "mutation audit" in out
        assert "detected" in out

    def test_check_diff_mode(self, capsys):
        rc = main(["check", "--protocol", "mw", "--mode", "diff",
                   "--depth", "3"])
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out

    def test_check_save_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "counterexample.txt"
        rc = main(["check", "--protocol", "sw", "--mode", "mutants",
                   "--mutant-depth", "3", "--save", str(trace)])
        assert rc == 0
        assert trace.exists()
        rc = main(["check", "--replay", str(trace)])
        assert rc == 0
        assert "reproduced" in capsys.readouterr().out

    def test_trace_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.trace"
        rc = main(["trace", "--workload", "kmeans", "--out", str(trace),
                   "--scale", "100", "--cores", "4"])
        assert rc == 0
        assert trace.exists()
        rc = main(["replay", "--trace", str(trace), "--protocol", "mesi",
                   "--cores", "4"])
        assert rc == 0
        assert "MESI" in capsys.readouterr().out

    def test_run_with_options(self, capsys):
        rc = main(["run", "--workload", "kmeans", "--protocol", "sw",
                   "--scale", "150", "--cores", "4", "--three-hop",
                   "--substrate", "sector", "--predictor", "single-word"])
        assert rc == 0

    def test_inspect_all(self, capsys):
        rc = main(["inspect", "--scale", "120", "--cores", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "false-shr" in out
        assert "linear-regression" in out

    def test_inspect_single(self, capsys):
        rc = main(["inspect", "--workload", "canneal", "--scale", "150",
                   "--cores", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "canneal" in out and "apache" not in out

    def test_report_to_file(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_WORKLOADS", "")
        rc = main(["report", "--out", str(out), "--scale", "60", "--cores", "4"])
        assert rc == 0
        text = out.read_text()
        assert "Table 1" in text and "Figure 15" in text


class TestJobsFlag:
    def test_every_engine_command_accepts_jobs(self):
        parser = build_parser()
        for argv in (["run", "--workload", "kmeans", "--jobs", "3"],
                     ["report", "--jobs", "3"],
                     ["bench", "--jobs", "3"]):
            args = parser.parse_args(argv)
            assert args.jobs == 3

    def test_jobs_flag_overrides_repro_jobs_env(self, monkeypatch, capsys):
        from repro.experiments._engine import default_jobs

        monkeypatch.setenv("REPRO_JOBS", "7")
        rc = main(["run", "--workload", "linear-regression", "--protocol",
                   "mesi", "--scale", "50", "--cores", "2", "--jobs", "2"])
        assert rc == 0
        assert default_jobs() == 2

    def test_bench_quick_records_per_phase_jobs(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["bench", "--quick", "--jobs", "1", "--assert-warm",
                   "--out", str(out)])
        assert rc == 0
        import json as json_mod
        report = json_mod.loads(out.read_text())
        sweep = report["sweep"]
        assert sweep["serial_jobs"] == 1
        assert sweep["parallel_jobs"] == 1
        assert sweep["warm_jobs"] == 1
        assert sweep["warm_all_hits"] is True
        assert report["jobs"] == 1
        assert "trace_prewarm_s" in sweep
        rendered = capsys.readouterr().out
        assert "trace prewarm" in rendered

    def test_assert_warm_fails_on_slow_parallel_sweep(self, monkeypatch, capsys):
        """jobs > 1 and speedup below the bar => exit 1 with a FAIL line."""
        import repro.experiments.bench  # ensure the module is importable

        def fake_run_bench(**kwargs):
            return {
                "schema": 2, "quick": True, "jobs": 2,
                "matrix": {"workloads": [], "protocols": [], "cores": 8,
                           "per_core": 500, "cells": 8},
                "sweep": {"trace_prewarm_s": 0.0, "traces_packed": 0,
                          "serial_cold_s": 1.0, "serial_jobs": 1,
                          "parallel_cold_s": 1.25, "parallel_jobs": 2,
                          "warm_s": 0.001, "warm_jobs": 2,
                          "parallel_speedup": 0.8,
                          "warm_speedup_vs_cold": 100.0,
                          "warm_cache_hits": 8, "warm_simulated": 0,
                          "warm_all_hits": True},
                "single_run": {"workload": "kmeans", "protocol": "protozoa-mw",
                               "cores": 16, "per_core": 2000, "repeats": 3,
                               "accesses": 1, "accesses_per_sec": 1.0,
                               "baseline_accesses_per_sec": None,
                               "improvement_pct": None},
            }

        monkeypatch.setattr("repro.experiments.bench.run_bench", fake_run_bench)
        rc = main(["bench", "--quick", "--assert-warm"])
        assert rc == 1
        assert "FAIL: parallel cold sweep" in capsys.readouterr().out
        rc = main(["bench", "--quick", "--assert-warm",
                   "--min-parallel-speedup", "0.75"])
        assert rc == 0


class TestEventsCommand:
    ARGS = ["events", "--workload", "histogram", "--cores", "2",
            "--scale", "80"]

    def test_dump_is_jsonl(self, capsys):
        import json as json_mod
        assert main(self.ARGS) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 160  # 2 cores x 80 accesses, all retained
        rec = json_mod.loads(lines[0])
        assert {"seq", "core", "op", "addr", "hit", "latency",
                "msgs", "actions"} <= set(rec)

    def test_filters_apply(self, capsys):
        import json as json_mod
        assert main(self.ARGS + ["--core", "1", "--misses-only",
                                 "--limit", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 5
        for line in lines:
            rec = json_mod.loads(line)
            assert rec["core"] == 1
            assert rec["hit"] is False

    def test_summary_includes_phases(self, capsys):
        import json as json_mod
        assert main(self.ARGS + ["--summary"]) == 0
        summary = json_mod.loads(capsys.readouterr().out)
        assert summary["transactions"] == 160
        assert summary["hits"] + summary["misses"] == 160
        assert "simulate" in summary["phase_seconds"]

    def test_ring_and_sample_flags(self, capsys):
        import json as json_mod
        assert main(self.ARGS + ["--ring", "16", "--sample", "4",
                                 "--summary"]) == 0
        summary = json_mod.loads(capsys.readouterr().out)
        assert summary["transactions"] == 160
        assert summary["recorded"] == 40
        assert summary["retained"] == 16
        assert summary["sample_every"] == 4

    def test_out_file_then_input_summary(self, tmp_path, capsys):
        import json as json_mod
        dump = tmp_path / "events.jsonl"
        assert main(self.ARGS + ["--out", str(dump)]) == 0
        capsys.readouterr()
        assert main(["events", "--input", str(dump)]) == 0
        summary = json_mod.loads(capsys.readouterr().out)
        assert summary["retained"] == 160

    def test_obs_env_not_required(self, monkeypatch, capsys):
        """The command enables observability itself; REPRO_OBS stays off."""
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert main(self.ARGS + ["--summary"]) == 0
        assert "transactions" in capsys.readouterr().out


class TestCommonFlags:
    def test_shared_flags_everywhere(self):
        parser = build_parser()
        for cmd in ("run", "report", "bench", "check", "events", "verify",
                    "compare", "replay", "trace", "inspect", "list"):
            argv = [cmd, "--jobs", "2", "--seed", "3", "--protocol", "mesi",
                    "--trace-dir", "/tmp/t"]
            if cmd in ("run", "trace", "compare"):
                argv += ["--workload", "kmeans"]
            if cmd == "trace":
                argv += ["--out", "x.trace"]
            if cmd == "replay":
                argv += ["--trace", "x.trace"]
            args = parser.parse_args(argv)
            assert (args.jobs, args.seed, args.protocol, args.trace_dir) == \
                (2, 3, "mesi", "/tmp/t"), cmd

    def test_per_command_protocol_defaults(self):
        parser = build_parser()
        assert parser.parse_args(
            ["run", "--workload", "kmeans"]).protocol == "mw"
        assert parser.parse_args(
            ["replay", "--trace", "x"]).protocol == "mw"
        assert parser.parse_args(
            ["events"]).protocol == "mw"
        assert parser.parse_args(["verify"]).protocol == ""
        assert parser.parse_args(["check"]).protocol == ""

    def test_trace_dir_flag_exports_env(self, monkeypatch, capsys, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        target = tmp_path / "traces"
        rc = main(["run", "--workload", "histogram", "--scale", "50",
                   "--cores", "2", "--trace-dir", str(target)])
        assert rc == 0
        import os
        assert os.environ["REPRO_TRACE_CACHE_DIR"] == str(target)
        assert any(target.iterdir())  # the packed trace landed there


class TestVersion:
    def test_version_flag(self, capsys):
        from repro._version import package_version

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {package_version()}"

    def test_dunder_version_matches(self):
        import repro
        from repro._version import package_version

        assert repro.__version__ == package_version()


class TestServiceCommands:
    def test_parser_accepts_service_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--ttl", "60"])
        assert args.port == 0
        args = parser.parse_args(["submit", "--workloads", "histogram",
                                  "--protocol", "mesi,mw", "--wait"])
        assert args.workloads == "histogram"
        args = parser.parse_args(["jobs", "--state", "done", "--limit", "5"])
        assert args.limit == 5
        args = parser.parse_args(["doctor", "--prune-older-than", "30"])
        assert args.prune_older_than == 30.0

    def test_submit_builds_the_full_protocol_grid_by_default(self):
        from repro.cli import _submit_specs

        args = build_parser().parse_args(
            ["submit", "--workloads", "histogram,kmeans", "--cores", "2"])
        specs = _submit_specs(args)
        assert len(specs) == 8  # 2 workloads x 4 protocols
        assert {s["protocol"] for s in specs} == {"mesi", "protozoa-sw",
                                                 "protozoa-sw+mr",
                                                 "protozoa-mw"}

    def test_submit_and_jobs_against_a_live_service(self, tmp_path, capsys):
        import threading

        from repro.experiments._engine import ExperimentEngine, ResultCache
        from repro.service.app import SweepService
        from repro.service.rpc import make_server

        engine = ExperimentEngine(
            jobs=1, cache=ResultCache(tmp_path / "cache", enabled=True))
        service = SweepService(state_dir=tmp_path / "state", engine=engine,
                               idle_poll_s=0.05).start()
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            out_path = tmp_path / "matrix.json"
            assert main(["submit", "--url", url, "--workloads", "histogram",
                         "--cores", "2", "--scale", "80",
                         "--protocol", "mesi,mw", "--wait",
                         "--out", str(out_path)]) == 0
            out = capsys.readouterr().out
            assert "2 specs, queued" in out
            assert "done" in out
            assert out_path.exists()

            # The same submission again is answered from cache.
            assert main(["submit", "--url", url, "--workloads", "histogram",
                         "--cores", "2", "--scale", "80",
                         "--protocol", "mesi,mw"]) == 0
            assert "served from cache" in capsys.readouterr().out

            assert main(["jobs", "--url", url]) == 0
            assert "done" in capsys.readouterr().out
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
