"""Tests for flit and flit-hop accounting."""

from repro.common.params import NetworkConfig
from repro.interconnect.accounting import NetworkAccountant
from repro.interconnect.mesh import MeshTopology


def accountant(**kw):
    return NetworkAccountant(MeshTopology(NetworkConfig(**kw)))


class TestFlits:
    def test_rounding_up(self):
        acc = accountant()
        assert acc.flits(1) == 1
        assert acc.flits(16) == 1
        assert acc.flits(17) == 2
        assert acc.flits(72) == 5

    def test_zero_bytes_zero_flits(self):
        assert accountant().flits(0) == 0

    def test_flit_size_respected(self):
        acc = accountant(flit_bytes=8)
        assert acc.flits(16) == 2


class TestTransfer:
    def test_flit_hops_accumulate(self):
        acc = accountant()
        acc.transfer(0, 3, 16)  # 1 flit x 3 hops
        acc.transfer(0, 15, 32)  # 2 flits x 6 hops
        assert acc.total_flit_hops == 3 + 12
        assert acc.total_flits == 3
        assert acc.total_messages == 2

    def test_self_send_costs_no_hops(self):
        acc = accountant()
        latency = acc.transfer(5, 5, 64)
        assert acc.total_flit_hops == 0
        assert latency >= 1  # router traversal still modelled

    def test_latency_scales_with_distance(self):
        acc = accountant()
        near = acc.transfer(0, 1, 8)
        far = acc.transfer(0, 15, 8)
        assert far > near

    def test_serialization_latency(self):
        acc = accountant()
        small = acc.transfer(0, 1, 16)  # 1 flit
        large = acc.transfer(0, 1, 72)  # 5 flits -> +4 cycles
        assert large == small + 4

    def test_latency_formula(self):
        acc = accountant(link_latency=2, router_latency=1)
        # 3 hops x (2+1) + (1-1) + 1 router = 10
        assert acc.transfer(0, 3, 8) == 10

    def test_snapshot(self):
        acc = accountant()
        acc.transfer(0, 1, 16)
        snap = acc.snapshot()
        assert snap == {"messages": 1, "flits": 1, "flit_hops": 1}
