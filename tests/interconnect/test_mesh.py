"""Tests for the mesh topology."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import NetworkConfig
from repro.interconnect.mesh import MeshTopology


def mesh(w=4, h=4):
    return MeshTopology(NetworkConfig(mesh_width=w, mesh_height=h))


class TestHops:
    def test_self_distance_zero(self):
        m = mesh()
        for n in range(16):
            assert m.hops(n, n) == 0

    def test_manhattan(self):
        m = mesh()
        assert m.hops(0, 3) == 3  # same row
        assert m.hops(0, 12) == 3  # same column
        assert m.hops(0, 15) == 6  # opposite corner
        assert m.hops(5, 10) == 2

    def test_symmetric(self):
        m = mesh()
        for a in range(16):
            for b in range(16):
                assert m.hops(a, b) == m.hops(b, a)

    def test_triangle_inequality(self):
        m = mesh()
        for a in range(16):
            for b in range(16):
                for c in range(16):
                    assert m.hops(a, c) <= m.hops(a, b) + m.hops(b, c)

    def test_average_hops(self):
        # Known closed form for a 4x4 mesh: 8/3.
        assert mesh().average_hops() == pytest.approx(8 / 3)


class TestPlacement:
    def test_home_interleaving(self):
        m = mesh()
        assert m.home_node(0) == 0
        assert m.home_node(17) == 1
        assert m.home_node(31) == 15

    def test_core_node_identity(self):
        m = mesh()
        assert m.core_node(7) == 7
        with pytest.raises(ConfigError):
            m.core_node(16)

    def test_corners(self):
        assert mesh()._corners == [0, 3, 12, 15]

    def test_memory_node_is_nearest_corner(self):
        m = mesh()
        assert m.memory_node(0) == 0
        assert m.memory_node(5) == 0
        assert m.memory_node(10) == 15
        assert m.memory_node(7) == 3

    def test_rectangular_mesh(self):
        m = mesh(2, 3)
        assert m.nodes == 6
        assert m.hops(0, 5) == 3
        assert m._corners == [0, 1, 4, 5]

    def test_core_to_home_and_core_to_core(self):
        m = mesh()
        assert m.core_to_home(0, 15) == m.hops(0, 15)
        assert m.core_to_core(1, 2) == 1
