"""Tests for the combined evaluation report."""

import io

from repro.experiments import runner
from repro.experiments.report import SECTIONS, write_report


def test_sections_cover_every_table_and_figure():
    titles = " ".join(title for title, _ in SECTIONS)
    assert "Table 1" in titles
    for fig in range(9, 16):
        assert f"Figure {fig}" in titles


def test_write_report_small():
    settings = runner.ExperimentSettings(
        cores=4, per_core=150, workloads=("linear-regression", "kmeans"))
    matrix = runner.ResultMatrix(settings)
    buf = io.StringIO()
    write_report(matrix, out=buf)
    text = buf.getvalue()
    assert "Protozoa reproduction" in text
    assert "Table 1" in text and "Figure 15" in text
    assert "linear-regression" in text
    assert "geomean" in text
    # Headline charts and the Section 3.6 metadata table are appended.
    assert "Headlines (geomean vs MESI)" in text
    assert "Directory metadata cost" in text
    assert "#" in text  # bar chart glyphs


def test_report_reuses_matrix_runs():
    settings = runner.ExperimentSettings(
        cores=4, per_core=100, workloads=("kmeans",))
    matrix = runner.ResultMatrix(settings)
    write_report(matrix, out=io.StringIO())
    cached = len(matrix._cache)
    write_report(matrix, out=io.StringIO())
    assert len(matrix._cache) == cached  # second pass: all memoized
