"""Concurrent ResultCache access: no torn reads, no orphan temp files.

Two child processes hammer ``put()``/``get()`` on the *same* cache key
simultaneously.  The cache's crash-atomic write discipline (same-dir
temp file + fsync + rename) must guarantee that every read observes a
complete, parseable blob — a torn read would quarantine the entry, so a
clean quarantine dir after the storm is the proof.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.resilience.storage import QUARANTINE_DIRNAME

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SPEC = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
               cores=2, per_core=60, seed=0)

CHILD = textwrap.dedent("""\
    import json
    import sys

    from repro.common.params import ProtocolKind
    from repro.experiments._engine import ResultCache, RunSpec
    from repro.system.results import RunResult

    spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                   cores=2, per_core=60, seed=0)
    with open({blob!r}, encoding="utf-8") as fh:
        expected = json.load(fh)
    result = RunResult.from_dict(expected)
    cache = ResultCache({root!r}, enabled=True)
    for _ in range(200):
        cache.put(spec, result)
        seen = cache.get(spec)
        if seen is None:
            sys.exit(2)   # reader observed an unreadable entry
        if seen.to_dict() != expected:
            sys.exit(3)   # reader observed a torn/mixed entry
    if cache.quarantined:
        sys.exit(4)       # a read took the corruption path
    sys.exit(0)
""")


class TestConcurrentAccess:
    def test_two_processes_same_key(self, tmp_path):
        root = tmp_path / "cache"
        blob_path = tmp_path / "expected.json"

        # Seed one real result so both children write identical bytes.
        with ExperimentEngine(jobs=1,
                              cache=ResultCache(root, enabled=True)) as engine:
            result = engine.run(SPEC)
        blob_path.write_text(json.dumps(result.to_dict()), encoding="utf-8")

        script = CHILD.format(blob=str(blob_path), root=str(root))
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        env.pop("REPRO_FAULTS", None)
        children = [subprocess.Popen([sys.executable, "-c", script], env=env)
                    for _ in range(2)]
        codes = [child.wait(timeout=120) for child in children]
        assert codes == [0, 0]

        # No interrupted-writer debris and nothing was quarantined.
        assert list(root.rglob("*.tmp")) == []
        assert not (root / QUARANTINE_DIRNAME).exists()

        # The surviving entry parses and matches the seeded result.
        final = ResultCache(root, enabled=True).get(SPEC)
        assert final is not None
        assert final.to_dict() == result.to_dict()
