"""Additional runner-matrix coverage."""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments.runner import ALL_PROTOCOLS, ExperimentSettings, ResultMatrix


@pytest.fixture(scope="module")
def matrix():
    return ResultMatrix(ExperimentSettings(cores=4, per_core=120,
                                           workloads=("kmeans", "histogram")))


class TestMatrix:
    def test_all_protocols_ordering(self):
        assert ALL_PROTOCOLS[0] is ProtocolKind.MESI
        assert len(ALL_PROTOCOLS) == 4

    def test_results_carry_workload_names(self, matrix):
        result = matrix.run("kmeans", ProtocolKind.MESI)
        assert result.name == "kmeans"

    def test_runs_are_deterministic_across_matrices(self):
        settings = ExperimentSettings(cores=4, per_core=150,
                                      workloads=("histogram",))
        a = ResultMatrix(settings).run("histogram", ProtocolKind.PROTOZOA_MW)
        b = ResultMatrix(settings).run("histogram", ProtocolKind.PROTOZOA_MW)
        assert a.stats.misses == b.stats.misses
        assert a.traffic_bytes() == b.traffic_bytes()
        assert a.flit_hops() == b.flit_hops()

    def test_seed_changes_results(self):
        base = ExperimentSettings(cores=4, per_core=150, workloads=("histogram",))
        other = ExperimentSettings(cores=4, per_core=150, seed=9,
                                   workloads=("histogram",))
        a = ResultMatrix(base).run("histogram", ProtocolKind.MESI)
        b = ResultMatrix(other).run("histogram", ProtocolKind.MESI)
        assert a.traffic_bytes() != b.traffic_bytes()

    def test_sweep_on_subset(self, matrix):
        out = matrix.sweep(protocols=[ProtocolKind.MESI],
                           workloads=["histogram"])
        assert list(out) == [("histogram", ProtocolKind.MESI)]

    def test_mesi_block_sizes_respected(self, matrix):
        r16 = matrix.run("kmeans", ProtocolKind.MESI, block_bytes=16)
        r128 = matrix.run("kmeans", ProtocolKind.MESI, block_bytes=128)
        assert r16.config.words_per_region == 2
        assert r128.config.words_per_region == 16
        assert r16.stats.misses != r128.stats.misses
