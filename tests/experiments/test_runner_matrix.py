"""Additional runner-matrix coverage."""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments import runner
from repro.experiments.runner import (
    ALL_PROTOCOLS,
    ExperimentSettings,
    ResultMatrix,
    shared_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    return ResultMatrix(ExperimentSettings(cores=4, per_core=120,
                                           workloads=("kmeans", "histogram")))


class TestMatrix:
    def test_all_protocols_ordering(self):
        assert ALL_PROTOCOLS[0] is ProtocolKind.MESI
        assert len(ALL_PROTOCOLS) == 4

    def test_results_carry_workload_names(self, matrix):
        result = matrix.run("kmeans", ProtocolKind.MESI)
        assert result.name == "kmeans"

    def test_runs_are_deterministic_across_matrices(self):
        settings = ExperimentSettings(cores=4, per_core=150,
                                      workloads=("histogram",))
        a = ResultMatrix(settings).run("histogram", ProtocolKind.PROTOZOA_MW)
        b = ResultMatrix(settings).run("histogram", ProtocolKind.PROTOZOA_MW)
        assert a.stats.misses == b.stats.misses
        assert a.traffic_bytes() == b.traffic_bytes()
        assert a.flit_hops() == b.flit_hops()

    def test_seed_changes_results(self):
        base = ExperimentSettings(cores=4, per_core=150, workloads=("histogram",))
        other = ExperimentSettings(cores=4, per_core=150, seed=9,
                                   workloads=("histogram",))
        a = ResultMatrix(base).run("histogram", ProtocolKind.MESI)
        b = ResultMatrix(other).run("histogram", ProtocolKind.MESI)
        assert a.traffic_bytes() != b.traffic_bytes()

    def test_sweep_on_subset(self, matrix):
        out = matrix.sweep(protocols=[ProtocolKind.MESI],
                           workloads=["histogram"])
        assert list(out) == [("histogram", ProtocolKind.MESI)]

    def test_mesi_block_sizes_respected(self, matrix):
        r16 = matrix.run("kmeans", ProtocolKind.MESI, block_bytes=16)
        r128 = matrix.run("kmeans", ProtocolKind.MESI, block_bytes=128)
        assert r16.config.words_per_region == 2
        assert r128.config.words_per_region == 16
        assert r16.stats.misses != r128.stats.misses


class TestSharedMatrix:
    """shared_matrix() must track the environment, not a stale singleton."""

    @pytest.fixture(autouse=True)
    def _reset_singleton(self, monkeypatch):
        monkeypatch.setattr(runner, "_SHARED", None)

    def test_reused_while_settings_unchanged(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "150")
        assert shared_matrix() is shared_matrix()

    def test_rebuilt_when_scale_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "150")
        before = shared_matrix()
        monkeypatch.setenv("REPRO_SCALE", "300")
        after = shared_matrix()
        assert after is not before
        assert after.settings.per_core == 300

    def test_rebuilt_when_workloads_change(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        before = shared_matrix()
        monkeypatch.setenv("REPRO_WORKLOADS", "kmeans,histogram")
        after = shared_matrix()
        assert after is not before
        assert after.settings.workloads == ("kmeans", "histogram")
