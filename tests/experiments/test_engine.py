"""Engine correctness: parallel == serial == cached, bit for bit."""

import json
import os

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import (
    SCHEMA_VERSION,
    ExperimentEngine,
    ResultCache,
    RunSpec,
    execute_spec,
)
from repro.experiments.runner import ALL_PROTOCOLS, ExperimentSettings, ResultMatrix
from repro.system.results import RunResult

WORKLOADS = ("kmeans", "histogram")


def specs_for(per_core=120, cores=4, seed=0):
    return [RunSpec(workload=name, protocol=protocol, cores=cores,
                    per_core=per_core, seed=seed)
            for name in WORKLOADS for protocol in ALL_PROTOCOLS]


class TestSpecDigest:
    def test_digest_is_stable(self):
        spec = RunSpec("kmeans", ProtocolKind.MESI)
        assert spec.digest() == spec.digest()
        assert RunSpec("kmeans", ProtocolKind.MESI).digest() == spec.digest()

    def test_digest_covers_every_axis(self):
        base = RunSpec("kmeans", ProtocolKind.MESI, None, 4, 100, 0)
        variants = [
            RunSpec("histogram", ProtocolKind.MESI, None, 4, 100, 0),
            RunSpec("kmeans", ProtocolKind.PROTOZOA_MW, None, 4, 100, 0),
            RunSpec("kmeans", ProtocolKind.MESI, 32, 4, 100, 0),
            RunSpec("kmeans", ProtocolKind.MESI, None, 8, 100, 0),
            RunSpec("kmeans", ProtocolKind.MESI, None, 4, 200, 0),
            RunSpec("kmeans", ProtocolKind.MESI, None, 4, 100, 7),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1

    def test_digest_covers_schema_version(self, monkeypatch):
        spec = RunSpec("kmeans", ProtocolKind.MESI)
        before = spec.digest()
        monkeypatch.setattr("repro.experiments._engine.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        assert spec.digest() != before

    def test_payload_round_trip(self):
        spec = RunSpec("kmeans", ProtocolKind.PROTOZOA_SW_MR, 64, 8, 500, 3)
        assert RunSpec.from_payload(spec.payload()) == spec


class TestSerialization:
    """Cache round-trip preserves every counter the harnesses consume."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=[p.short_name for p in ALL_PROTOCOLS])
    def test_round_trip_preserves_harness_counters(self, protocol):
        result = execute_spec(RunSpec("kmeans", protocol, cores=4, per_core=150))
        clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        # Every figure-facing accessor agrees between live and portable forms.
        assert clone.traffic_bytes() == result.traffic_bytes()
        assert clone.traffic_split() == result.traffic_split()
        assert clone.control_split() == result.control_split()
        assert clone.mpki() == result.mpki()
        assert clone.invalidations() == result.invalidations()
        assert clone.used_fraction() == result.used_fraction()
        assert clone.exec_cycles() == result.exec_cycles()
        assert clone.flit_hops() == result.flit_hops()
        assert clone.block_size_buckets() == result.block_size_buckets()
        assert clone.dir_owned_buckets() == result.dir_owned_buckets()
        assert clone.summary() == result.summary()
        assert clone.config == result.config
        assert clone.name == result.name
        # And the raw stats are bit-identical.
        assert clone.stats.to_dict() == result.stats.to_dict()

    def test_round_trip_preserves_truncated_flag(self):
        result = execute_spec(RunSpec("kmeans", ProtocolKind.MESI,
                                      cores=4, per_core=100))
        result.stats.truncated = True
        clone = RunResult.from_dict(result.to_dict())
        assert clone.stats.truncated is True


class TestPackedParity:
    """Packed replay (the engine's default) == object-stream replay."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS,
                             ids=[p.short_name for p in ALL_PROTOCOLS])
    def test_packed_and_object_replay_bit_identical(self, protocol):
        spec = RunSpec("histogram", protocol, cores=4, per_core=150)
        packed = execute_spec(spec, packed=True)
        objects = execute_spec(spec, packed=False)
        assert packed.stats.to_dict() == objects.stats.to_dict()
        assert packed.flit_hops() == objects.flit_hops()
        assert packed.dir_owned_buckets() == objects.dir_owned_buckets()
        assert packed.to_dict() == objects.to_dict()


class TestParallelParity:
    def test_parallel_sweep_bit_identical_to_serial(self, tmp_path):
        """All four protocols x two workloads: pool results == in-process."""
        specs = specs_for()
        serial = {spec: execute_spec(spec) for spec in specs}
        with ExperimentEngine(jobs=2,
                              cache=ResultCache(tmp_path, enabled=True)) as engine:
            parallel = engine.run_many(specs)
        assert engine.executed == len(specs)
        assert set(parallel) == set(serial)
        for spec in specs:
            assert parallel[spec].stats.to_dict() == serial[spec].stats.to_dict()
            assert parallel[spec].flit_hops() == serial[spec].flit_hops()
            assert (parallel[spec].dir_owned_buckets()
                    == serial[spec].dir_owned_buckets())

    def test_pool_persists_across_run_many_calls(self, tmp_path):
        """One engine, many batches: the worker pool is created once."""
        with ExperimentEngine(jobs=2,
                              cache=ResultCache(tmp_path, enabled=True)) as engine:
            pool = engine.warm_pool()
            assert pool is not None
            engine.run_many(specs_for(per_core=60))
            assert engine.warm_pool() is pool
            engine.run_many(specs_for(per_core=80))
            assert engine.warm_pool() is pool
        assert engine._pool is None  # closed on exit

    def test_serial_engine_never_creates_a_pool(self, tmp_path):
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(tmp_path, enabled=True))
        assert engine.warm_pool() is None
        engine.run_many(specs_for(per_core=60))
        assert engine._pool is None
        engine.close()  # no-op, must not raise

    def test_close_is_idempotent_and_pool_recreates(self, tmp_path):
        engine = ExperimentEngine(jobs=2,
                                  cache=ResultCache(tmp_path, enabled=True))
        first = engine.warm_pool()
        engine.close()
        engine.close()
        second = engine.warm_pool()
        assert second is not None and second is not first
        engine.close()

    def test_parallel_results_land_in_cache_as_canonical_json(self, tmp_path):
        """Worker blobs written verbatim must equal a local serialization."""
        spec = RunSpec("kmeans", ProtocolKind.MESI, cores=4, per_core=120)
        other = RunSpec("histogram", ProtocolKind.MESI, cores=4, per_core=120)
        with ExperimentEngine(jobs=2,
                              cache=ResultCache(tmp_path, enabled=True)) as engine:
            engine.run_many([spec, other])
        blob = engine.cache.path_for(spec).read_text()
        local = execute_spec(spec)
        assert json.loads(blob) == local.to_dict()

    def test_warm_sweep_is_pure_cache_hits(self, tmp_path):
        specs = specs_for()
        cold = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path, enabled=True))
        first = cold.run_many(specs)
        warm = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path, enabled=True))
        second = warm.run_many(specs)
        assert warm.executed == 0
        assert warm.cache.hits == len(specs)
        for spec in specs:
            assert second[spec].stats.to_dict() == first[spec].stats.to_dict()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        spec = RunSpec("kmeans", ProtocolKind.MESI, cores=4, per_core=100)
        assert cache.get(spec) is None
        result = execute_spec(spec)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.stats.to_dict() == result.stats.to_dict()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        spec = RunSpec("kmeans", ProtocolKind.MESI, cores=4, per_core=100)
        cache.put(spec, execute_spec(spec))
        cache.path_for(spec).write_text("{ not json")
        assert cache.get(spec) is None

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        spec = RunSpec("kmeans", ProtocolKind.MESI, cores=4, per_core=100)
        cache.put(spec, execute_spec(spec))
        assert cache.get(spec) is None
        assert not any(tmp_path.iterdir())

    def test_repro_cache_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache = ResultCache(tmp_path)
        assert cache.enabled is False

    def test_layout_fans_out_by_digest_prefix(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        spec = RunSpec("kmeans", ProtocolKind.MESI, cores=4, per_core=100)
        cache.put(spec, execute_spec(spec))
        digest = spec.digest()
        assert (tmp_path / digest[:2] / f"{digest}.json").exists()


class TestMatrixOnEngine:
    def test_sweep_equals_per_cell_runs(self, tmp_path):
        settings = ExperimentSettings(cores=4, per_core=120,
                                      workloads=WORKLOADS)
        swept = ResultMatrix(
            settings,
            engine=ExperimentEngine(jobs=2, cache=ResultCache(tmp_path / "a",
                                                              enabled=True)))
        celled = ResultMatrix(
            settings,
            engine=ExperimentEngine(jobs=1, cache=ResultCache(tmp_path / "b",
                                                              enabled=True)))
        out = swept.sweep()
        for (name, protocol), result in out.items():
            other = celled.run(name, protocol)
            assert result.stats.to_dict() == other.stats.to_dict()

    def test_matrix_memoizes_in_process(self, tmp_path):
        settings = ExperimentSettings(cores=4, per_core=100,
                                      workloads=("kmeans",))
        matrix = ResultMatrix(
            settings,
            engine=ExperimentEngine(jobs=1, cache=ResultCache(tmp_path,
                                                              enabled=True)))
        a = matrix.run("kmeans", ProtocolKind.MESI)
        b = matrix.run("kmeans", ProtocolKind.MESI)
        assert a is b


class TestWorkerMetrics:
    """REPRO_OBS reaches pool workers; metric dumps merge back into the
    engine's session registry regardless of how a result was served."""

    def accesses_counter_total(self, engine):
        return sum(value for key, value in engine.metrics.counters().items()
                   if key.startswith("repro_accesses_total{"))

    def test_serial_runs_feed_engine_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        specs = specs_for(per_core=60)
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(tmp_path, enabled=True))
        results = engine.run_many(specs)
        expected = sum(r.stats.accesses for r in results.values())
        assert self.accesses_counter_total(engine) == expected

    def test_pool_runs_feed_engine_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        specs = specs_for(per_core=60)
        with ExperimentEngine(jobs=2,
                              cache=ResultCache(tmp_path, enabled=True)) as engine:
            results = engine.run_many(specs)
        assert engine.executed == len(specs)
        expected = sum(r.stats.accesses for r in results.values())
        assert self.accesses_counter_total(engine) == expected

    def test_cache_hits_also_absorb_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        spec = RunSpec("kmeans", ProtocolKind.MESI, cores=4, per_core=60)
        warm = ExperimentEngine(jobs=1,
                                cache=ResultCache(tmp_path, enabled=True))
        warm.run(spec)
        read_back = ExperimentEngine(jobs=1,
                                     cache=ResultCache(tmp_path, enabled=True))
        result = read_back.run(spec)
        assert read_back.executed == 0  # pure cache hit
        assert self.accesses_counter_total(read_back) == result.stats.accesses

    def test_without_obs_engine_metrics_stay_empty(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(tmp_path, enabled=True))
        engine.run_many(specs_for(per_core=60))
        assert len(engine.metrics) == 0

    def test_parallel_and_serial_metrics_agree(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        specs = specs_for(per_core=60)
        serial = ExperimentEngine(jobs=1,
                                  cache=ResultCache(tmp_path / "s", enabled=True))
        serial.run_many(specs)
        with ExperimentEngine(jobs=2,
                              cache=ResultCache(tmp_path / "p", enabled=True)) as pooled:
            pooled.run_many(specs)
        assert serial.metrics.counters() == pooled.metrics.counters()
