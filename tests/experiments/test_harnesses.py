"""Tests for the experiment harnesses (figures/table regeneration)."""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments import runner
from repro.experiments import (
    fig9_traffic,
    fig10_control,
    fig11_sharers,
    fig12_blocksize,
    fig13_mpki,
    fig14_exectime,
    fig15_energy,
    table1,
)

SMALL = runner.ExperimentSettings(
    cores=8, per_core=400,
    workloads=("linear-regression", "matrix-multiply"),
)


@pytest.fixture(scope="module")
def matrix():
    return runner.ResultMatrix(SMALL)


class TestRunner:
    def test_memoization(self, matrix):
        a = matrix.run("linear-regression", ProtocolKind.MESI)
        b = matrix.run("linear-regression", ProtocolKind.MESI)
        assert a is b

    def test_block_size_key_distinct(self, matrix):
        a = matrix.run("linear-regression", ProtocolKind.MESI, block_bytes=16)
        b = matrix.run("linear-regression", ProtocolKind.MESI, block_bytes=32)
        assert a is not b
        assert a.config.block_bytes == 16

    def test_sweep_covers_matrix(self, matrix):
        out = matrix.sweep()
        assert len(out) == 2 * 4

    def test_default_settings_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "123")
        monkeypatch.setenv("REPRO_WORKLOADS", "apache, h2")
        s = runner.default_settings()
        assert s.per_core == 123
        assert s.workloads == ("apache", "h2")

    def test_workload_names_default_all(self):
        assert len(runner.ExperimentSettings().workload_names()) == 28


class TestTable1:
    def test_rows_shape(self, matrix):
        rows = table1.rows(matrix)
        assert len(rows) == 2
        assert len(rows[0]) == len(table1.HEADERS)

    def test_trend_symbols(self):
        assert table1.trend_symbol(100, 100) == "~"
        assert table1.trend_symbol(100, 120) == "+"
        assert table1.trend_symbol(100, 140) == "++"
        assert table1.trend_symbol(100, 160) == "+++"
        assert table1.trend_symbol(100, 80) == "-"
        assert table1.trend_symbol(100, 50) == "--"
        assert table1.trend_symbol(0, 0) == "~"
        assert table1.trend_symbol(0, 5) == "+++"

    def test_linreg_optimal_is_16(self, matrix):
        metrics = table1.sweep_workload(matrix, "linear-regression")
        assert table1.optimal_block(metrics) == 16

    def test_render_contains_paper_columns(self, matrix):
        text = table1.render(matrix)
        assert "paper-opt" in text and "16" in text


class TestFigureHarnesses:
    def test_fig9_rows_normalized(self, matrix):
        rows = fig9_traffic.rows(matrix)
        mesi_rows = [r for r in rows if r[1] == "MESI"]
        for row in mesi_rows:
            assert row[-1] == pytest.approx(1.0)

    def test_fig9_summary_mw_below_mesi(self, matrix):
        means = fig9_traffic.summary(matrix)
        assert means["MW"] < means["MESI"] == 1.0

    def test_fig10_categories_sum_to_control(self, matrix):
        rows = fig10_control.rows(matrix)
        fig9 = {(r[0], r[1]): r[4] for r in fig9_traffic.rows(matrix)}
        for row in rows:
            total = sum(row[2:])
            assert total == pytest.approx(fig9[(row[0], row[1])], abs=2e-3)

    def test_fig11_fractions(self, matrix):
        rows = fig11_sharers.rows(matrix)
        for row in rows:
            fracs = row[1:4]
            assert sum(fracs) == pytest.approx(1.0, abs=1e-6) or sum(fracs) == 0

    def test_fig12_buckets_sum_to_one(self, matrix):
        for row in fig12_blocksize.rows(matrix):
            assert sum(row[1:]) == pytest.approx(1.0, abs=1e-3)

    def test_fig13_linreg_mw_wins(self, matrix):
        rows = {r[0]: r for r in fig13_mpki.rows(matrix)}
        linreg = rows["linear-regression"]
        assert linreg[4] < 0.2 * linreg[1]  # MW << MESI

    def test_fig14_mesi_column_is_one(self, matrix):
        for row in fig14_exectime.rows(matrix):
            assert row[1] == pytest.approx(1.0)

    def test_fig15_mw_reduces_flit_hops(self, matrix):
        means = fig15_energy.summary(matrix)
        assert means["MW"] < 1.0

    def test_all_renders_are_text(self, matrix):
        for mod in (fig9_traffic, fig10_control, fig11_sharers,
                    fig12_blocksize, fig13_mpki, fig14_exectime,
                    fig15_energy, table1):
            text = mod.render(matrix)
            assert isinstance(text, str) and len(text.splitlines()) >= 3
