"""HttpStore hardening: timeouts, retries, the circuit breaker.

The fast paths run against nothing at all (timeout precedence is pure
parsing; the breaker unit-tests its own state machine); the end-to-end
paths run against a live service with the network fault sites armed, so
the retry/recovery counters are earned on real round trips.
"""

import threading
import time

import pytest

from repro.experiments._engine import ExperimentEngine, ResultCache
from repro.obs.metrics import process_registry, reset_process_registry
from repro.resilience.faults import InjectedStoreFault, reset_injector
from repro.resilience.log import clear_events, recent_events
from repro.resilience.retry import RetryPolicy
from repro.service import SweepService, make_server
from repro.store import FsStore, HttpStore, StoreError, StoreUnavailableError
from repro.store.http import _Breaker, default_store_timeout

DIGEST = "ab" + "0" * 62
KEY = f"results/{DIGEST}.json"

#: Nothing listens here (port 9 is discard; nobody binds it in tests).
DEAD_URL = "http://127.0.0.1:9"


@pytest.fixture(autouse=True)
def _cold_state(monkeypatch):
    """No armed faults, fresh counters/events, before and after."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_DIR", raising=False)
    reset_injector()
    reset_process_registry()
    clear_events()
    yield
    reset_injector()
    reset_process_registry()
    clear_events()


@pytest.fixture()
def live(tmp_path):
    backing = FsStore(tmp_path / "cache", trace_root=tmp_path / "traces")
    engine = ExperimentEngine(
        jobs=1, cache=ResultCache(store=backing, enabled=True))
    service = SweepService(state_dir=tmp_path / "state", engine=engine,
                           idle_poll_s=0.05).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield url, service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def fast_store(url, retries=0, threshold=0, cooldown=60.0):
    """A store with no backoff sleeps and a configurable breaker."""
    return HttpStore(url, timeout_s=5.0,
                     retry=RetryPolicy(max_retries=retries,
                                       backoff_base_s=0.0),
                     breaker_threshold=threshold,
                     breaker_cooldown_s=cooldown)


class TestTimeoutPrecedence:
    def test_default_is_60s(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_TIMEOUT", raising=False)
        assert HttpStore(DEAD_URL).timeout_s == 60.0

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIMEOUT", "7.5")
        assert default_store_timeout() == 7.5
        assert HttpStore(DEAD_URL).timeout_s == 7.5

    def test_url_query_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIMEOUT", "7.5")
        assert HttpStore(DEAD_URL + "?timeout=3").timeout_s == 3.0

    def test_argument_beats_url_query(self):
        store = HttpStore(DEAD_URL + "?timeout=3", timeout_s=1.5)
        assert store.timeout_s == 1.5

    def test_bad_env_value_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIMEOUT", "soon")
        assert HttpStore(DEAD_URL).timeout_s == 60.0

    def test_unknown_url_param_rejected(self):
        with pytest.raises(StoreError, match="unknown store URL parameter"):
            HttpStore(DEAD_URL + "?retries=9")

    def test_bad_timeout_value_rejected(self):
        with pytest.raises(StoreError, match="timeout"):
            HttpStore(DEAD_URL + "?timeout=fast")

    def test_url_roundtrips_timeout(self):
        store = HttpStore(DEAD_URL + "?timeout=3")
        assert store.url() == DEAD_URL + "?timeout=3"
        assert HttpStore(store.url()).timeout_s == 3.0
        assert HttpStore(DEAD_URL).url() == DEAD_URL


class TestRetries:
    def test_injected_get_fault_recovers(self, live, monkeypatch):
        url, _ = live
        store = fast_store(url, retries=2)
        store.put(KEY, b'{"x": 1}')
        monkeypatch.setenv("REPRO_FAULTS", "store-get-error:n=1")
        reset_injector()
        assert store.get(KEY) == b'{"x": 1}'  # survived the flap
        counters = process_registry().counters()
        assert counters["repro_store_retry_total{op=get,outcome=retried}"] == 1
        assert counters[
            "repro_store_retry_total{op=get,outcome=recovered}"] == 1

    def test_404_is_an_answer_not_weather(self, live):
        url, _ = live
        store = fast_store(url, retries=3)
        assert store.get(KEY) is None
        assert store.stat(KEY) is None
        assert store.delete(KEY) is False
        counters = process_registry().counters()
        assert not any("outcome=retried" in key for key in counters)

    def test_exhausted_raises_last_error(self):
        store = fast_store(DEAD_URL, retries=1)
        with pytest.raises(OSError):
            store.get(KEY)
        counters = process_registry().counters()
        assert counters["repro_store_retry_total{op=get,outcome=retried}"] == 1
        assert counters[
            "repro_store_retry_total{op=get,outcome=exhausted}"] == 1

    def test_server_side_sites_are_wired(self, live, monkeypatch):
        _, service = live
        monkeypatch.setenv("REPRO_FAULTS", "store-get-error:n=1")
        reset_injector()
        with pytest.raises(InjectedStoreFault):
            service.blob_get(KEY)


class TestBreaker:
    def test_state_machine(self):
        breaker = _Breaker("http://x", threshold=2, cooldown_s=0.05)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == _Breaker.CLOSED  # one failure: not yet
        breaker.record_failure()
        assert breaker.state == _Breaker.OPEN and breaker.trips == 1
        assert not breaker.allow()  # cooling
        time.sleep(0.06)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == _Breaker.HALF_OPEN
        assert not breaker.allow()  # only one probe per cooldown
        breaker.record_failure()  # probe failed: re-open
        assert breaker.state == _Breaker.OPEN and breaker.trips == 2
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == _Breaker.CLOSED and breaker.failures == 0
        counters = process_registry().counters()
        assert counters["repro_store_breaker_trips_total"] == 2
        assert counters["repro_store_degraded_seconds_total"] > 0
        events = [event["event"] for event in recent_events()]
        assert events.count("store-degraded") == 2
        assert events.count("store-recovered") == 1

    def test_threshold_zero_disables(self):
        breaker = _Breaker("http://x", threshold=0, cooldown_s=0.01)
        for _ in range(10):
            breaker.record_failure()
            assert breaker.allow() and breaker.state == _Breaker.CLOSED

    def test_trip_then_fail_fast(self):
        store = fast_store(DEAD_URL, retries=0, threshold=2, cooldown=60.0)
        for _ in range(2):
            with pytest.raises(OSError):
                store.get(KEY)
        assert store.degraded
        time.sleep(0.01)
        with pytest.raises(StoreUnavailableError):
            store.get(KEY)  # no I/O burned: the breaker answered
        assert isinstance(StoreUnavailableError("x"), StoreError)
        counters = process_registry().counters()
        assert counters[
            "repro_store_retry_total{op=get,outcome=fast-fail}"] == 1
        assert counters["repro_store_degraded_seconds_total"] > 0

    def test_half_open_probe_recovers_end_to_end(self, live, monkeypatch):
        url, _ = live
        store = fast_store(url, retries=0, threshold=1, cooldown=0.05)
        store.put(KEY, b'{"x": 1}')
        monkeypatch.setenv("REPRO_FAULTS", "store-conn-refused:n=1")
        reset_injector()
        with pytest.raises(OSError):
            store.get(KEY)  # injected refusal trips the breaker
        assert store.degraded
        time.sleep(0.06)  # cooldown elapses; the probe is admitted
        assert store.get(KEY) == b'{"x": 1}'
        assert not store.degraded
        events = [event["event"] for event in recent_events()]
        assert "store-degraded" in events and "store-recovered" in events

    def test_probe_reports_unreachable(self):
        store = HttpStore(DEAD_URL, timeout_s=0.5)
        ok, detail = store.probe()
        assert not ok and detail

    def test_probe_reports_version(self, live):
        url, _ = live
        ok, detail = HttpStore(url, timeout_s=5.0).probe()
        assert ok and "reachable" in detail
