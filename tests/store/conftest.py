"""Store-suite isolation: no test leaks a configured store."""

import os

import pytest

import repro.store.config as store_config


@pytest.fixture(autouse=True)
def _per_test_trace_dir(tmp_path, monkeypatch):
    """Default trace roots resolve per-test, not to the shared session
    dir — a store test writing a garbage trace blob must not leak it
    into every later engine-backed test's cache."""
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "traces"))


@pytest.fixture(autouse=True)
def _clean_store_config():
    """Snapshot ``REPRO_STORE`` and the process-wide configured store."""
    saved_env = os.environ.get("REPRO_STORE")
    saved_configured = store_config._CONFIGURED
    yield
    store_config._CONFIGURED = saved_configured
    if saved_env is None:
        os.environ.pop("REPRO_STORE", None)
    else:
        os.environ["REPRO_STORE"] = saved_env
