"""FsStore: the BlobStore contract over the historical cache layout."""

import json
import warnings

import pytest

from repro.store import (
    NAMESPACE_RESULTS,
    NAMESPACE_TRACES,
    BlobStat,
    FsStore,
    StoreError,
    split_key,
    validate_key,
)

DIGEST = "ab" + "0" * 62


class TestKeys:
    def test_valid_keys_pass_through(self):
        key = f"results/{DIGEST}.json"
        assert validate_key(key) == key
        assert split_key(key) == ("results", f"{DIGEST}.json")

    @pytest.mark.parametrize("bad", [
        "",
        "results",
        "results/a/b",
        "../escape",
        "results/..",
        "results/.hidden",
        "results/has space",
        "/absolute/name",
        "results/",
        "results/sub\\name",
        None,
        42,
    ])
    def test_escaping_keys_rejected(self, bad):
        with pytest.raises(StoreError):
            validate_key(bad)


class TestRoundTrip:
    def test_put_get_stat_delete(self, tmp_path):
        store = FsStore(tmp_path)
        key = f"results/{DIGEST}.json"
        assert store.get(key) is None
        assert store.stat(key) is None
        store.put(key, b'{"x": 1}')
        assert store.get(key) == b'{"x": 1}'
        stat = store.stat(key)
        assert isinstance(stat, BlobStat) and stat.size == 8
        assert store.delete(key) is True
        assert store.get(key) is None
        assert store.delete(key) is False

    def test_put_accepts_text(self, tmp_path):
        store = FsStore(tmp_path)
        store.put(f"results/{DIGEST}.json", '{"y": 2}')
        assert store.get(f"results/{DIGEST}.json") == b'{"y": 2}'

    def test_put_blob_streams_writer(self, tmp_path):
        store = FsStore(tmp_path)
        key = f"traces/{DIGEST}.bin"
        store.put_blob(key, lambda fh: fh.write(b"\x00\x01\x02"))
        assert store.get(key) == b"\x00\x01\x02"

    def test_put_overwrites_atomically(self, tmp_path):
        store = FsStore(tmp_path)
        key = f"results/{DIGEST}.json"
        store.put(key, b"old")
        store.put(key, b"new")
        assert store.get(key) == b"new"

    def test_delete_prunes_empty_fanout_dir(self, tmp_path):
        store = FsStore(tmp_path)
        key = f"results/{DIGEST}.json"
        store.put(key, b"x")
        fanout = store.local_path(key).parent
        assert fanout.is_dir()
        store.delete(key)
        assert not fanout.exists()


class TestLayoutBitCompat:
    """The store serves and extends the pre-store cache trees unchanged."""

    def test_result_blob_lands_in_historical_location(self, tmp_path):
        store = FsStore(tmp_path)
        store.put(f"results/{DIGEST}.json", b"{}")
        assert (tmp_path / DIGEST[:2] / f"{DIGEST}.json").is_file()

    def test_trace_blob_lands_under_trace_root(self, tmp_path):
        store = FsStore(tmp_path)
        store.put(f"traces/{DIGEST}.bin", b"T")
        expected = store.trace_root / DIGEST[:2] / f"{DIGEST}.bin"
        assert expected.is_file()

    def test_explicit_trace_root_honoured(self, tmp_path):
        store = FsStore(tmp_path / "r", trace_root=tmp_path / "t")
        store.put(f"traces/{DIGEST}.bin", b"T")
        assert (tmp_path / "t" / DIGEST[:2] / f"{DIGEST}.bin").is_file()

    def test_default_roots_honour_legacy_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "tc"))
        store = FsStore()
        assert store.root == tmp_path / "cache"
        assert store.trace_root == tmp_path / "tc"

    def test_pre_store_tree_is_served_verbatim(self, tmp_path, monkeypatch):
        # A tree written by the pre-store cache code: fan-out by the
        # first two digest hex chars, traces/ nested under the root.
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        blob = tmp_path / DIGEST[:2] / f"{DIGEST}.json"
        blob.parent.mkdir(parents=True)
        blob.write_bytes(b'{"legacy": true}')
        trace = tmp_path / "traces" / "cd" / ("cd" + "0" * 62 + ".bin")
        trace.parent.mkdir(parents=True)
        trace.write_bytes(b"TRACE")
        store = FsStore(tmp_path)
        assert store.get(f"results/{DIGEST}.json") == b'{"legacy": true}'
        assert store.get("traces/cd" + "0" * 62 + ".bin") == b"TRACE"
        assert store.list() == [f"results/{DIGEST}.json",
                                "traces/cd" + "0" * 62 + ".bin"]


class TestList:
    def test_prefix_filtering(self, tmp_path):
        store = FsStore(tmp_path)
        store.put(f"results/{DIGEST}.json", b"{}")
        store.put(f"traces/{DIGEST}.bin", b"T")
        assert store.list("results/") == [f"results/{DIGEST}.json"]
        assert store.list("traces/") == [f"traces/{DIGEST}.bin"]
        assert store.list(f"results/{DIGEST[:2]}") == \
            [f"results/{DIGEST}.json"]
        assert len(store.list()) == 2

    def test_tmp_and_quarantine_never_listed(self, tmp_path):
        store = FsStore(tmp_path, trace_root=tmp_path / "traces")
        key = f"results/{DIGEST}.json"
        store.put(key, b"{}")
        (store.local_path(key).parent / "orphan.tmp").write_bytes(b"x")
        store.quarantine(key, "test")
        assert store.list() == []

    def test_nested_trace_root_not_listed_as_results(self, tmp_path):
        store = FsStore(tmp_path)  # trace_root defaults to root/traces
        store.put(f"traces/{DIGEST}.bin", b"T")
        assert store.list("results/") == []


class TestQuarantine:
    def test_quarantine_preserves_evidence(self, tmp_path):
        store = FsStore(tmp_path)
        key = f"results/{DIGEST}.json"
        store.put(key, b"CORRUPT")
        moved = store.quarantine(key, "does not parse")
        assert moved is not None
        assert store.get(key) is None
        inventory = store.quarantine_inventory(NAMESPACE_RESULTS)
        assert moved in inventory["files"]
        assert any("does not parse" in entry.get("reason", "")
                   for entry in inventory["manifest"])

    def test_quarantine_absent_blob_is_none(self, tmp_path):
        store = FsStore(tmp_path)
        assert store.quarantine(f"results/{DIGEST}.json", "gone") is None


class TestOrphans:
    def test_orphans_found_and_removed(self, tmp_path):
        store = FsStore(tmp_path)
        store.put(f"results/{DIGEST}.json", b"{}")
        orphan = tmp_path / DIGEST[:2] / "half-written.tmp"
        orphan.write_bytes(b"partial")
        found = store.orphans(NAMESPACE_RESULTS)
        assert found == [f"{DIGEST[:2]}/half-written.tmp"]
        assert store.remove_orphan(NAMESPACE_RESULTS, found[0]) is True
        assert not orphan.exists()
        assert store.orphans(NAMESPACE_RESULTS) == []

    def test_remove_orphan_refuses_traversal_and_non_tmp(self, tmp_path):
        store = FsStore(tmp_path)
        store.put(f"results/{DIGEST}.json", b"{}")
        assert store.remove_orphan(
            NAMESPACE_RESULTS, f"{DIGEST[:2]}/{DIGEST}.json") is False
        assert store.remove_orphan(
            NAMESPACE_RESULTS, "../../etc/passwd.tmp") is False
        assert store.get(f"results/{DIGEST}.json") is not None


class TestStructural:
    def test_misfiled_blob_detected_and_fixed(self, tmp_path):
        store = FsStore(tmp_path)
        misfiled = tmp_path / "zz" / f"{DIGEST}.json"
        misfiled.parent.mkdir(parents=True)
        misfiled.write_bytes(b"{}")
        problems = store.structural_check(NAMESPACE_RESULTS)
        assert len(problems) == 1 and DIGEST in problems[0]
        fixed = store.structural_check(NAMESPACE_RESULTS, fix=True)
        assert "quarantined" in fixed[0]
        assert not misfiled.exists()
        assert store.structural_check(NAMESPACE_RESULTS) == []


class TestGc:
    def test_gc_log_manifest_round_trip(self, tmp_path):
        store = FsStore(tmp_path)
        entry = {"file": f"{DIGEST[:2]}/{DIGEST}.json", "reason": "pruned"}
        store.gc_log(NAMESPACE_RESULTS, entry)
        assert store.gc_manifest(NAMESPACE_RESULTS) == [entry]
        assert store.gc_manifest(NAMESPACE_TRACES) == []

    def test_torn_manifest_tail_tolerated(self, tmp_path):
        store = FsStore(tmp_path)
        store.gc_log(NAMESPACE_RESULTS, {"file": "a"})
        manifest = tmp_path / "GC_MANIFEST.jsonl"
        with open(manifest, "a", encoding="utf-8") as fh:
            fh.write('{"file": "torn')  # crash mid-append
        assert store.gc_manifest(NAMESPACE_RESULTS) == [{"file": "a"}]


class TestCacheShims:
    """ResultCache(root)/TraceCache(root) still work, as FsStore wrappers."""

    def test_result_cache_root_warns_and_maps_to_fs_store(self, tmp_path):
        from repro.experiments._engine import ResultCache

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache = ResultCache(tmp_path / "cache", enabled=True)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert isinstance(cache.store, FsStore)
        assert cache.root == tmp_path / "cache"

    def test_trace_cache_root_warns_and_maps_to_fs_store(self, tmp_path):
        from repro.trace._cache import TraceCache

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache = TraceCache(tmp_path / "traces", enabled=True)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert isinstance(cache.store, FsStore)
        assert cache.root == tmp_path / "traces"

    def test_root_and_store_together_rejected(self, tmp_path):
        from repro.experiments._engine import ResultCache
        from repro.trace._cache import TraceCache

        with pytest.raises(TypeError):
            ResultCache(tmp_path, store=FsStore(tmp_path))
        with pytest.raises(TypeError):
            TraceCache(tmp_path, store=FsStore(tmp_path))

    def test_shimmed_cache_reads_store_written_blob(self, tmp_path):
        """Old-style cache and new-style store address the same bytes."""
        from repro.common.params import ProtocolKind
        from repro.experiments._engine import ResultCache, RunSpec

        spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                       cores=2, per_core=40, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cache = ResultCache(tmp_path / "cache", enabled=True)
        store = FsStore(tmp_path / "cache")
        assert cache.key_for(spec) == f"results/{spec.digest()}.json"
        assert cache.path_for(spec) == store.local_path(cache.key_for(spec))
