"""HttpStore against a live ``repro serve`` instance.

A real ``ThreadingHTTPServer`` on an ephemeral port: the raw blob data
plane (``GET/PUT/HEAD/DELETE /blob/<key>``) and the JSON-RPC management
plane (``store_*``), plus the shared-warm-cache behaviour the fleet
relies on (one worker's results are another worker's cache hits).
"""

import threading
import urllib.error
import urllib.request
import warnings

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.service import SweepService, make_server
from repro.store import FsStore, HttpStore, StoreError

DIGEST = "ab" + "0" * 62
KEY = f"results/{DIGEST}.json"


@pytest.fixture()
def live(tmp_path):
    """(backing FsStore, HttpStore client, service) around one server."""
    backing = FsStore(tmp_path / "cache", trace_root=tmp_path / "traces")
    engine = ExperimentEngine(
        jobs=1, cache=ResultCache(store=backing, enabled=True))
    service = SweepService(state_dir=tmp_path / "state", engine=engine,
                           idle_poll_s=0.05).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield backing, HttpStore(url, timeout_s=30.0), service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestDataPlane:
    def test_put_get_stat_delete(self, live):
        backing, store, _ = live
        assert store.get(KEY) is None
        assert store.stat(KEY) is None
        store.put(KEY, b'{"x": 1}')
        # The bytes land in the service's backing tree, fetchable by all.
        assert backing.get(KEY) == b'{"x": 1}'
        assert store.get(KEY) == b'{"x": 1}'
        stat = store.stat(KEY)
        assert stat.size == 8 and stat.mtime > 0
        assert store.delete(KEY) is True
        assert store.get(KEY) is None
        assert store.delete(KEY) is False

    def test_put_accepts_text_and_writer(self, live):
        _, store, _ = live
        store.put(KEY, '{"y": 2}')
        assert store.get(KEY) == b'{"y": 2}'
        store.put_blob(f"traces/{DIGEST}.bin",
                       lambda fh: fh.write(b"\x00\x01"))
        assert store.get(f"traces/{DIGEST}.bin") == b"\x00\x01"

    def test_bad_key_rejected_client_side(self, live):
        _, store, _ = live
        with pytest.raises(StoreError):
            store.put("../../escape", b"x")

    def test_bad_key_rejected_server_side(self, live):
        _, store, _ = live
        request = urllib.request.Request(
            store.base + "/blob/results/..%2Fescape", data=b"x",
            method="PUT")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30.0)
        assert exc.value.code == 400

    def test_blob_metrics_counted(self, live):
        _, store, service = live
        store.get(KEY)                 # miss
        store.put(KEY, b"{}")          # put
        store.get(KEY)                 # hit
        store.delete(KEY)              # delete
        counters = service.metrics_dump()["counters"]
        totals = {name.split("{")[0]: value
                  for name, value in counters.items()}
        assert totals.get("repro_service_blob_misses_total", 0) >= 1
        assert totals.get("repro_service_blob_puts_total", 0) >= 1
        assert totals.get("repro_service_blob_hits_total", 0) >= 1
        assert totals.get("repro_service_blob_deletes_total", 0) >= 1


class TestManagementPlane:
    def test_list_quarantine_orphans_gc(self, live):
        backing, store, _ = live
        store.put(KEY, b"NOT JSON")
        assert store.list("results/") == [KEY]
        # Quarantine through the wire; evidence lands in the backing tree.
        moved = store.quarantine(KEY, "judged corrupt remotely")
        assert moved is not None
        assert store.list("results/") == []
        inventory = store.quarantine_inventory("results")
        assert moved in inventory["files"]
        assert any("judged corrupt remotely" in entry.get("reason", "")
                   for entry in inventory["manifest"])
        # Orphan surface: a half-written temp file in the backing tree.
        orphan = backing.root / DIGEST[:2] / "broken.tmp"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"partial")
        assert store.orphans("results") == [f"{DIGEST[:2]}/broken.tmp"]
        assert store.remove_orphan("results", f"{DIGEST[:2]}/broken.tmp")
        assert store.orphans("results") == []
        # Structural + GC surfaces round-trip.
        assert store.structural_check("results") == []
        store.gc_log("results", {"file": "a", "reason": "pruned"})
        assert store.gc_manifest("results") == \
            [{"file": "a", "reason": "pruned"}]

    def test_rpc_error_maps_to_store_error(self, live):
        _, store, _ = live
        with pytest.raises(StoreError):
            store._rpc("store_quarantine", key="not-a-key", reason="x")


class TestSharedWarmCache:
    def test_remote_store_serves_another_workers_results(self, live):
        _, store, _ = live
        spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                       cores=2, per_core=60, seed=0)
        with ExperimentEngine(jobs=1, cache=ResultCache(
                store=store, enabled=True)) as first:
            result = first.run(spec)
            assert first.executed == 1
        # A different worker process (fresh engine, same URL): pure hit.
        with ExperimentEngine(jobs=1, cache=ResultCache(
                store=HttpStore(store.base), enabled=True)) as second:
            again = second.run(spec)
            assert second.executed == 0
            assert second.cache.hits == 1
        assert again.to_dict() == result.to_dict()

    def test_corrupt_remote_blob_quarantined_and_recomputed(self, live):
        _, store, _ = live
        spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                       cores=2, per_core=60, seed=1)
        cache = ResultCache(store=store, enabled=True)
        store.put(cache.key_for(spec), b"NOT JSON")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ExperimentEngine(jobs=1, cache=cache) as engine:
                result = engine.run(spec)
        assert engine.executed == 1
        assert cache.quarantined == 1
        assert store.get(cache.key_for(spec)) not in (None, b"NOT JSON")
        assert result.traffic_bytes() > 0
