"""Store selection: URL parsing, configure_store, and get_store."""

import os

import pytest

from repro.store import (
    FsStore,
    HttpStore,
    StoreError,
    configure_store,
    get_store,
)
from repro.store.config import parse_store_url, store_url


class TestParseStoreUrl:
    def test_file_url(self, tmp_path):
        store = parse_store_url(f"file://{tmp_path}")
        assert isinstance(store, FsStore) and store.root == tmp_path

    def test_bare_path(self, tmp_path):
        store = parse_store_url(str(tmp_path))
        assert isinstance(store, FsStore) and store.root == tmp_path

    def test_path_object(self, tmp_path):
        store = parse_store_url(tmp_path)
        assert isinstance(store, FsStore) and store.root == tmp_path

    def test_http_url(self):
        store = parse_store_url("http://cache-host:8673")
        assert isinstance(store, HttpStore)
        assert store.url() == "http://cache-host:8673"

    def test_trailing_slash_stripped(self):
        assert parse_store_url("http://h:1/").url() == "http://h:1"

    @pytest.mark.parametrize("bad", ["", "   ", "file://", "s3://bucket"])
    def test_rejects(self, bad):
        with pytest.raises(StoreError):
            parse_store_url(bad)

    def test_round_trips_through_url(self, tmp_path):
        store = parse_store_url(f"file://{tmp_path}")
        again = parse_store_url(store_url(store))
        assert isinstance(again, FsStore) and again.root == store.root


class TestConfigureStore:
    def test_configure_exports_env_and_pins_instance(self, tmp_path):
        store = configure_store(tmp_path)
        assert os.environ["REPRO_STORE"] == f"file://{tmp_path}"
        assert get_store() is store

    def test_env_change_invalidates_configured_store(self, tmp_path):
        configure_store(tmp_path / "a")
        os.environ["REPRO_STORE"] = f"file://{tmp_path / 'b'}"
        resolved = get_store()
        assert isinstance(resolved, FsStore)
        assert resolved.root == tmp_path / "b"

    def test_configure_none_reverts_to_environment(self, tmp_path,
                                                   monkeypatch):
        configure_store(tmp_path)
        assert configure_store(None) is None
        assert "REPRO_STORE" not in os.environ
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "legacy"))
        resolved = get_store()
        assert isinstance(resolved, FsStore)
        assert resolved.root == tmp_path / "legacy"

    def test_repro_store_env_alone_resolves(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", f"file://{tmp_path / 'env'}")
        resolved = get_store()
        assert isinstance(resolved, FsStore)
        assert resolved.root == tmp_path / "env"

    def test_bad_url_raises_store_error(self):
        with pytest.raises(StoreError):
            configure_store("gopher://nope")


class TestPublicSurface:
    def test_store_names_exported_from_api_and_repro(self):
        import repro
        import repro.api as api

        for name in ("BlobStore", "FsStore", "HttpStore", "StoreError",
                     "configure_store", "get_store", "LeaseBoard"):
            assert hasattr(api, name), name
            assert hasattr(repro, name), name
            assert name in api.__all__
            assert name in repro.__all__
