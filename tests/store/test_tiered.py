"""TieredStore: local-first reads, write-through + spool, budget eviction.

The remote here is an ``FsStore`` wrapped so the tests can yank the
network cable (``remote.down = True``) and count round trips — the tier
must behave identically over any :class:`~repro.store.base.BlobStore`.
"""

import collections
import json
import os
import time
from pathlib import Path

import pytest

from repro.obs.metrics import process_registry, reset_process_registry
from repro.resilience.faults import InjectedStoreFault
from repro.store import FsStore, StoreError, TieredStore, parse_store_url
from repro.store.tiered import TieredStore as TieredStoreDirect

DIGEST = "ab" + "0" * 62
KEY = f"results/{DIGEST}.json"


def key_for(index):
    return f"results/{index:02x}" + "0" * 62 + ".json"


class FlakyRemote(FsStore):
    """An FsStore with a breakable network cable and an op counter."""

    def __init__(self, root):
        super().__init__(root, trace_root=Path(root) / "traces")
        self.down = False
        self.fail_keys = set()  # puts of these keys always fail
        self.calls = collections.Counter()

    def _gate(self, op):
        self.calls[op] += 1
        if self.down:
            raise InjectedStoreFault(f"remote down ({op})")

    def get(self, key):
        self._gate("get")
        return super().get(key)

    def put(self, key, data):
        self._gate("put")
        if key in self.fail_keys:
            raise InjectedStoreFault(f"remote down (put {key})")
        super().put(key, data)

    def stat(self, key):
        self._gate("stat")
        return super().stat(key)

    def list(self, prefix=""):
        self._gate("list")
        return super().list(prefix)

    def delete(self, key):
        self._gate("delete")
        return super().delete(key)


@pytest.fixture(autouse=True)
def _cold_metrics():
    reset_process_registry()
    yield
    reset_process_registry()


@pytest.fixture()
def tier(tmp_path):
    remote = FlakyRemote(tmp_path / "remote")
    return remote, TieredStore(remote, tmp_path / "tier")


class TestUrlParsing:
    def test_tiered_over_file(self, tmp_path):
        url = f"tiered+file://{tmp_path}/r?local={tmp_path}/t"
        store = parse_store_url(url)
        assert isinstance(store, TieredStoreDirect)
        assert isinstance(store.remote, FsStore)
        assert store.budget_bytes is None
        # The rendered URL parses back to an equivalent tier.
        again = parse_store_url(store.url())
        assert again.url() == store.url()

    def test_tiered_over_http_with_timeout_and_budget(self, tmp_path):
        url = (f"tiered+http://127.0.0.1:9?timeout=0.25"
               f"&local={tmp_path}/t&budget=4096")
        store = parse_store_url(url)
        assert store.budget_bytes == 4096
        assert store.remote.timeout_s == 0.25
        assert store.local_dir == tmp_path / "t"
        again = parse_store_url(store.url())
        assert again.remote.timeout_s == 0.25
        assert again.budget_bytes == 4096

    def test_local_param_required(self):
        with pytest.raises(StoreError, match="local="):
            parse_store_url("tiered+http://127.0.0.1:9")

    def test_bad_budget_rejected(self, tmp_path):
        for bad in ("0", "-3", "many"):
            with pytest.raises(StoreError):
                parse_store_url(
                    f"tiered+http://h:1?local={tmp_path}&budget={bad}")

    def test_nested_tiers_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="nest"):
            parse_store_url(
                f"tiered+tiered+http://h:1?local={tmp_path}/a"
                f"&local={tmp_path}/b")


class TestWriteThrough:
    def test_put_lands_in_both_tiers(self, tier):
        remote, store = tier
        store.put(KEY, b'{"x": 1}')
        assert remote.get(KEY) == b'{"x": 1}'
        assert store.local.get(KEY) == b'{"x": 1}'
        assert store.spooled_keys() == []

    def test_reads_are_local_first(self, tier):
        remote, store = tier
        store.put(KEY, b"payload")
        remote.calls.clear()
        assert store.get(KEY) == b"payload"
        assert remote.calls["get"] == 0  # never touched the network
        counters = process_registry().counters()
        assert counters["repro_store_tier_hits_total{tier=local}"] >= 1

    def test_put_blob_and_text(self, tier):
        remote, store = tier
        store.put(KEY, '{"y": 2}')
        assert remote.get(KEY) == b'{"y": 2}'
        store.put_blob(f"traces/{DIGEST}.bin", lambda fh: fh.write(b"\x00\x01"))
        assert store.get(f"traces/{DIGEST}.bin") == b"\x00\x01"

    def test_delete_removes_both_tiers(self, tier):
        remote, store = tier
        store.put(KEY, b"gone")
        assert store.delete(KEY) is True
        assert store.get(KEY) is None
        assert remote.get(KEY) is None
        assert store.delete(KEY) is False


class TestReWarm:
    def test_get_rewarmes_local_tier(self, tier):
        remote, store = tier
        remote.put(KEY, b"remote-only")
        assert store.get(KEY) == b"remote-only"
        remote.calls.clear()
        assert store.get(KEY) == b"remote-only"  # now a local hit
        assert remote.calls["get"] == 0
        counters = process_registry().counters()
        assert counters["repro_store_tier_hits_total{tier=remote}"] == 1

    def test_local_path_rewarmes(self, tier):
        remote, store = tier
        trace_key = f"traces/{DIGEST}.bin"
        remote.put(trace_key, b"\x01\x02\x03")
        path = store.local_path(trace_key)
        assert path is not None and path.read_bytes() == b"\x01\x02\x03"
        # The local tier now owns a copy; mmap consumers stay local.
        remote.calls.clear()
        assert store.local_path(trace_key) == path
        assert remote.calls["get"] == 0

    def test_double_miss(self, tier):
        _, store = tier
        assert store.get(KEY) is None
        assert store.local_path(KEY) is None
        assert store.stat(KEY) is None
        counters = process_registry().counters()
        assert counters["repro_store_tier_misses_total"] >= 2

    def test_stat_and_list_union(self, tier):
        remote, store = tier
        store.put(key_for(1), b"a")
        remote.put(key_for(2), b"bb")
        assert store.stat(key_for(2)).size == 2
        assert store.list() == sorted([key_for(1), key_for(2)])
        remote.down = True
        # Degraded listing: the local tier's view (key 2 never re-warmed).
        assert store.list() == [key_for(1)]


class TestOutageSpool:
    def test_put_survives_remote_outage(self, tier):
        remote, store = tier
        remote.down = True
        store.put(KEY, b"spooled")
        assert store.get(KEY) == b"spooled"  # served by the local tier
        assert store.spooled_keys() == [KEY]
        counters = process_registry().counters()
        assert counters["repro_store_tier_spooled_total"] == 1
        # Marker content is self-describing for operators.
        marker = json.loads(
            (store._spool_dir / next(iter(
                p.name for p in store._spool_dir.iterdir()))).read_text())
        assert marker["key"] == KEY

    def test_flush_replays_on_reconnect(self, tier):
        remote, store = tier
        remote.down = True
        store.put(KEY, b"spooled")
        remote.down = False
        outcome = store.flush()
        assert outcome == {"flushed": 1, "remaining": 0}
        assert remote.get(KEY) == b"spooled"
        assert store.spooled_keys() == []
        counters = process_registry().counters()
        assert counters["repro_store_tier_flushed_total"] == 1

    def test_flush_stops_while_still_down(self, tier):
        remote, store = tier
        remote.down = True
        store.put(key_for(1), b"one")
        store.put(key_for(2), b"two")
        outcome = store.flush()
        assert outcome == {"flushed": 0, "remaining": 2}

    def test_next_op_drains_backlog(self, tier):
        remote, store = tier
        remote.down = True
        store.put(key_for(1), b"one")
        remote.down = False
        # Any later remote-facing op notices the backlog and replays it.
        store.get(key_for(9))
        assert store.spooled_keys() == []
        assert remote.get(key_for(1)) == b"one"

    def test_spool_survives_restart(self, tmp_path):
        remote = FlakyRemote(tmp_path / "remote")
        store = TieredStore(remote, tmp_path / "tier")
        remote.down = True
        store.put(KEY, b"persist")
        # A new process over the same tier dir sees the pending write.
        reborn = TieredStore(remote, tmp_path / "tier")
        assert reborn.spooled_keys() == [KEY]
        remote.down = False
        assert reborn.flush() == {"flushed": 1, "remaining": 0}
        assert remote.get(KEY) == b"persist"

    def test_probe_reports_spool_backlog(self, tier):
        remote, store = tier
        remote.down = True
        store.put(KEY, b"x")
        ok, detail = store.probe()
        assert ok  # FlakyRemote probe() is the FsStore default (local)
        assert "1 spooled write(s) pending" in detail


class TestQuarantine:
    def test_quarantine_is_local_only_and_heals(self, tier):
        remote, store = tier
        store.put(KEY, b"good bytes")
        assert store.quarantine(KEY, "checksum mismatch") is not None
        assert store.local.get(KEY) is None       # local copy retired
        assert remote.get(KEY) == b"good bytes"   # remote never judged
        assert store.get(KEY) == b"good bytes"    # re-warmed from remote
        assert store.local.get(KEY) == b"good bytes"
        inventory = store.quarantine_inventory("results")
        assert len(inventory["files"]) == 1

    def test_quarantine_unspools(self, tier):
        remote, store = tier
        remote.down = True
        store.put(KEY, b"bad bytes")
        store.quarantine(KEY, "corrupt")
        # A quarantined sole copy must not be replayed to the remote.
        assert store.spooled_keys() == []
        remote.down = False
        assert store.flush() == {"flushed": 0, "remaining": 0}
        assert remote.get(KEY) is None


class TestBudget:
    def test_lru_eviction_on_install(self, tmp_path):
        remote = FlakyRemote(tmp_path / "remote")
        store = TieredStore(remote, tmp_path / "tier", budget_bytes=250)
        base = time.time() - 1000
        for i in range(3):
            store.put(key_for(i), b"x" * 100)
            os.utime(store.local.local_path(key_for(i)),
                     (base + i, base + i))
        # The 4th install blows the budget; oldest locals go first.
        store.put(key_for(3), b"x" * 100)
        assert store.local.get(key_for(0)) is None
        assert store.local.get(key_for(1)) is None
        assert store.local.get(key_for(3)) == b"x" * 100
        # Evicted blobs still read through from the remote (write-through
        # landed them there before eviction ran).
        assert store.get(key_for(0)) == b"x" * 100
        counters = process_registry().counters()
        assert counters["repro_store_tier_evicted_total"] >= 2
        manifest = store.gc_manifest("results")
        assert all(entry["reason"] == "size-budget" for entry in manifest)
        assert len(manifest) >= 2

    def test_spooled_writes_never_evicted(self, tmp_path):
        remote = FlakyRemote(tmp_path / "remote")
        store = TieredStore(remote, tmp_path / "tier", budget_bytes=250)
        # The remote keeps rejecting this one key, so its spool marker
        # survives every later flush attempt — its sole copy stays local.
        remote.fail_keys.add(key_for(0))
        store.put(key_for(0), b"s" * 100)
        os.utime(store.local.local_path(key_for(0)),
                 (time.time() - 5000, time.time() - 5000))
        for i in range(1, 4):
            store.put(key_for(i), b"x" * 100)
        # key 0 is the oldest blob in the tier but its only copy lives
        # here — eviction must skip it no matter the pressure.
        assert store.local.get(key_for(0)) == b"s" * 100
        assert key_for(0) in store.spooled_keys()
        evicted = [key_for(i) for i in range(1, 4)
                   if store.local.get(key_for(i)) is None]
        assert evicted  # pressure was real: younger blobs made room
