"""EventTrace: ring-buffer retention, sampling, filtering, JSONL export."""

import io
import json

import pytest

from repro.obs.events import EventTrace, summarize_jsonl


def record_one(trace, *, core=0, is_write=False, addr=0, size=8, pc=0,
               latency=1, hit=True):
    trace.begin(core, is_write, addr, size, pc)
    trace.end(latency, hit)


class TestRecording:
    def test_begin_end_seals_one_record(self):
        trace = EventTrace()
        record_one(trace, core=3, is_write=True, addr=64, latency=42,
                   hit=False)
        (rec,) = trace.records()
        assert rec["core"] == 3
        assert rec["op"] == "W"
        assert rec["addr"] == 64
        assert rec["hit"] is False
        assert rec["latency"] == 42

    def test_messages_and_actions_attach_to_open_record(self):
        class FakeType:
            label = "GETS"

        trace = EventTrace()
        trace.begin(0, False, 0, 8, 0)
        trace.message(FakeType(), 1, 2, 4)
        trace.action("invalidate", 3)
        trace.grant(type("S", (), {"name": "E"}))
        trace.end(10, False)
        (rec,) = trace.records()
        assert rec["msgs"] == [["GETS", 1, 2, 4]]
        assert rec["actions"] == [["invalidate", 3]]
        assert rec["granted"] == "E"

    def test_hooks_without_open_record_are_noops(self):
        trace = EventTrace(sample_every=2)
        trace.begin(0, False, 0, 8, 0)
        trace.end(1, True)
        trace.begin(0, False, 0, 8, 0)  # seq 1: sampled out
        trace.message(type("T", (), {"label": "X"})(), 0, 0, 0)
        trace.action("probe_read", 0)
        trace.end(1, True)
        assert len(trace) == 1

    def test_hit_miss_counters(self):
        trace = EventTrace()
        record_one(trace, hit=True)
        record_one(trace, hit=False)
        record_one(trace, hit=False)
        assert trace.hits == 1
        assert trace.misses == 2


class TestRing:
    def test_ring_overflow_keeps_newest(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            record_one(trace, addr=i)
        assert trace.seen == 10
        assert trace.recorded == 10
        assert trace.dropped == 6
        assert [r["addr"] for r in trace.records()] == [6, 7, 8, 9]

    def test_records_are_oldest_first_across_wrap(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            record_one(trace, addr=i)
        seqs = [r["seq"] for r in trace.records()]
        assert seqs == sorted(seqs) == [2, 3, 4]

    def test_exact_capacity_does_not_drop(self):
        trace = EventTrace(capacity=4)
        for i in range(4):
            record_one(trace, addr=i)
        assert trace.dropped == 0
        assert [r["addr"] for r in trace.records()] == [0, 1, 2, 3]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)


class TestSampling:
    def test_sample_every_n_keeps_every_nth(self):
        trace = EventTrace(sample_every=3)
        for i in range(9):
            record_one(trace, addr=i)
        assert trace.seen == 9
        assert trace.recorded == 3
        assert trace.sampled_out == 6
        assert [r["seq"] for r in trace.records()] == [0, 3, 6]

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(sample_every=0)


class TestSpanSampling:
    def test_spans_admit_contiguous_bursts(self):
        # span=2, sample_every=3: admit 2, skip 2*(3-1)=4, repeat.
        trace = EventTrace(sample_every=3, span=2)
        for i in range(12):
            record_one(trace, addr=i)
        assert [r["seq"] for r in trace.records()] == [0, 1, 6, 7]
        assert trace.seen == 12
        assert trace.recorded == 4
        assert trace.sampled_out == 8

    def test_span_one_reproduces_every_nth(self):
        trace = EventTrace(sample_every=3, span=1)
        for i in range(9):
            record_one(trace, addr=i)
        assert [r["seq"] for r in trace.records()] == [0, 3, 6]

    def test_span_ignored_when_sampling_off(self):
        trace = EventTrace(sample_every=1, span=4)
        for i in range(6):
            record_one(trace, addr=i)
        assert trace.recorded == 6
        assert trace.sampled_out == 0

    def test_span_applies_to_hits_and_misses_alike(self):
        trace = EventTrace(sample_every=2, span=2)
        for i in range(8):
            if i % 2:
                record_one(trace, addr=i, hit=False)
            else:
                trace.hit(0, False, i, 8, 0, 1)
        # admit 0,1 / skip 2,3 / admit 4,5 / skip 6,7
        assert [r["seq"] for r in trace.records()] == [0, 1, 4, 5]
        assert trace.hits == 4
        assert trace.misses == 4

    def test_span_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(span=0)

    def test_span_reported_in_summary(self):
        trace = EventTrace(sample_every=4, span=8)
        assert trace.summary()["span"] == 8


class TestHitFastPath:
    def test_hit_seals_a_complete_record(self):
        trace = EventTrace()
        trace.hit(2, True, 128, 8, 4096, 3)
        (rec,) = trace.records()
        assert rec["core"] == 2
        assert rec["op"] == "W"
        assert rec["addr"] == 128
        assert rec["size"] == 8
        assert rec["pc"] == 4096
        assert rec["hit"] is True
        assert rec["latency"] == 3
        assert rec["msgs"] == []
        assert rec["actions"] == []
        assert trace.hits == 1

    def test_hit_records_share_the_ring_with_miss_records(self):
        trace = EventTrace(capacity=2)
        trace.hit(0, False, 0, 8, 0, 1)
        record_one(trace, addr=8, hit=False)
        trace.hit(0, False, 16, 8, 0, 1)
        assert trace.dropped == 1
        assert [r["addr"] for r in trace.records()] == [8, 16]

    def test_sampled_out_hits_still_count(self):
        trace = EventTrace(sample_every=4)
        for i in range(8):
            trace.hit(0, False, i, 8, 0, 1)
        assert trace.hits == 8
        assert trace.recorded == 2


class TestNoteBatched:
    def test_bulk_counts_without_records(self):
        trace = EventTrace()
        trace.note_batched(100)
        assert trace.seen == 100
        assert trace.hits == 100
        assert trace.batched == 100
        assert len(trace) == 0

    def test_batched_interleaves_with_scalar_counting(self):
        trace = EventTrace()
        record_one(trace, hit=False)
        trace.note_batched(10)
        record_one(trace, hit=True)
        assert trace.seen == 12
        assert trace.hits == 11
        assert trace.misses == 1
        assert len(trace) == 2

    def test_batched_reported_in_summary(self):
        trace = EventTrace()
        trace.note_batched(7)
        summary = trace.summary()
        assert summary["batched"] == 7
        assert summary["transactions"] == 7


class TestFiltering:
    @pytest.fixture()
    def trace(self):
        trace = EventTrace()
        record_one(trace, core=0, is_write=False, hit=True)
        record_one(trace, core=1, is_write=True, hit=False)
        record_one(trace, core=0, is_write=True, hit=False)
        record_one(trace, core=2, is_write=False, hit=False)
        return trace

    def test_filter_by_core(self, trace):
        assert [r["seq"] for r in trace.filtered(core=0)] == [0, 2]

    def test_filter_by_op(self, trace):
        assert [r["seq"] for r in trace.filtered(op="W")] == [1, 2]

    def test_filter_misses_only(self, trace):
        assert [r["seq"] for r in trace.filtered(misses_only=True)] == [1, 2, 3]

    def test_filter_limit(self, trace):
        assert len(list(trace.filtered(limit=2))) == 2

    def test_filters_compose(self, trace):
        out = list(trace.filtered(core=0, op="W", misses_only=True))
        assert [r["seq"] for r in out] == [2]


class TestExport:
    def test_dump_jsonl_round_trips(self):
        trace = EventTrace()
        for i in range(3):
            record_one(trace, addr=i * 8, hit=bool(i % 2))
        buf = io.StringIO()
        assert trace.dump_jsonl(buf) == 3
        lines = buf.getvalue().strip().splitlines()
        assert [json.loads(l)["addr"] for l in lines] == [0, 8, 16]

    def test_summary_counts(self):
        trace = EventTrace()
        record_one(trace, latency=10, hit=True)
        record_one(trace, latency=30, hit=False)
        summary = trace.summary()
        assert summary["transactions"] == 2
        assert summary["hits"] == 1
        assert summary["misses"] == 1
        assert summary["mean_latency_retained"] == 20.0

    def test_summarize_jsonl_matches_live_summary(self):
        trace = EventTrace()
        for i in range(4):
            record_one(trace, addr=i, latency=i, hit=bool(i % 2))
        buf = io.StringIO()
        trace.dump_jsonl(buf)
        buf.seek(0)
        summary = summarize_jsonl(buf)
        assert summary["retained"] == 4
        assert summary["hits"] == trace.hits
        assert summary["misses"] == trace.misses
