"""MetricsRegistry: series keys, histograms, and the cross-process merge."""

import json

from repro.obs.metrics import HistogramData, MetricsRegistry, series_key


class TestSeriesKey:
    def test_bare_name_without_labels(self):
        assert series_key("repro_x_total", {}) == "repro_x_total"

    def test_labels_sorted_into_key(self):
        key = series_key("m", {"b": 2, "a": 1})
        assert key == "m{a=1,b=2}"

    def test_label_order_is_canonical(self):
        assert (series_key("m", {"x": 1, "y": 2})
                == series_key("m", {"y": 2, "x": 1}))


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2, op="read")
        reg.inc("hits", 3, op="read")
        reg.inc("hits", 5, op="write")
        assert reg.counter_value("hits", op="read") == 5
        assert reg.counter_value("hits", op="write") == 5
        assert reg.counter_value("hits", op="rmw") == 0


class TestHistogram:
    def test_observe_buckets_by_power_of_two(self):
        hist = HistogramData()
        for value in (1, 2, 3, 8, 9):
            hist.observe(value)
        assert hist.buckets == {0: 1, 1: 2, 3: 2}
        assert hist.count == 5
        assert hist.total == 23
        assert (hist.min, hist.max) == (1, 9)

    def test_merge_dict_combines_everything(self):
        a, b = HistogramData(), HistogramData()
        a.observe(4)
        b.observe(2)
        b.observe(100)
        a.merge_dict(b.to_dict())
        assert a.count == 3
        assert a.total == 106
        assert (a.min, a.max) == (2, 100)

    def test_merge_into_empty(self):
        a, b = HistogramData(), HistogramData()
        b.observe(7)
        a.merge_dict(b.to_dict())
        assert a.to_dict() == b.to_dict()


class TestRegistryMerge:
    def build(self, scale):
        reg = MetricsRegistry()
        reg.inc("repro_misses_total", 10 * scale, kind="read", protocol="mesi")
        reg.inc("repro_misses_total", 5 * scale, kind="write", protocol="mesi")
        reg.observe("repro_miss_latency_cycles", 16 * scale, protocol="mesi")
        return reg

    def test_merge_is_commutative(self):
        left = self.build(1)
        left.merge(self.build(2))
        right = self.build(2)
        right.merge(self.build(1))
        assert left.to_dict() == right.to_dict()

    def test_merge_is_associative(self):
        abc = self.build(1)
        abc.merge(self.build(2))
        abc.merge(self.build(3))
        bc = self.build(2)
        bc.merge(self.build(3))
        a_bc = self.build(1)
        a_bc.merge(bc)
        assert abc.to_dict() == a_bc.to_dict()

    def test_wire_form_is_json_round_trippable(self):
        reg = self.build(3)
        wire = json.loads(json.dumps(reg.to_dict()))
        back = MetricsRegistry.from_dict(wire)
        assert back.to_dict() == reg.to_dict()

    def test_merge_dict_ignores_unknown_sections(self):
        reg = MetricsRegistry()
        reg.merge_dict({"counters": {"c": 1}, "future_section": {"x": 2}})
        assert reg.counter_value("c") == 1
