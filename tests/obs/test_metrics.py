"""MetricsRegistry: series keys, histograms, and the cross-process merge."""

import json

import pytest

from repro.obs.metrics import (HistogramData, MetricsRegistry, _KEY_CACHE,
                               _KEY_CACHE_MAX, parse_series_key, series_key)


class TestSeriesKey:
    def test_bare_name_without_labels(self):
        assert series_key("repro_x_total", {}) == "repro_x_total"

    def test_labels_sorted_into_key(self):
        key = series_key("m", {"b": 2, "a": 1})
        assert key == "m{a=1,b=2}"

    def test_label_order_is_canonical(self):
        assert (series_key("m", {"x": 1, "y": 2})
                == series_key("m", {"y": 2, "x": 1}))


class TestSeriesKeyEscaping:
    def test_structural_characters_round_trip(self):
        labels = {"path": "a,b=c{d}e\\f", "plain": "ok"}
        name, parsed = parse_series_key(series_key("m", labels))
        assert name == "m"
        assert parsed == labels

    def test_escaping_prevents_collisions(self):
        # Without escaping both maps would format to m{a=1,b=2}.
        assert (series_key("m", {"a": "1,b=2"})
                != series_key("m", {"a": 1, "b": 2}))

    def test_parse_bare_name(self):
        assert parse_series_key("repro_x_total") == ("repro_x_total", {})

    def test_parse_values_come_back_as_strings(self):
        name, labels = parse_series_key(series_key("m", {"n": 7}))
        assert labels == {"n": "7"}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_series_key("m{unterminated")
        with pytest.raises(ValueError):
            parse_series_key("m{novalue}")

    def test_key_cache_is_bounded(self):
        for i in range(_KEY_CACHE_MAX + 64):
            series_key("m", {"i": i})
        assert len(_KEY_CACHE) <= _KEY_CACHE_MAX

    def test_unhashable_label_values_skip_the_cache(self):
        key = series_key("m", {"a": [1, 2]})
        assert parse_series_key(key) == ("m", {"a": "[1, 2]"})


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2, op="read")
        reg.inc("hits", 3, op="read")
        reg.inc("hits", 5, op="write")
        assert reg.counter_value("hits", op="read") == 5
        assert reg.counter_value("hits", op="write") == 5
        assert reg.counter_value("hits", op="rmw") == 0


class TestHistogram:
    def test_observe_buckets_by_power_of_two(self):
        hist = HistogramData()
        for value in (1, 2, 3, 8, 9):
            hist.observe(value)
        assert hist.buckets == {0: 1, 1: 2, 3: 2}
        assert hist.count == 5
        assert hist.total == 23
        assert (hist.min, hist.max) == (1, 9)

    def test_merge_dict_combines_everything(self):
        a, b = HistogramData(), HistogramData()
        a.observe(4)
        b.observe(2)
        b.observe(100)
        a.merge_dict(b.to_dict())
        assert a.count == 3
        assert a.total == 106
        assert (a.min, a.max) == (2, 100)

    def test_merge_into_empty(self):
        a, b = HistogramData(), HistogramData()
        b.observe(7)
        a.merge_dict(b.to_dict())
        assert a.to_dict() == b.to_dict()


class TestCounterScratch:
    def test_slot_adds_fold_into_counters(self):
        reg = MetricsRegistry()
        scratch = reg.counter_scratch()
        read = scratch.slot("hits", op="read")
        write = scratch.slot("hits", op="write")
        scratch.slots[read] += 3
        scratch.slots[write] += 2
        scratch.slots[read] += 1
        assert reg.counter_value("hits", op="read") == 4
        assert reg.counter_value("hits", op="write") == 2

    def test_fold_is_triggered_by_any_read(self):
        reg = MetricsRegistry()
        scratch = reg.counter_scratch()
        idx = scratch.slot("c")
        scratch.slots[idx] += 7
        # No explicit fold_pending(): to_dict folds transparently.
        assert reg.to_dict()["counters"] == {"c": 7}
        assert scratch.slots[idx] == 0

    def test_fold_is_idempotent(self):
        reg = MetricsRegistry()
        scratch = reg.counter_scratch()
        idx = scratch.slot("c")
        scratch.slots[idx] += 5
        reg.fold_pending()
        reg.fold_pending()
        assert reg.counter_value("c") == 5

    def test_scratch_composes_with_eager_inc(self):
        reg = MetricsRegistry()
        scratch = reg.counter_scratch()
        idx = scratch.slot("c", op="read")
        reg.inc("c", 10, op="read")
        scratch.slots[idx] += 1
        assert reg.counter_value("c", op="read") == 11

    def test_fold_cycles_count_only_dirty_folds(self):
        reg = MetricsRegistry()
        scratch = reg.counter_scratch()
        idx = scratch.slot("c")
        reg.fold_pending()               # nothing pending: not a cycle
        assert reg.fold_cycles == 0
        scratch.slots[idx] += 1
        reg.fold_pending()
        reg.fold_pending()               # already clean again
        assert reg.fold_cycles == 1


class TestBoundHistogram:
    def test_fold_matches_eager_observe(self):
        values = [0, 1, 1, 2, 3, 7, 8, 9, 31, 32, 63]
        eager = MetricsRegistry()
        for v in values:
            eager.observe("h", v, protocol="mesi")
        deferred = MetricsRegistry()
        bound = deferred.bound_histogram("h", max_value=63, protocol="mesi")
        for v in values:
            bound.counts[v] += 1
        assert (json.dumps(deferred.to_dict(), sort_keys=True)
                == json.dumps(eager.to_dict(), sort_keys=True))

    def test_observe_grows_past_the_bound_in_place(self):
        reg = MetricsRegistry()
        bound = reg.bound_histogram("h", max_value=4)
        counts = bound.counts          # hot closures bind the list directly
        bound.observe(100)
        assert counts is bound.counts  # grown in place, identity preserved
        assert len(counts) >= 101
        hist = reg.histograms()["h"]
        assert (hist.count, hist.total, hist.min, hist.max) == (1, 100, 100, 100)

    def test_zero_value_lands_in_bucket_zero(self):
        reg = MetricsRegistry()
        bound = reg.bound_histogram("h", max_value=8)
        bound.counts[0] += 2
        hist = reg.histograms()["h"]
        assert hist.buckets == {0: 2}
        assert (hist.min, hist.max) == (0, 0)

    def test_fold_on_read_then_more_events(self):
        reg = MetricsRegistry()
        bound = reg.bound_histogram("h", max_value=8)
        bound.counts[4] += 1
        assert reg.histograms()["h"].count == 1
        bound.counts[4] += 1
        assert reg.histograms()["h"].count == 2


class TestRegistryMerge:
    def build(self, scale):
        reg = MetricsRegistry()
        reg.inc("repro_misses_total", 10 * scale, kind="read", protocol="mesi")
        reg.inc("repro_misses_total", 5 * scale, kind="write", protocol="mesi")
        reg.observe("repro_miss_latency_cycles", 16 * scale, protocol="mesi")
        return reg

    def test_merge_is_commutative(self):
        left = self.build(1)
        left.merge(self.build(2))
        right = self.build(2)
        right.merge(self.build(1))
        assert left.to_dict() == right.to_dict()

    def test_merge_is_associative(self):
        abc = self.build(1)
        abc.merge(self.build(2))
        abc.merge(self.build(3))
        bc = self.build(2)
        bc.merge(self.build(3))
        a_bc = self.build(1)
        a_bc.merge(bc)
        assert abc.to_dict() == a_bc.to_dict()

    def test_wire_form_is_json_round_trippable(self):
        reg = self.build(3)
        wire = json.loads(json.dumps(reg.to_dict()))
        back = MetricsRegistry.from_dict(wire)
        assert back.to_dict() == reg.to_dict()

    def test_merge_dict_ignores_unknown_sections(self):
        reg = MetricsRegistry()
        reg.merge_dict({"counters": {"c": 1}, "future_section": {"x": 2}})
        assert reg.counter_value("c") == 1
