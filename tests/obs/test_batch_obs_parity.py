"""Batch + observability: counter parity and engagement, all protocols.

The batch engine used to decline whenever an event trace was attached,
so ``REPRO_OBS=1`` silently cost the batched issue loop.  Now the two
compose: batched bulk hits fold into the same scratch counter slots the
scalar hot path increments and are counted through the event trace's
transaction-level counters, so the observable outputs — ``RunStats``
*and* the metric dump — must be byte-identical to the scalar obs run.
These tests also prove the batch engine actually *engaged* (bulk hits
were counted) rather than passing trivially by declining.
"""

from __future__ import annotations

import json

import pytest

from repro.common.params import SystemConfig
from repro.system.machine import simulate
from repro.trace.packed import PackedTrace
from repro.trace.workloads import build_streams

from tests.conftest import ALL_KINDS


def packed(workload: str, cores: int = 4, per_core: int = 300,
           seed: int = 0) -> PackedTrace:
    return PackedTrace.from_streams(
        build_streams(workload, cores=cores, per_core=per_core, seed=seed))


def run_pair(kind, workload: str = "kmeans", **kwargs):
    trace = packed(workload)
    config = SystemConfig(protocol=kind, cores=4, check_values=False)
    scalar = simulate(trace, config, obs=True, batch=False, **kwargs)
    batched = simulate(trace, config, obs=True, batch=True, **kwargs)
    return scalar, batched


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
class TestParity:
    def test_stats_identical(self, kind):
        scalar, batched = run_pair(kind)
        assert batched.stats.to_dict() == scalar.stats.to_dict()

    def test_metric_dumps_byte_identical(self, kind):
        scalar, batched = run_pair(kind)
        assert (json.dumps(batched.metrics, sort_keys=True)
                == json.dumps(scalar.metrics, sort_keys=True))

    def test_batching_engaged(self, kind):
        _, batched = run_pair(kind)
        assert batched.obs.events.batched > 0

    def test_transaction_counters_match(self, kind):
        # seen/hits/misses are transaction-level and sampling-independent;
        # batch-executed hits must land in them too.
        scalar, batched = run_pair(kind)
        se, be = scalar.obs.events, batched.obs.events
        assert (be.seen, be.hits, be.misses) == (se.seen, se.hits, se.misses)


class TestRecordStream:
    def test_batched_ring_holds_only_scalar_executed_transactions(self):
        scalar, batched = run_pair(ALL_KINDS[0])
        events = batched.obs.events
        assert events.recorded < scalar.obs.events.recorded
        # Every transaction is accounted for exactly once: sealed as a
        # record, skipped by sampling, or bulk-counted by the batch engine.
        assert (events.recorded + events.sampled_out + events.batched
                == events.seen)

    def test_every_scalar_miss_still_has_a_record(self):
        scalar, batched = run_pair(ALL_KINDS[0])
        scalar_misses = [r["seq"] for r in scalar.obs.events.records()
                         if not r["hit"]]
        batched_misses = [r["seq"] for r in batched.obs.events.records()
                         if not r["hit"]]
        # Same number of miss transactions recorded; seq numbering differs
        # because batched hits are counted in bulk between them.
        assert len(batched_misses) == len(scalar_misses)
