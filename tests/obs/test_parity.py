"""The observability contract: off is a no-op, on changes no counter.

Every protocol runs the same seeded trace twice — once plain, once with
full tracing — and the complete serialized counter state must be
bit-identical.  This is the guarantee that lets tracing be flipped on in
production sweeps without invalidating any cached or published number.
"""

import pytest

from repro.common.params import ProtocolKind, SystemConfig
from repro.obs import ObsConfig, Observability, resolve_obs
from repro.system.machine import simulate
from repro.trace.workloads import build_streams

CORES = 4
PER_CORE = 400
SEED = 11


def run(kind, obs=None, workload="kmeans"):
    streams = build_streams(workload, cores=CORES, per_core=PER_CORE,
                            seed=SEED)
    config = SystemConfig(protocol=kind, cores=CORES)
    return simulate(streams, config, name=workload, obs=obs)


@pytest.mark.parametrize("kind", list(ProtocolKind),
                         ids=[k.short_name for k in ProtocolKind])
class TestCounterParity:
    def test_full_tracing_changes_no_counter(self, kind):
        plain = run(kind)
        traced = run(kind, obs=ObsConfig(enabled=True))
        assert plain.stats.to_dict() == traced.stats.to_dict()

    def test_sampled_ring_changes_no_counter(self, kind):
        plain = run(kind)
        traced = run(kind, obs=ObsConfig(enabled=True, ring_size=32,
                                         sample_every=7))
        assert plain.stats.to_dict() == traced.stats.to_dict()

    def test_traced_run_observed_every_access(self, kind):
        traced = run(kind, obs=ObsConfig(enabled=True))
        events = traced.obs.events
        assert events.seen == traced.stats.accesses
        assert events.hits == traced.stats.accesses - traced.stats.misses
        assert events.misses == traced.stats.misses


class TestDisabledIsNoop:
    def test_no_obs_attaches_nothing(self):
        result = run(ProtocolKind.MESI)
        assert result.obs is None
        assert result.metrics is None
        assert result.phase_seconds is None
        assert "metrics" not in result.to_dict()

    def test_obs_false_forces_off_despite_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        result = run(ProtocolKind.MESI, obs=False)
        assert result.obs is None

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        result = run(ProtocolKind.MESI)
        assert result.obs is not None
        assert result.metrics is not None

    def test_disabled_protocol_hooks_stay_none(self):
        result = run(ProtocolKind.PROTOZOA_MW)
        assert result.protocol._obs is None
        assert result.protocol._obs_events is None


class TestObservedArtifacts:
    def test_metrics_project_run_stats(self):
        result = run(ProtocolKind.PROTOZOA_MW, obs=ObsConfig(enabled=True))
        counters = result.metrics["counters"]
        labels = "protocol=protozoa-mw,workload=kmeans"
        assert (counters[f"repro_accesses_total{{op=read,{labels}}}"]
                == result.stats.reads)
        assert (counters[f"repro_instructions_total{{{labels}}}"]
                == result.stats.instructions)
        miss_hist = result.metrics["histograms"][
            f"repro_miss_latency_cycles{{{labels}}}"]
        assert miss_hist["count"] == result.stats.miss_latency.count

    def test_phase_timers_cover_simulate_and_flush(self):
        result = run(ProtocolKind.MESI, obs=ObsConfig(enabled=True))
        assert set(result.phase_seconds) >= {"simulate", "flush"}
        assert result.phase_seconds["simulate"] > 0

    def test_trace_hook_chains_with_existing_observer(self):
        """attach_obs must not clobber a pre-installed trace_hook."""
        from repro.system.machine import build_protocol

        seen = []
        config = SystemConfig(protocol=ProtocolKind.MESI, cores=2)
        protocol = build_protocol(config)
        protocol.trace_hook = lambda *a: seen.append(a)
        protocol.attach_obs(Observability(ObsConfig(enabled=True)))
        protocol.read(0, 0, 8, 0)
        assert seen, "pre-existing trace_hook was dropped"
        assert protocol._obs_events.seen == 1  # obs saw the access too


class TestResolveObs:
    def test_none_without_env_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert resolve_obs(None) is None

    def test_true_is_enabled_defaults(self):
        session = resolve_obs(True)
        assert session is not None
        assert session.events is not None

    def test_disabled_config_is_off(self):
        assert resolve_obs(ObsConfig(enabled=False)) is None

    def test_session_passes_through(self):
        session = Observability(ObsConfig(enabled=True))
        assert resolve_obs(session) is session


class TestEnvDefaults:
    """Env-enabled obs burst-samples the ring; the constructor does not."""

    def test_env_enabled_defaults_to_burst_sampling(self):
        config = ObsConfig.from_env({"REPRO_OBS": "1"})
        assert config.enabled
        assert config.sample_every == 8
        assert config.span_size == 4

    def test_constructor_default_is_full_fidelity(self):
        config = ObsConfig(enabled=True)
        assert config.sample_every == 1
        assert config.span_size == 1

    def test_env_sample_one_restores_full_fidelity(self):
        config = ObsConfig.from_env({"REPRO_OBS": "1", "REPRO_OBS_SAMPLE": "1"})
        assert config.sample_every == 1

    def test_env_overrides_respected(self):
        config = ObsConfig.from_env(
            {"REPRO_OBS": "1", "REPRO_OBS_SAMPLE": "16", "REPRO_OBS_SPAN": "2"})
        assert config.sample_every == 16
        assert config.span_size == 2
