"""Engine failure paths: kills, retries, stalls, degradation, corruption.

Each scenario arms ``REPRO_FAULTS`` (the production fault sites) and
asserts the engine still returns the complete, correct matrix — the
contract ``repro chaos`` enforces end to end.
"""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.obs.metrics import process_registry
from repro.resilience.faults import reset_injector
from repro.resilience.retry import RetryPolicy
from repro.resilience.storage import quarantine_dir, read_quarantine_manifest
from repro.trace._cache import TraceCache

SPEC_KW = dict(cores=2, per_core=60, seed=0)


def small_specs(n=4):
    protocols = [ProtocolKind.MESI, ProtocolKind.PROTOZOA_SW,
                 ProtocolKind.PROTOZOA_SW_MR, ProtocolKind.PROTOZOA_MW]
    return [RunSpec(workload="histogram", protocol=protocols[i % 4],
                    seed=i // 4, cores=2, per_core=60) for i in range(n)]


@pytest.fixture()
def reference(tmp_path_factory):
    """Fault-free serial results to compare every faulted run against."""
    specs = small_specs()
    cache = ResultCache(tmp_path_factory.mktemp("ref-cache"), enabled=True)
    with ExperimentEngine(jobs=1, cache=cache) as engine:
        results = engine.run_many(specs)
    return specs, {spec.digest(): result.to_dict()
                   for spec, result in results.items()}


def arm(monkeypatch, tmp_path, faults, shared_budget=True):
    monkeypatch.setenv("REPRO_FAULTS", faults)
    if shared_budget:
        monkeypatch.setenv("REPRO_FAULTS_DIR", str(tmp_path / "budget"))
    else:
        monkeypatch.delenv("REPRO_FAULTS_DIR", raising=False)
    reset_injector()


def as_dicts(results):
    return {spec.digest(): result.to_dict() for spec, result in results.items()}


class TestWorkerCrash:
    def test_worker_kill_mid_chunk_recovers(self, monkeypatch, tmp_path,
                                            reference):
        """A worker dying mid-chunk breaks the pool; the engine rebuilds
        it and the retried sweep matches the fault-free reference."""
        specs, expected = reference
        arm(monkeypatch, tmp_path, "worker-kill:n=1")
        cache = ResultCache(tmp_path / "cache", enabled=True)
        with ExperimentEngine(jobs=2, cache=cache,
                              retry=RetryPolicy(backoff_base_s=0.01)) as engine:
            results = engine.run_many(specs)
            assert as_dicts(results) == expected
            assert engine.pool_rebuilds >= 1
            assert not engine.degraded
            counters = engine.metrics.counters()
            assert counters.get("repro_engine_worker_deaths_total", 0) >= 1

    def test_transient_exception_retries_to_success(self, monkeypatch,
                                                    tmp_path, reference):
        specs, expected = reference
        arm(monkeypatch, tmp_path, "worker-exc:n=1")
        cache = ResultCache(tmp_path / "cache", enabled=True)
        with ExperimentEngine(jobs=2, cache=cache,
                              retry=RetryPolicy(backoff_base_s=0.01)) as engine:
            results = engine.run_many(specs)
            assert as_dicts(results) == expected
            assert not engine.degraded
            counters = engine.metrics.counters()
            assert counters.get("repro_engine_retries_total", 0) >= 1
            assert any(key.startswith("repro_engine_worker_errors_total")
                       for key in counters)


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial(self, monkeypatch, tmp_path,
                                                 reference):
        """Per-process budgets (no REPRO_FAULTS_DIR) re-arm in every
        worker, so parallel rounds keep failing until the engine gives
        up on the pool — the serial fallback still completes the matrix
        because in-process execution never consults the worker sites."""
        specs, expected = reference
        arm(monkeypatch, tmp_path, "worker-exc:n=999", shared_budget=False)
        cache = ResultCache(tmp_path / "cache", enabled=True)
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001)
        with ExperimentEngine(jobs=2, cache=cache, retry=policy) as engine:
            results = engine.run_many(specs)
            assert as_dicts(results) == expected
            assert engine.degraded
            counters = engine.metrics.counters()
            assert any(key.startswith("repro_engine_degraded_total")
                       for key in counters)

    def test_degraded_engine_stays_serial(self, monkeypatch, tmp_path):
        specs = small_specs()
        arm(monkeypatch, tmp_path, "worker-exc:n=999", shared_budget=False)
        cache = ResultCache(tmp_path / "cache", enabled=True)
        policy = RetryPolicy(max_retries=0, backoff_base_s=0.001)
        with ExperimentEngine(jobs=2, cache=cache, retry=policy) as engine:
            engine.run_many(specs)
            assert engine.degraded
            assert engine.warm_pool() is None  # no pool comes back


class TestStall:
    def test_stalled_chunk_redispatches(self, monkeypatch, tmp_path,
                                        reference):
        """A chunk sleeping past the deadline counts as stalled: the
        pool is abandoned (never joined — it is asleep) and the retry
        completes once the shared budget is spent."""
        specs, expected = reference
        arm(monkeypatch, tmp_path, "task-stall:n=8:ms=2500")
        cache = ResultCache(tmp_path / "cache", enabled=True)
        policy = RetryPolicy(timeout_s=0.5, backoff_base_s=0.01)
        with ExperimentEngine(jobs=2, cache=cache, retry=policy) as engine:
            results = engine.run_many(specs)
            assert as_dicts(results) == expected
            counters = engine.metrics.counters()
            assert counters.get("repro_engine_stalls_total", 0) >= 1
            assert engine.pool_rebuilds >= 1


class TestResultCacheCorruption:
    def test_corrupt_blob_quarantined_and_rerun(self, monkeypatch, tmp_path):
        spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                       **SPEC_KW)
        cache = ResultCache(tmp_path / "cache", enabled=True)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            first = engine.run(spec)
            arm(monkeypatch, tmp_path, "cache-corrupt:n=1")
            again = engine.run(spec)
        assert again.to_dict() == first.to_dict()
        assert cache.quarantined == 1
        assert engine.executed == 2  # the corrupt read forced a rerun
        # Evidence preserved, recorded, and the entry rebuilt on disk.
        blobs = [p for p in quarantine_dir(cache.root).iterdir()
                 if p.suffix == ".json"]
        assert len(blobs) == 1
        manifest = read_quarantine_manifest(cache.root)
        assert len(manifest) == 1
        assert cache.path_for(spec).exists()
        assert cache.get(spec).to_dict() == first.to_dict()
        counters = process_registry().counters()
        assert any("result-cache-corrupt" in key for key in counters)

    def test_unreadable_bytes_take_quarantine_path(self, monkeypatch,
                                                   tmp_path):
        """Non-UTF-8 garbage (the injector's stamp) must be treated as
        corruption, not crash the reader."""
        spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                       **SPEC_KW)
        cache = ResultCache(tmp_path / "cache", enabled=True)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            engine.run(spec)
        cache.path_for(spec).write_bytes(b"\xde\xad\xbe\xef not json")
        assert cache.get(spec) is None
        assert cache.quarantined == 1

    def test_missing_blob_is_a_plain_miss(self, tmp_path):
        spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                       **SPEC_KW)
        cache = ResultCache(tmp_path / "cache", enabled=True)
        assert cache.get(spec) is None
        assert cache.quarantined == 0  # absent != corrupt


class TestTraceCacheCorruption:
    RECIPE = dict(workload="histogram", cores=2, per_core=60, seed=0)

    def test_corrupt_trace_quarantined_and_rebuilt(self, monkeypatch,
                                                   tmp_path):
        cache = TraceCache(tmp_path / "traces", enabled=True)
        good = cache.get_or_build(**self.RECIPE)
        arm(monkeypatch, tmp_path, "trace-corrupt:n=1")
        rebuilt = cache.get_or_build(**self.RECIPE)
        assert rebuilt == good
        assert cache.quarantined == 1 and cache.built == 2
        blobs = [p for p in quarantine_dir(cache.root).iterdir()
                 if p.suffix == ".bin"]
        assert len(blobs) == 1
        assert len(read_quarantine_manifest(cache.root)) == 1
        # The recovery is observable: warning counter + structured event.
        counters = process_registry().counters()
        assert any("trace-cache-corrupt" in key for key in counters)

    def test_rebuild_repairs_entry_on_disk(self, monkeypatch, tmp_path):
        cache = TraceCache(tmp_path / "traces", enabled=True)
        good = cache.get_or_build(**self.RECIPE)
        arm(monkeypatch, tmp_path, "trace-corrupt:n=1")
        cache.get_or_build(**self.RECIPE)
        reset_injector()
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert cache.get(**self.RECIPE) == good


class TestJournalIntegration:
    def test_run_many_journals_every_completion(self, tmp_path):
        from repro.resilience.journal import SweepJournal

        specs = small_specs()
        cache = ResultCache(tmp_path / "cache", enabled=True)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        with ExperimentEngine(jobs=1, cache=cache, journal=journal) as engine:
            engine.run_many(specs)
        journal.close()
        assert journal.completed() == {spec.digest() for spec in specs}

    def test_cache_hits_are_journaled_too(self, tmp_path):
        """A resumed sweep serves completed specs from the cache; the
        fresh journal must still end up covering the full grid."""
        from repro.resilience.journal import SweepJournal

        specs = small_specs()
        cache = ResultCache(tmp_path / "cache", enabled=True)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            engine.run_many(specs)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        with ExperimentEngine(jobs=1, cache=cache, journal=journal) as engine:
            engine.run_many(specs)
            assert engine.executed == 0  # all hits
        journal.close()
        assert len(journal) == len(specs)


class TestFaultFreePathUntouched:
    def test_unarmed_engine_has_no_resilience_counters(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        reset_injector()
        specs = small_specs()
        cache = ResultCache(tmp_path / "cache", enabled=True)
        with ExperimentEngine(jobs=2, cache=cache) as engine:
            engine.run_many(specs)
            assert engine.pool_rebuilds == 0 and not engine.degraded
            assert not any(key.startswith(("repro_engine_retries",
                                           "repro_engine_stalls",
                                           "repro_engine_worker"))
                           for key in engine.metrics.counters())
        assert cache.quarantined == 0
