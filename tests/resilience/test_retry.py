"""Retry-policy determinism and environment overrides."""

import pytest

from repro.resilience.retry import RetryPolicy


class TestBackoff:
    def test_deterministic_for_same_seed(self):
        a = RetryPolicy(seed=3).schedule()
        b = RetryPolicy(seed=3).schedule()
        assert a == b

    def test_seed_moves_the_jitter(self):
        schedules = {tuple(RetryPolicy(seed=s).schedule()) for s in range(16)}
        assert len(schedules) > 1

    def test_exponential_envelope_with_cap(self):
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.1,
                             backoff_cap_s=0.4)
        for attempt in range(1, 9):
            delay = policy.backoff(attempt)
            base = min(0.4, 0.1 * 2 ** (attempt - 1))
            # Jitter stays in [0.5, 1.0]: never waits longer than the base.
            assert 0.5 * base <= delay <= base

    def test_attempt_zero_is_free(self):
        assert RetryPolicy().backoff(0) == 0.0

    def test_schedule_length_tracks_max_retries(self):
        assert len(RetryPolicy(max_retries=5).schedule()) == 5


class TestFromEnv:
    def test_defaults_without_overrides(self):
        assert RetryPolicy.from_env(env={}) == RetryPolicy()

    def test_overrides(self):
        policy = RetryPolicy.from_env(env={
            "REPRO_MAX_RETRIES": "5",
            "REPRO_TASK_TIMEOUT": "2.5",
            "REPRO_BACKOFF_BASE": "0.2",
            "REPRO_RETRY_SEED": "9",
        })
        assert policy.max_retries == 5
        assert policy.timeout_s == 2.5
        assert policy.backoff_base_s == 0.2
        assert policy.seed == 9

    def test_zero_timeout_means_wait_forever(self):
        assert RetryPolicy.from_env(env={"REPRO_TASK_TIMEOUT": "0"}).timeout_s is None

    def test_negative_retries_clamped(self):
        assert RetryPolicy.from_env(env={"REPRO_MAX_RETRIES": "-3"}).max_retries == 0
