"""Durable writes and quarantine: crash-atomicity and never-delete."""

import json
import os

import pytest

from repro.resilience.storage import (
    MANIFEST_NAME,
    durable_replace,
    quarantine_dir,
    quarantine_file,
    read_quarantine_manifest,
)


class TestDurableReplace:
    def test_text_write(self, tmp_path):
        path = tmp_path / "a" / "entry.json"
        durable_replace(path, '{"x": 1}')
        assert json.loads(path.read_text()) == {"x": 1}

    def test_binary_write(self, tmp_path):
        path = tmp_path / "entry.bin"
        durable_replace(path, b"\x00\x01\x02", binary=True)
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_writer_callable(self, tmp_path):
        path = tmp_path / "entry.bin"
        durable_replace(path, lambda fh: fh.write(b"streamed"), binary=True)
        assert path.read_bytes() == b"streamed"

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "entry.json"
        durable_replace(path, "old")
        durable_replace(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        durable_replace(tmp_path / "entry.json", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["entry.json"]

    def test_failed_writer_cleans_temp_and_keeps_old(self, tmp_path):
        path = tmp_path / "entry.bin"
        durable_replace(path, b"good", binary=True)

        def exploding_writer(fh):
            fh.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            durable_replace(path, exploding_writer, binary=True)
        assert path.read_bytes() == b"good"
        assert [p.name for p in tmp_path.iterdir()] == ["entry.bin"]


class TestQuarantine:
    def test_moves_blob_and_records_manifest(self, tmp_path):
        root = tmp_path / "cache"
        blob = root / "ab" / "abcd.json"
        blob.parent.mkdir(parents=True)
        blob.write_bytes(b"corrupt!")
        target = quarantine_file(root, blob, "does not parse")
        assert target == quarantine_dir(root) / "abcd.json"
        assert target.read_bytes() == b"corrupt!"  # evidence preserved
        assert not blob.exists()
        entries = read_quarantine_manifest(root)
        assert len(entries) == 1
        assert entries[0]["file"] == "abcd.json"
        assert entries[0]["reason"] == "does not parse"
        assert entries[0]["from"] == str(blob)

    def test_name_collisions_get_suffixes(self, tmp_path):
        root = tmp_path / "cache"
        for expected in ("abcd.json", "abcd.json.1", "abcd.json.2"):
            blob = root / "ab" / "abcd.json"
            blob.parent.mkdir(parents=True, exist_ok=True)
            blob.write_bytes(b"bad")
            target = quarantine_file(root, blob, "again")
            assert target.name == expected
        assert len(read_quarantine_manifest(root)) == 3

    def test_missing_blob_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path, tmp_path / "absent.json", "?") is None

    def test_manifest_tolerates_torn_final_line(self, tmp_path):
        root = tmp_path / "cache"
        blob = root / "ab" / "abcd.json"
        blob.parent.mkdir(parents=True)
        blob.write_bytes(b"bad")
        quarantine_file(root, blob, "reason")
        manifest = quarantine_dir(root) / MANIFEST_NAME
        with open(manifest, "a") as fh:
            fh.write('{"file": "torn')  # killed mid-append
        entries = read_quarantine_manifest(root)
        assert len(entries) == 1

    def test_no_manifest_means_empty(self, tmp_path):
        assert read_quarantine_manifest(tmp_path / "nowhere") == []
