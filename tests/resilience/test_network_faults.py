"""Network fault sites end to end: flapping coordinators, killed workers.

Three layers:

* the injector's ``on_store_op`` contract (which ops count as arrivals);
* ``repro chaos --store`` against a live in-process service with the
  network sites armed — the report must byte-reproduce;
* the distributed takeover drill: a SIGKILL'd leaseholder whose final
  journal flush was swallowed by a ``store-put-stall`` must be taken
  over within ``REPRO_LEASE_TTL`` with no duplicated or dropped cells.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.resilience.chaos import DEFAULT_FAULTS, render, run_chaos
from repro.resilience.faults import (
    NETWORK_FAULT_SITES,
    FaultPlan,
    InjectedStoreFault,
    get_injector,
    reset_injector,
)

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SUMMARY = re.compile(
    r"sweep shared via .*: (\d+) run\(s\) computed here, "
    r"(\d+) absorbed from other workers, (\d+) lease takeover\(s\)")


class TestOnStoreOp:
    def test_get_error_counts_only_fetch_arrivals(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store-get-error:n=1")
        reset_injector()
        injector = get_injector()
        injector.on_store_op("put")   # not a fetch: no arrival, no fire
        injector.on_store_op("stat")
        with pytest.raises(InjectedStoreFault):
            injector.on_store_op("get")
        injector.on_store_op("get")   # budget spent: clean from here on

    def test_put_stall_sleeps_for_ms(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store-put-stall:n=1:ms=80")
        reset_injector()
        start = time.monotonic()
        get_injector().on_store_op("put")
        assert time.monotonic() - start >= 0.08
        start = time.monotonic()
        get_injector().on_store_op("put")  # budget spent: no sleep
        assert time.monotonic() - start < 0.05

    def test_conn_refused_hits_every_op(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store-conn-refused:n=2")
        reset_injector()
        injector = get_injector()
        for op in ("stat", "rpc"):
            with pytest.raises(InjectedStoreFault):
                injector.on_store_op(op)
        injector.on_store_op("list")  # budget spent

    def test_injected_fault_is_an_oserror(self):
        # It must travel the exact retry path a real socket error takes.
        assert issubclass(InjectedStoreFault, OSError)

    def test_default_chaos_plan_arms_network_sites(self):
        plan = FaultPlan.parse(DEFAULT_FAULTS)
        assert set(NETWORK_FAULT_SITES) <= set(plan.sites)


@pytest.mark.slow
class TestChaosOverFlappingStore:
    def test_report_byte_reproduces_through_network_faults(self, tmp_path):
        # A real coordinator in its own process: the faults run_chaos arms
        # in *this* process fire client-side only, exactly like a worker
        # whose network to a healthy coordinator is flapping.
        serve_env = dict(os.environ, PYTHONPATH=SRC_DIR,
                         REPRO_CACHE_DIR=str(tmp_path / "service-cache"),
                         REPRO_TRACE_CACHE_DIR=str(tmp_path / "service-tr"))
        for name in ("REPRO_FAULTS", "REPRO_FAULTS_DIR", "REPRO_STORE",
                     "REPRO_OBS"):
            serve_env.pop(name, None)
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(tmp_path / "state")],
            env=serve_env, text=True, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT)
        try:
            banner = server.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match is not None, banner
            url = match.group(0)
            report = run_chaos(
                faults=("store-get-error:n=2:every=3;"
                        "store-put-stall:n=1:ms=20;"
                        "store-conn-refused:n=1:every=5"),
                workloads=("histogram",), cores=2, per_core=60, jobs=2,
                store=url)
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
        assert report["identical"], "matrix drifted under network faults"
        assert report["ok"], report["quarantine_leaks"]
        assert report["store"] == url
        fired = sum(report["fired"].get(site, 0)
                    for site in NETWORK_FAULT_SITES)
        assert fired >= 1, report["fired"]
        assert f"store:       {url}" in render(report)


def _worker_env(tmp_path):
    env = dict(os.environ, PYTHONPATH=SRC_DIR,
               REPRO_WORKLOADS="histogram",
               REPRO_TRACE_CACHE_DIR=str(tmp_path / "traces"))
    for name in ("REPRO_FAULTS", "REPRO_FAULTS_DIR", "REPRO_STORE",
                 "REPRO_OBS", "REPRO_LEASE_TTL"):
        env.pop(name, None)
    return env


def _report_argv(out, journal=None, store=None):
    argv = [sys.executable, "-c",
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "report", "--out", str(out),
            "--scale", "60", "--cores", "2", "--jobs", "1"]
    if journal is not None:
        argv += ["--journal", str(journal)]
    if store is not None:
        argv += ["--store", store]
    return argv


@pytest.mark.slow
class TestKilledLeaseholderTakeover:
    def test_lost_final_flush_is_taken_over(self, tmp_path):
        # The single-process reference every survivor must reproduce.
        env = _worker_env(tmp_path)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "ref-cache")
        ref_out = tmp_path / "ref.txt"
        done = subprocess.run(_report_argv(ref_out), env=env,
                              capture_output=True, text=True, timeout=600)
        assert done.returncode == 0, done.stderr
        reference = ref_out.read_bytes()
        cells = len(list((tmp_path / "ref-cache").rglob("*.json")))
        assert cells > 0

        serve_env = dict(_worker_env(tmp_path),
                         REPRO_CACHE_DIR=str(tmp_path / "shared"),
                         REPRO_TRACE_CACHE_DIR=str(tmp_path / "shared-tr"))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(tmp_path / "state")],
            env=serve_env, text=True, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT)
        try:
            banner = server.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match is not None, banner
            url = match.group(0)

            # Worker 1: one put will stall "forever" (the seeded schedule
            # skips the first put arrival, so by firing time the worker
            # holds a lease whose journal line is not yet written — the
            # flush is lost when we SIGKILL it mid-stall).
            journal = tmp_path / "journal.jsonl"
            budget = tmp_path / "budget"
            env1 = dict(_worker_env(tmp_path),
                        REPRO_FAULTS="store-put-stall:n=1:ms=600000:every=2",
                        REPRO_FAULTS_DIR=str(budget))
            worker1 = subprocess.Popen(
                _report_argv(tmp_path / "w1.txt", journal=journal,
                             store=url),
                env=env1, text=True, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE)
            token = budget / "store-put-stall.0"
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline and not token.exists():
                assert worker1.poll() is None, worker1.communicate()[1]
                time.sleep(0.05)
            assert token.exists(), "the put stall never fired"
            time.sleep(0.3)  # let the stalling put settle into its sleep

            lease_dir = Path(str(journal) + ".leases")
            leases = list(lease_dir.glob("*.lease"))
            os.kill(worker1.pid, signal.SIGKILL)
            worker1.wait(timeout=30)
            assert leases, "worker 1 held no lease at kill time"
            completed_before = (
                len(journal.read_text().splitlines())
                if journal.exists() else 0)

            # Worker 2: short TTL, no faults — it must take over the dead
            # worker's lease and finish the sweep.
            time.sleep(1.2)  # let the orphaned lease age past the TTL
            env2 = dict(_worker_env(tmp_path), REPRO_LEASE_TTL="1")
            done = subprocess.run(
                _report_argv(tmp_path / "w2.txt", journal=journal,
                             store=url),
                env=env2, capture_output=True, text=True, timeout=600)
            assert done.returncode == 0, done.stderr
            match = SUMMARY.search(done.stderr)
            assert match is not None, done.stderr
            executed, absorbed, takeovers = (
                int(group) for group in match.groups())
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()

        # Taken over within the TTL...
        assert takeovers >= 1
        # ...byte-identical to the single-process reference...
        assert (tmp_path / "w2.txt").read_bytes() == reference
        # ...no cell dropped or computed twice: worker 2 re-ran exactly
        # the cells the dead worker never journaled, absorbed the rest.
        assert executed == cells - completed_before
        assert absorbed == completed_before
        shared = len(list((tmp_path / "shared").rglob("*.json")))
        assert shared == cells
        # Every journaled digest is unique (a duplicate line would mean
        # two workers both published-and-journaled the same cell).
        digests = [json.loads(line)["digest"]
                   for line in journal.read_text().splitlines()]
        assert len(digests) == len(set(digests)) == cells
