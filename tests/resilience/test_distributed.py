"""Multi-worker sweeps: N ``repro report --journal`` processes, one store.

The guarantee docs/distributed.md makes: workers pointed at the same
journal and store divide the matrix between them (leases), absorb each
other's completions (journal refresh + shared blobs), and the merged
report is byte-identical to the single-process run — for every protocol,
since the report matrix sweeps all four.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SUMMARY = re.compile(
    r"sweep shared via .*: (\d+) run\(s\) computed here, "
    r"(\d+) absorbed from other workers, (\d+) lease takeover\(s\)")


def _worker_env(tmp_path):
    env = dict(os.environ, PYTHONPATH=SRC_DIR,
               REPRO_WORKLOADS="histogram",
               REPRO_TRACE_CACHE_DIR=str(tmp_path / "traces"))
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_STORE", None)
    env.pop("REPRO_OBS", None)
    return env


def _report_argv(out, journal=None, store=None):
    argv = [sys.executable, "-c",
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "report", "--out", str(out),
            "--scale", "60", "--cores", "2", "--jobs", "1"]
    if journal is not None:
        argv += ["--journal", str(journal)]
    if store is not None:
        argv += ["--store", store]
    return argv


def _run_reference(tmp_path):
    """The single-process report every multi-worker run must reproduce."""
    env = _worker_env(tmp_path)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "ref-cache")
    out = tmp_path / "ref.txt"
    done = subprocess.run(_report_argv(out), env=env, capture_output=True,
                          text=True, timeout=600)
    assert done.returncode == 0, done.stderr
    return out.read_bytes()


def _run_two_workers(tmp_path, store_url):
    env = _worker_env(tmp_path)
    journal = tmp_path / "journal.jsonl"
    outs = [tmp_path / "worker1.txt", tmp_path / "worker2.txt"]
    workers = [subprocess.Popen(_report_argv(out, journal=journal,
                                             store=store_url),
                                env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
               for out in outs]
    summaries = []
    for worker in workers:
        _, stderr = worker.communicate(timeout=600)
        assert worker.returncode == 0, stderr
        match = SUMMARY.search(stderr)
        assert match is not None, stderr
        summaries.append(tuple(int(group) for group in match.groups()))
    return [out.read_bytes() for out in outs], summaries


@pytest.mark.slow
class TestTwoWorkerReport:
    def test_shared_fs_store_is_byte_identical(self, tmp_path):
        reference = _run_reference(tmp_path)
        assert b"Table 1" in reference and b"Figure 15" in reference
        store_url = f"file://{tmp_path / 'shared'}"
        (first, second), summaries = _run_two_workers(tmp_path, store_url)
        assert first == reference
        assert second == reference
        executed = sum(s[0] for s in summaries)
        takeovers = sum(s[2] for s in summaries)
        # Every cell simulated exactly once across the fleet (duplicate
        # work would mean the leases failed; a takeover would mean a
        # worker stalled past the 300 s TTL).
        assert takeovers == 0
        reference_executed = len(  # one blob per simulated cell
            list((tmp_path / "shared").rglob("*.json")))
        assert executed == reference_executed

    def test_worker_joining_late_absorbs_everything(self, tmp_path):
        """A worker arriving after the sweep finished recomputes nothing."""
        reference = _run_reference(tmp_path)
        store_url = f"file://{tmp_path / 'shared'}"
        env = _worker_env(tmp_path)
        journal = tmp_path / "journal.jsonl"
        first = subprocess.run(
            _report_argv(tmp_path / "first.txt", journal=journal,
                         store=store_url),
            env=env, capture_output=True, text=True, timeout=600)
        assert first.returncode == 0, first.stderr
        late = subprocess.run(
            _report_argv(tmp_path / "late.txt", journal=journal,
                         store=store_url),
            env=env, capture_output=True, text=True, timeout=600)
        assert late.returncode == 0, late.stderr
        executed, absorbed, _ = (
            int(g) for g in SUMMARY.search(late.stderr).groups())
        assert executed == 0
        assert absorbed > 0
        assert (tmp_path / "late.txt").read_bytes() == reference
