"""``repro doctor``: integrity audit verdicts and --fix behaviour."""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.resilience.doctor import (
    check_result_cache,
    check_trace_cache,
    run_doctor,
)
from repro.resilience.storage import quarantine_dir
from repro.trace._cache import TraceCache

SPEC = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
               cores=2, per_core=60, seed=0)
RECIPE = dict(workload="histogram", cores=2, per_core=60, seed=0)


@pytest.fixture()
def result_root(tmp_path):
    cache = ResultCache(tmp_path / "results", enabled=True)
    with ExperimentEngine(jobs=1, cache=cache) as engine:
        engine.run(SPEC)
    return cache.root


@pytest.fixture()
def trace_root(tmp_path):
    cache = TraceCache(tmp_path / "traces", enabled=True)
    cache.get_or_build(**RECIPE)
    return cache.root


def verdict(checks):
    return all(check.ok for check in checks)


class TestResultCacheAudit:
    def test_healthy_cache_passes(self, result_root):
        assert verdict(check_result_cache(result_root))

    def test_absent_cache_passes(self, tmp_path):
        assert verdict(check_result_cache(tmp_path / "nowhere"))

    def test_corrupt_entry_fails(self, result_root):
        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"\xde\xad not json")
        checks = check_result_cache(result_root)
        assert not verdict(checks)

    def test_fix_quarantines_corrupt_entry(self, result_root):
        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"\xde\xad not json")
        assert verdict(check_result_cache(result_root, fix=True))
        assert not blob.exists()
        assert (quarantine_dir(result_root) / blob.name).exists()
        # A re-audit of the repaired cache is clean (quarantine listed).
        assert verdict(check_result_cache(result_root))

    def test_misfiled_entry_fails(self, result_root):
        blob = next(result_root.glob("??/*.json"))
        wrong = result_root / "zz"
        wrong.mkdir()
        blob.rename(wrong / blob.name)
        assert not verdict(check_result_cache(result_root))

    def test_orphan_tmp_file_fails_and_fix_removes(self, result_root):
        orphan = result_root / "ab"
        orphan.mkdir(exist_ok=True)
        orphan = orphan / "tmpXYZ.tmp"
        orphan.write_bytes(b"half-written")
        assert not verdict(check_result_cache(result_root))
        assert verdict(check_result_cache(result_root, fix=True))
        assert not orphan.exists()

    def test_excluded_subtree_not_scanned(self, result_root):
        nested = result_root / "traces"
        nested.mkdir()
        (nested / "leftover.tmp").write_bytes(b"x")
        assert not verdict(check_result_cache(result_root))
        assert verdict(check_result_cache(result_root, exclude=nested))


class TestTraceCacheAudit:
    def test_healthy_cache_passes(self, trace_root):
        assert verdict(check_trace_cache(trace_root))

    def test_corrupt_trace_fails(self, trace_root):
        blob = next(trace_root.glob("??/*.bin"))
        blob.write_bytes(b"\xde\xad\xbe\xef")
        assert not verdict(check_trace_cache(trace_root))

    def test_truncated_trace_fails(self, trace_root):
        blob = next(trace_root.glob("??/*.bin"))
        blob.write_bytes(blob.read_bytes()[:10])
        assert not verdict(check_trace_cache(trace_root))

    def test_fix_quarantines_corrupt_trace(self, trace_root):
        blob = next(trace_root.glob("??/*.bin"))
        blob.write_bytes(b"\xde\xad\xbe\xef")
        assert verdict(check_trace_cache(trace_root, fix=True))
        assert not blob.exists()
        assert (quarantine_dir(trace_root) / blob.name).exists()


class TestRunDoctor:
    def test_full_report_renders(self, result_root, trace_root):
        report = run_doctor(result_root, trace_root)
        assert report.ok
        rendered = report.render()
        assert "[PASS]" in rendered and "[FAIL]" not in rendered
        assert "all checks passed" in rendered

    def test_problem_flips_verdict_and_warns(self, result_root, trace_root):
        from repro.obs.metrics import process_registry

        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"\xde\xad")
        report = run_doctor(result_root, trace_root)
        assert not report.ok
        assert "PROBLEMS FOUND" in report.render()
        assert any("doctor-problems" in key
                   for key in process_registry().counters())

    def test_nested_default_layout_no_double_report(self, result_root):
        """The default trace cache nests under the result root; its temp
        files must be attributed to the trace audit only."""
        nested_traces = result_root / "traces"
        cache = TraceCache(nested_traces, enabled=True)
        cache.get_or_build(**RECIPE)
        (nested_traces / "leftover.tmp").write_bytes(b"x")
        report = run_doctor(result_root, nested_traces)
        failing = [check.name for check in report.checks if not check.ok]
        assert failing == [f"trace cache {nested_traces}: orphaned temp files"]


class TestPrune:
    """--prune-older-than: manifest-logged GC that never touches quarantine."""

    def _age(self, path, days):
        import os
        import time

        old = time.time() - days * 86400
        os.utime(path, (old, old))

    def test_old_entry_evicted_and_manifest_logged(self, result_root):
        from repro.resilience.doctor import prune_cache, read_gc_manifest

        blob = next(result_root.glob("??/*.json"))
        self._age(blob, days=10)
        check = prune_cache(result_root, ".json", 7.0, "result cache")
        assert check.ok
        assert not blob.exists()
        (entry,) = read_gc_manifest(result_root)
        assert entry["file"] == f"{blob.parent.name}/{blob.name}"
        assert entry["age_days"] > 7
        # The emptied fan-out directory is gone too.
        assert not blob.parent.exists()

    def test_fresh_entry_kept(self, result_root):
        from repro.resilience.doctor import prune_cache, read_gc_manifest

        blob = next(result_root.glob("??/*.json"))
        check = prune_cache(result_root, ".json", 7.0, "result cache")
        assert check.ok
        assert blob.exists()
        assert read_gc_manifest(result_root) == []

    def test_quarantine_never_pruned(self, result_root):
        from repro.resilience.doctor import prune_cache
        from repro.resilience.storage import quarantine_file

        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"junk")
        quarantined = quarantine_file(result_root, blob, "test damage")
        self._age(quarantined, days=100)
        prune_cache(result_root, ".json", 7.0, "result cache")
        assert quarantined.exists()

    def test_absent_cache_is_fine(self, tmp_path):
        from repro.resilience.doctor import prune_cache

        check = prune_cache(tmp_path / "nowhere", ".json", 7.0, "result cache")
        assert check.ok

    def test_run_doctor_prunes_then_audits_clean(self, result_root,
                                                 trace_root):
        blob = next(result_root.glob("??/*.json"))
        self._age(blob, days=30)
        report = run_doctor(result_root, trace_root,
                            prune_older_than_days=7.0)
        assert report.ok
        assert not blob.exists()
        rendered = report.render()
        assert "GC (older than 7 day(s))" in rendered
        assert "1 entr(ies) evicted" in rendered

    def test_run_doctor_without_flag_never_prunes(self, result_root,
                                                  trace_root):
        blob = next(result_root.glob("??/*.json"))
        self._age(blob, days=3650)
        report = run_doctor(result_root, trace_root)
        assert report.ok
        assert blob.exists()
        assert "GC" not in report.render()

    def test_gc_manifest_never_audited_as_orphan(self, result_root):
        from repro.resilience.doctor import prune_cache

        blob = next(result_root.glob("??/*.json"))
        self._age(blob, days=10)
        prune_cache(result_root, ".json", 7.0, "result cache")
        assert verdict(check_result_cache(result_root))
