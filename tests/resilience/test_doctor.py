"""``repro doctor``: integrity audit verdicts and --fix behaviour."""

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.resilience.doctor import (
    check_result_cache,
    check_trace_cache,
    run_doctor,
)
from repro.resilience.storage import quarantine_dir
from repro.trace._cache import TraceCache

SPEC = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
               cores=2, per_core=60, seed=0)
RECIPE = dict(workload="histogram", cores=2, per_core=60, seed=0)


@pytest.fixture()
def result_root(tmp_path):
    cache = ResultCache(tmp_path / "results", enabled=True)
    with ExperimentEngine(jobs=1, cache=cache) as engine:
        engine.run(SPEC)
    return cache.root


@pytest.fixture()
def trace_root(tmp_path):
    cache = TraceCache(tmp_path / "traces", enabled=True)
    cache.get_or_build(**RECIPE)
    return cache.root


def verdict(checks):
    return all(check.ok for check in checks)


class TestResultCacheAudit:
    def test_healthy_cache_passes(self, result_root):
        assert verdict(check_result_cache(result_root))

    def test_absent_cache_passes(self, tmp_path):
        assert verdict(check_result_cache(tmp_path / "nowhere"))

    def test_corrupt_entry_fails(self, result_root):
        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"\xde\xad not json")
        checks = check_result_cache(result_root)
        assert not verdict(checks)

    def test_fix_quarantines_corrupt_entry(self, result_root):
        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"\xde\xad not json")
        assert verdict(check_result_cache(result_root, fix=True))
        assert not blob.exists()
        assert (quarantine_dir(result_root) / blob.name).exists()
        # A re-audit of the repaired cache is clean (quarantine listed).
        assert verdict(check_result_cache(result_root))

    def test_misfiled_entry_fails(self, result_root):
        blob = next(result_root.glob("??/*.json"))
        wrong = result_root / "zz"
        wrong.mkdir()
        blob.rename(wrong / blob.name)
        assert not verdict(check_result_cache(result_root))

    def test_orphan_tmp_file_fails_and_fix_removes(self, result_root):
        orphan = result_root / "ab"
        orphan.mkdir(exist_ok=True)
        orphan = orphan / "tmpXYZ.tmp"
        orphan.write_bytes(b"half-written")
        assert not verdict(check_result_cache(result_root))
        assert verdict(check_result_cache(result_root, fix=True))
        assert not orphan.exists()

    def test_excluded_subtree_not_scanned(self, result_root):
        nested = result_root / "traces"
        nested.mkdir()
        (nested / "leftover.tmp").write_bytes(b"x")
        assert not verdict(check_result_cache(result_root))
        assert verdict(check_result_cache(result_root, exclude=nested))


class TestTraceCacheAudit:
    def test_healthy_cache_passes(self, trace_root):
        assert verdict(check_trace_cache(trace_root))

    def test_corrupt_trace_fails(self, trace_root):
        blob = next(trace_root.glob("??/*.bin"))
        blob.write_bytes(b"\xde\xad\xbe\xef")
        assert not verdict(check_trace_cache(trace_root))

    def test_truncated_trace_fails(self, trace_root):
        blob = next(trace_root.glob("??/*.bin"))
        blob.write_bytes(blob.read_bytes()[:10])
        assert not verdict(check_trace_cache(trace_root))

    def test_fix_quarantines_corrupt_trace(self, trace_root):
        blob = next(trace_root.glob("??/*.bin"))
        blob.write_bytes(b"\xde\xad\xbe\xef")
        assert verdict(check_trace_cache(trace_root, fix=True))
        assert not blob.exists()
        assert (quarantine_dir(trace_root) / blob.name).exists()


class TestRunDoctor:
    def test_full_report_renders(self, result_root, trace_root):
        report = run_doctor(result_root, trace_root)
        assert report.ok
        rendered = report.render()
        assert "[PASS]" in rendered and "[FAIL]" not in rendered
        assert "all checks passed" in rendered

    def test_problem_flips_verdict_and_warns(self, result_root, trace_root):
        from repro.obs.metrics import process_registry

        blob = next(result_root.glob("??/*.json"))
        blob.write_bytes(b"\xde\xad")
        report = run_doctor(result_root, trace_root)
        assert not report.ok
        assert "PROBLEMS FOUND" in report.render()
        assert any("doctor-problems" in key
                   for key in process_registry().counters())

    def test_nested_default_layout_no_double_report(self, result_root):
        """The default trace cache nests under the result root; its temp
        files must be attributed to the trace audit only."""
        nested_traces = result_root / "traces"
        cache = TraceCache(nested_traces, enabled=True)
        cache.get_or_build(**RECIPE)
        (nested_traces / "leftover.tmp").write_bytes(b"x")
        report = run_doctor(result_root, nested_traces)
        failing = [check.name for check in report.checks if not check.ok]
        assert failing == [f"trace cache {nested_traces}: orphaned temp files"]
