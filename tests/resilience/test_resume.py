"""Crash-resume: SIGKILL a journaled sweep, resume, replay only the rest."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.resilience.journal import SweepJournal

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SPECS = [RunSpec(workload="histogram", protocol=protocol, cores=2,
                 per_core=80, seed=seed)
         for seed in (0, 1, 2)
         for protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]

CHILD = textwrap.dedent("""\
    import time
    from repro.common.params import ProtocolKind
    from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
    from repro.resilience.journal import SweepJournal

    specs = [RunSpec(workload="histogram", protocol=protocol, cores=2,
                     per_core=80, seed=seed)
             for seed in (0, 1, 2)
             for protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_MW)]
    journal = SweepJournal({journal!r})
    engine = ExperimentEngine(jobs=1,
                              cache=ResultCache({cache!r}, enabled=True),
                              journal=journal)
    for spec in specs:
        engine.run(spec)
        time.sleep(0.15)  # window for the parent's SIGKILL
    journal.close()
""")


@pytest.mark.slow
class TestSigkillResume:
    def test_resume_replays_only_uncompleted_specs(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        cache_root = tmp_path / "cache"
        script = CHILD.format(journal=str(journal_path),
                              cache=str(cache_root))
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        env.pop("REPRO_FAULTS", None)
        child = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            # Wait for some — but not all — completions, then SIGKILL.
            deadline = time.time() + 60
            while time.time() < deadline:
                lines = (journal_path.read_text().splitlines()
                         if journal_path.exists() else [])
                if len(lines) >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("child never journaled a completion")
            child.kill()  # SIGKILL: no flush, no atexit, no cleanup
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGKILL

        # Resume: the journal survived with >= the observed completions.
        journal = SweepJournal(journal_path)
        resumed = journal.resumed
        assert 1 <= resumed < len(SPECS)
        with ExperimentEngine(jobs=1,
                              cache=ResultCache(cache_root, enabled=True),
                              journal=journal) as engine:
            results = engine.run_many(SPECS)
            # Journaled completions come back as cache hits; at most the
            # one spec whose journal append the kill raced re-runs.
            assert engine.executed <= len(SPECS) - resumed
            assert engine.cache.hits >= resumed
        journal.close()
        assert len(results) == len(SPECS)
        assert journal.completed() == {spec.digest() for spec in SPECS}

        # The resumed matrix is identical to a from-scratch reference.
        with ExperimentEngine(jobs=1,
                              cache=ResultCache(tmp_path / "ref",
                                                enabled=True)) as engine:
            reference = engine.run_many(SPECS)
        assert ({s.digest(): r.to_dict() for s, r in results.items()} ==
                {s.digest(): r.to_dict() for s, r in reference.items()})
