"""Sweep-journal durability, idempotence, and torn-line tolerance."""

import json

from repro.resilience.journal import SweepJournal


class TestRecord:
    def test_record_appends_jsonl(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            assert journal.record("d1", {"workload": "kmeans"})
            assert journal.record("d2")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"digest": "d1",
                                        "spec": {"workload": "kmeans"}}
        assert json.loads(lines[1]) == {"digest": "d2"}

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            assert journal.record("d1")
            assert not journal.record("d1")
            assert journal.recorded == 1
        assert len(path.read_text().splitlines()) == 1

    def test_membership_and_len(self, tmp_path):
        with SweepJournal(tmp_path / "j.jsonl") as journal:
            journal.record("d1")
            assert "d1" in journal and "d2" not in journal
            assert len(journal) == 1
            assert journal.completed() == frozenset({"d1"})


class TestResume:
    def test_reopen_resumes_completed_set(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.record("d1")
            journal.record("d2")
        resumed = SweepJournal(path)
        assert resumed.resumed == 2 and resumed.recorded == 0
        assert not resumed.record("d1")  # already journaled: no duplicate
        assert resumed.record("d3")
        resumed.close()
        assert len(path.read_text().splitlines()) == 3

    def test_torn_final_line_tolerated(self, tmp_path):
        """A SIGKILL mid-append leaves a partial last line; the loader
        must keep every complete record and drop only the torn tail."""
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.record("d1")
            journal.record("d2")
        with open(path, "a") as fh:
            fh.write('{"digest": "d3"')  # no close brace, no newline
        resumed = SweepJournal(path)
        assert resumed.completed() == frozenset({"d1", "d2"})
        # The torn digest replays and re-records cleanly.
        assert resumed.record("d3")
        resumed.close()

    def test_missing_file_is_empty_journal(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        assert len(journal) == 0 and journal.resumed == 0
        journal.close()

    def test_record_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.record("d1")
        assert path.exists()


class TestRefresh:
    """Incremental reads of teammates' appends (the multi-worker path)."""

    def test_refresh_picks_up_other_writers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        mine = SweepJournal(path)
        theirs = SweepJournal(path)
        theirs.record("d1")
        theirs.record("d2")
        assert "d1" not in mine
        assert mine.refresh() == 2
        assert mine.completed() == frozenset({"d1", "d2"})
        assert mine.refresh() == 0  # nothing new: no re-reads
        mine.close()
        theirs.close()

    def test_refresh_leaves_torn_tail_for_next_pass(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        mine = SweepJournal(path)
        with open(path, "a") as fh:
            fh.write('{"digest": "d1"}\n{"digest": "d2"')  # torn mid-append
        assert mine.refresh() == 1
        assert mine.completed() == frozenset({"d1"})
        with open(path, "a") as fh:
            fh.write('}\n')  # the writer finishes the line
        assert mine.refresh() == 1
        assert mine.completed() == frozenset({"d1", "d2"})
        mine.close()

    def test_own_records_never_count_as_fresh(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.record("d1")
        assert journal.refresh() == 0
        assert len(journal) == 1
        journal.close()
