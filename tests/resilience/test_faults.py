"""Fault-plan grammar, seeded schedules, and budget semantics."""

import os

import pytest

from repro.resilience.faults import (
    FAULT_SITES,
    MODE_TRUNCATE,
    SITE_CACHE_CORRUPT,
    SITE_TASK_STALL,
    SITE_WORKER_EXC,
    SITE_WORKER_KILL,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    corrupt_file,
    get_injector,
    reset_injector,
)


class TestGrammar:
    def test_single_site_defaults(self):
        plan = FaultPlan.parse("worker-kill")
        spec = plan.sites[SITE_WORKER_KILL]
        assert spec == FaultSpec(SITE_WORKER_KILL)
        assert spec.count == 1 and spec.every == 1

    def test_full_clause(self):
        plan = FaultPlan.parse(
            "seed=7;worker-exc:n=3:every=2;task-stall:ms=250;"
            "cache-corrupt:mode=1")
        assert plan.seed == 7
        assert plan.sites[SITE_WORKER_EXC].count == 3
        assert plan.sites[SITE_WORKER_EXC].every == 2
        assert plan.sites[SITE_TASK_STALL].ms == 250
        assert plan.sites[SITE_CACHE_CORRUPT].mode == MODE_TRUNCATE

    def test_round_trip_through_env_form(self):
        text = "seed=3;cache-corrupt:n=2;worker-exc:n=2:every=2;worker-kill"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.to_env()) == plan

    def test_to_env_is_canonical(self):
        a = FaultPlan.parse("worker-kill;worker-exc:n=2")
        b = FaultPlan.parse("worker-exc:n=2;worker-kill")
        assert a.to_env() == b.to_env()

    def test_empty_clauses_tolerated(self):
        plan = FaultPlan.parse(";;worker-kill;;")
        assert set(plan.sites) == {SITE_WORKER_KILL}

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("disk-on-fire")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("worker-kill:frequency=2")

    def test_non_integer_parameter_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("worker-kill:n=lots")

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("seed=x")

    def test_every_documented_site_parses(self):
        for site in FAULT_SITES:
            assert site in FaultPlan.parse(site).sites

    def test_with_seed(self):
        assert FaultPlan.parse("worker-kill").with_seed(9).seed == 9


class TestSchedule:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan.parse("seed=5;worker-exc:n=99:every=3")
        a = FaultInjector(plan).schedule(SITE_WORKER_EXC, 30)
        b = FaultInjector(plan).schedule(SITE_WORKER_EXC, 30)
        assert a == b and len(a) == 10

    def test_schedule_is_phase_shifted_by_seed(self):
        # Over many seeds every phase of a 5-cycle must appear: the seed
        # genuinely moves *which* arrivals fire.
        offsets = set()
        for seed in range(40):
            plan = FaultPlan.parse(f"seed={seed};worker-exc:n=99:every=5")
            offsets.add(FaultInjector(plan).schedule(SITE_WORKER_EXC, 5)[0])
        assert offsets == {0, 1, 2, 3, 4}

    def test_should_fire_follows_schedule_and_budget(self):
        plan = FaultPlan.parse("seed=1;worker-exc:n=2:every=3")
        injector = FaultInjector(plan)
        fired = [i for i in range(12) if injector.should_fire(SITE_WORKER_EXC)]
        assert fired == list(injector.schedule(SITE_WORKER_EXC, 12))[:2]
        assert injector.tokens_claimed(SITE_WORKER_EXC) == 2

    def test_unlisted_site_never_fires(self):
        injector = FaultInjector(FaultPlan.parse("worker-kill"))
        assert not any(injector.should_fire(SITE_WORKER_EXC)
                       for _ in range(10))


class TestBudgets:
    def test_shared_budget_dir_is_claimed_once_across_injectors(self, tmp_path):
        """Two injectors sharing REPRO_FAULTS_DIR model a worker and its
        replacement: the budget must not be re-fired by the new process."""
        plan = FaultPlan.parse("worker-kill:n=1")
        first = FaultInjector(plan, budget_dir=tmp_path)
        second = FaultInjector(plan, budget_dir=tmp_path)
        assert first.should_fire(SITE_WORKER_KILL)
        assert not second.should_fire(SITE_WORKER_KILL)
        assert first.tokens_claimed(SITE_WORKER_KILL) == 1
        assert second.tokens_claimed(SITE_WORKER_KILL) == 1

    def test_shared_budget_tokens_are_files(self, tmp_path):
        plan = FaultPlan.parse("worker-exc:n=2")
        injector = FaultInjector(plan, budget_dir=tmp_path)
        assert injector.should_fire(SITE_WORKER_EXC)
        assert injector.should_fire(SITE_WORKER_EXC)
        assert not injector.should_fire(SITE_WORKER_EXC)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "worker-exc.0", "worker-exc.1"]

    def test_local_budget_without_dir(self):
        injector = FaultInjector(FaultPlan.parse("worker-exc:n=2"))
        fired = sum(injector.should_fire(SITE_WORKER_EXC) for _ in range(10))
        assert fired == 2


class TestCorruption:
    def test_corrupt_garbage_overwrites_head(self, tmp_path):
        path = tmp_path / "blob.json"
        path.write_bytes(b"{" + b"x" * 100 + b"}")
        assert corrupt_file(path)
        assert path.read_bytes()[:4] == b"\xde\xad\xbe\xef"

    def test_corrupt_truncate_halves(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"y" * 100)
        assert corrupt_file(path, MODE_TRUNCATE)
        assert path.stat().st_size == 50

    def test_corrupt_missing_file_is_noop(self, tmp_path):
        assert not corrupt_file(tmp_path / "absent")

    def test_maybe_corrupt_only_counts_existing_files(self, tmp_path):
        """A missing blob is not an arrival: the schedule must not burn
        its firing opportunities on cold-cache misses."""
        plan = FaultPlan.parse("cache-corrupt:n=1")
        injector = FaultInjector(plan)
        missing = tmp_path / "absent.json"
        for _ in range(5):
            assert not injector.maybe_corrupt(SITE_CACHE_CORRUPT, missing)
        present = tmp_path / "present.json"
        present.write_bytes(b"0123456789")
        assert injector.maybe_corrupt(SITE_CACHE_CORRUPT, present)
        assert present.read_bytes()[:4] == b"\xde\xad\xbe\xef"


class TestArming:
    def test_unset_env_means_no_injector(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        reset_injector()
        assert get_injector() is None

    def test_injector_cached_per_env_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "worker-kill")
        monkeypatch.delenv("REPRO_FAULTS_DIR", raising=False)
        reset_injector()
        first = get_injector()
        assert first is get_injector()  # arrival counters persist
        monkeypatch.setenv("REPRO_FAULTS", "worker-exc:n=2")
        rearmed = get_injector()
        assert rearmed is not first
        assert SITE_WORKER_EXC in rearmed.plan.sites
        reset_injector()

    def test_reset_rearms_from_scratch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker-kill")
        monkeypatch.delenv("REPRO_FAULTS_DIR", raising=False)
        reset_injector()
        first = get_injector()
        reset_injector()
        assert get_injector() is not first
        reset_injector()
