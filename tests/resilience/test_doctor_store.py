"""``repro doctor --store``: the audit through the BlobStore interface.

The same checks must produce the same verdicts on every backend, so each
scenario runs against the local :class:`FsStore` *and* against an
:class:`HttpStore` wrapping a live server over the same tree.
"""

import threading
import time

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.resilience.doctor import (
    check_result_store,
    check_trace_store,
    prune_store,
    run_doctor,
    run_store_doctor,
)
from repro.service import SweepService, make_server
from repro.store import FsStore, HttpStore
from repro.trace._cache import TraceCache

SPEC = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
               cores=2, per_core=60, seed=0)
RECIPE = dict(workload="histogram", cores=2, per_core=60, seed=0)


def verdict(checks):
    return all(check.ok for check in checks)


@pytest.fixture()
def backing(tmp_path):
    """One FsStore holding a real result blob and a real packed trace."""
    store = FsStore(tmp_path / "cache", trace_root=tmp_path / "traces")
    with ExperimentEngine(jobs=1, cache=ResultCache(store=store,
                                                    enabled=True)) as engine:
        engine.run(SPEC)
    TraceCache(store=store, enabled=True).get_or_build(**RECIPE)
    return store


@pytest.fixture(params=["fs", "http"])
def store(request, backing):
    """The same tree, through each backend."""
    if request.param == "fs":
        yield backing
        return
    engine = ExperimentEngine(jobs=1, cache=ResultCache(store=backing,
                                                        enabled=True))
    service = SweepService(state_dir=backing.root.parent / "state",
                           engine=engine, idle_poll_s=0.05).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield HttpStore(f"http://127.0.0.1:{server.server_address[1]}",
                        timeout_s=30.0)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestStoreAudit:
    def test_healthy_store_passes(self, store):
        assert verdict(check_result_store(store))
        assert verdict(check_trace_store(store))

    def test_corrupt_result_fails_then_fix_quarantines(self, store):
        key = store.list("results/")[0]
        store.put(key, b"NOT JSON")
        assert not verdict(check_result_store(store))
        assert verdict(check_trace_store(store))  # other namespace clean
        fixed = check_result_store(store, fix=True)
        assert verdict(fixed)
        assert store.list("results/") == []
        inventory = store.quarantine_inventory("results")
        assert len(inventory["files"]) == 1
        # A second audit sees the quarantine, not a problem.
        assert verdict(check_result_store(store))

    def test_corrupt_trace_fails_then_fix_quarantines(self, store):
        key = store.list("traces/")[0]
        store.put(key, b"\x00garbage")
        assert not verdict(check_trace_store(store))
        assert verdict(check_trace_store(store, fix=True))
        assert store.list("traces/") == []
        assert len(store.quarantine_inventory("traces")["files"]) == 1

    def test_orphan_flagged_and_fix_removes(self, store, backing):
        orphan = backing.root / "ab" / "half.tmp"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"partial")
        assert not verdict(check_result_store(store))
        assert verdict(check_result_store(store, fix=True))
        assert not orphan.exists()

    def test_prune_older_than(self, store, backing):
        key = store.list("results/")[0]
        path = backing.local_path(key)
        week_ago = time.time() - 7 * 86400
        import os

        os.utime(path, (week_ago, week_ago))
        check = prune_store(store, "results", ".json", 1.0,
                            f"result store {store.url()}")
        assert check.ok
        assert store.list("results/") == []
        manifest = store.gc_manifest("results")
        assert len(manifest) == 1
        assert manifest[0]["file"].endswith(".json")

    def test_run_store_doctor_full_report(self, store):
        report = run_store_doctor(store)
        assert report.ok
        text = report.render()
        assert "entry integrity" in text
        assert "packed-trace integrity" in text
        assert "all checks passed" in text

    def test_run_doctor_routes_to_store_path(self, store):
        report = run_doctor(store=store, prune_older_than_days=365.0)
        assert report.ok
        assert any("GC" in check.name for check in report.checks)


class TestDoctorCli:
    @pytest.fixture(autouse=True)
    def _hermetic_trace_root(self, backing, monkeypatch):
        # `--store file://<root>` resolves its trace namespace from the
        # environment; pin it to this test's tree.  The CLI's
        # configure_store exports REPRO_STORE process-wide — undo that
        # so later tests resolve their own stores.
        import os

        import repro.store.config as store_config

        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(backing.trace_root))
        saved = (os.environ.get("REPRO_STORE"), store_config._CONFIGURED)
        yield
        store_config._CONFIGURED = saved[1]
        if saved[0] is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = saved[0]

    def test_doctor_store_flag(self, backing, capsys):
        from repro.cli import main

        assert main(["doctor", "--store", f"file://{backing.root}"]) == 0
        out = capsys.readouterr().out
        assert "entry integrity" in out

    def test_doctor_store_flag_finds_problems(self, backing, capsys):
        from repro.cli import main

        key = backing.list("results/")[0]
        backing.put(key, b"NOT JSON")
        assert main(["doctor", "--store", f"file://{backing.root}"]) == 1
        assert main(["doctor", "--store", f"file://{backing.root}",
                     "--fix"]) == 0
