"""CLI surface: ``repro doctor``, ``repro chaos``, and --journal/--resume."""

import json

import pytest

from repro.cli import main
from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec


def seed_cache(root):
    spec = RunSpec(workload="histogram", protocol=ProtocolKind.MESI,
                   cores=2, per_core=60, seed=0)
    cache = ResultCache(root, enabled=True)
    with ExperimentEngine(jobs=1, cache=cache) as engine:
        engine.run(spec)
    return cache.path_for(spec)


class TestDoctorCommand:
    def test_healthy_cache_exits_zero(self, tmp_path, capsys):
        seed_cache(tmp_path / "cache")
        rc = main(["doctor", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_corrupt_cache_exits_nonzero(self, tmp_path, capsys):
        blob = seed_cache(tmp_path / "cache")
        blob.write_bytes(b"\xde\xad not json")
        rc = main(["doctor", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 1
        assert "PROBLEMS FOUND" in capsys.readouterr().out

    def test_fix_repairs_and_subsequent_audit_passes(self, tmp_path, capsys):
        blob = seed_cache(tmp_path / "cache")
        blob.write_bytes(b"\xde\xad not json")
        assert main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--fix"]) == 0
        assert main(["doctor", "--cache-dir", str(tmp_path / "cache")]) == 0
        capsys.readouterr()


@pytest.mark.slow
class TestChaosCommand:
    def test_chaos_passes_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        rc = main(["chaos", "--seed", "0", "--workloads", "histogram",
                   "--cores", "2", "--scale", "60",
                   "--faults", "worker-exc:n=1;cache-corrupt:n=1",
                   "--out", str(out)])
        captured = capsys.readouterr()
        assert rc == 0, captured.out + captured.err
        assert "chaos: PASS" in captured.out
        assert json.loads(out.read_text())["ok"]


class TestJournalFlags:
    def test_report_with_journal_resumes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "histogram")
        journal = tmp_path / "journal.jsonl"
        out = tmp_path / "report.txt"
        assert main(["report", "--out", str(out), "--jobs", "1",
                     "--cores", "2", "--scale", "60",
                     "--journal", str(journal)]) == 0
        first = out.read_text()
        completions = len(journal.read_text().splitlines())
        assert completions > 0
        capsys.readouterr()
        # Second run resumes from the journal: no new completions, and
        # the report bytes are identical.
        out2 = tmp_path / "report2.txt"
        assert main(["report", "--out", str(out2), "--jobs", "1",
                     "--cores", "2", "--scale", "60",
                     "--journal", str(journal), "--resume"]) == 0
        assert len(journal.read_text().splitlines()) == completions
        assert out2.read_text() == first
        capsys.readouterr()
