"""LeaseBoard: O_EXCL work-division claims with TTL'd takeover."""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.resilience.lease import (
    DEFAULT_TTL_S,
    LeaseBoard,
    default_lease_ttl,
    lease_dir_for,
)

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

DIGEST = "d" * 64


class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        one = LeaseBoard(tmp_path, owner="one")
        two = LeaseBoard(tmp_path, owner="two")
        assert one.try_claim(DIGEST) is True
        assert two.try_claim(DIGEST) is False
        assert one.claims == 1 and two.claims == 0
        assert one.owner_of(DIGEST)["owner"] == "one"

    def test_release_frees_the_digest(self, tmp_path):
        one = LeaseBoard(tmp_path, owner="one")
        two = LeaseBoard(tmp_path, owner="two")
        assert one.try_claim(DIGEST)
        assert one.release(DIGEST) is True
        assert two.try_claim(DIGEST) is True

    def test_release_refuses_someone_elses_lease(self, tmp_path):
        one = LeaseBoard(tmp_path, owner="one")
        two = LeaseBoard(tmp_path, owner="two")
        assert one.try_claim(DIGEST)
        two._held.add(DIGEST)  # simulate a stale holder notion
        assert two.release(DIGEST) is False
        assert one.owner_of(DIGEST)["owner"] == "one"

    def test_release_all(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="one")
        digests = [f"{i:064x}" for i in range(3)]
        for digest in digests:
            assert board.try_claim(digest)
        board.release_all()
        for digest in digests:
            assert not board.path_for(digest).exists()


class TestTakeover:
    def _backdate(self, path: Path, seconds: float) -> None:
        past = time.time() - seconds
        os.utime(path, (past, past))

    def test_expired_lease_taken_over(self, tmp_path):
        dead = LeaseBoard(tmp_path, owner="dead", ttl_s=1000)
        assert dead.try_claim(DIGEST)
        self._backdate(dead.path_for(DIGEST), seconds=30)
        taker = LeaseBoard(tmp_path, owner="taker", ttl_s=10)
        assert taker.try_claim(DIGEST) is True
        assert taker.takeovers == 1
        assert taker.owner_of(DIGEST)["owner"] == "taker"

    def test_fresh_lease_not_taken_over(self, tmp_path):
        holder = LeaseBoard(tmp_path, owner="holder", ttl_s=1000)
        assert holder.try_claim(DIGEST)
        taker = LeaseBoard(tmp_path, owner="taker", ttl_s=1000)
        assert taker.try_claim(DIGEST) is False
        assert taker.takeovers == 0

    def test_heartbeat_outlives_the_ttl(self, tmp_path):
        holder = LeaseBoard(tmp_path, owner="holder", ttl_s=1000)
        assert holder.try_claim(DIGEST)
        self._backdate(holder.path_for(DIGEST), seconds=30)
        holder.heartbeat(DIGEST)  # the slow run phones home
        taker = LeaseBoard(tmp_path, owner="taker", ttl_s=10)
        assert taker.try_claim(DIGEST) is False

    def test_zero_ttl_disables_takeover(self, tmp_path):
        holder = LeaseBoard(tmp_path, owner="holder")
        assert holder.try_claim(DIGEST)
        self._backdate(holder.path_for(DIGEST), seconds=3600)
        taker = LeaseBoard(tmp_path, owner="taker", ttl_s=0)
        assert taker.try_claim(DIGEST) is False


class TestConfig:
    def test_default_ttl_env(self, monkeypatch):
        assert default_lease_ttl() == DEFAULT_TTL_S
        monkeypatch.setenv("REPRO_LEASE_TTL", "7.5")
        assert default_lease_ttl() == 7.5
        monkeypatch.setenv("REPRO_LEASE_TTL", "garbage")
        assert default_lease_ttl() == DEFAULT_TTL_S
        monkeypatch.setenv("REPRO_LEASE_TTL", "-3")
        assert default_lease_ttl() == 0.0

    def test_lease_dir_sits_beside_the_journal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        assert lease_dir_for(journal) == tmp_path / "journal.jsonl.leases"

    def test_distinct_default_owners(self, tmp_path):
        assert LeaseBoard(tmp_path).owner != LeaseBoard(tmp_path).owner


RACER = textwrap.dedent("""\
    import sys
    from repro.resilience.lease import LeaseBoard

    board = LeaseBoard({root!r}, owner={owner!r})
    # Spin until the starting gun so both processes arrive together.
    import os, time
    while not os.path.exists({gun!r}):
        time.sleep(0.001)
    print("WON" if board.try_claim({digest!r}) else "LOST")
""")


HOLDER = textwrap.dedent("""\
    import time
    from repro.resilience.lease import LeaseBoard

    board = LeaseBoard({root!r}, owner="holder")
    assert board.try_claim({digest!r})
    print("CLAIMED", flush=True)
    time.sleep(120)  # hold until SIGKILL
""")


@pytest.mark.slow
class TestAcrossProcesses:
    def test_two_processes_claim_exactly_once(self, tmp_path):
        gun = tmp_path / "go"
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        children = [
            subprocess.Popen(
                [sys.executable, "-c",
                 RACER.format(root=str(tmp_path / "leases"), owner=name,
                              gun=str(gun), digest=DIGEST)],
                env=env, stdout=subprocess.PIPE, text=True)
            for name in ("racer-a", "racer-b")]
        gun.touch()
        outcomes = sorted(child.communicate(timeout=60)[0].strip()
                          for child in children)
        assert all(child.returncode == 0 for child in children)
        assert outcomes == ["LOST", "WON"]

    def test_sigkilled_holder_is_released_after_ttl(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        child = subprocess.Popen(
            [sys.executable, "-c",
             HOLDER.format(root=str(tmp_path / "leases"), digest=DIGEST)],
            env=env, stdout=subprocess.PIPE, text=True)
        try:
            assert child.stdout.readline().strip() == "CLAIMED"
            child.kill()  # SIGKILL: no atexit, the lease file survives
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGKILL

        survivor = LeaseBoard(tmp_path / "leases", owner="survivor",
                              ttl_s=0.2)
        assert survivor.try_claim(DIGEST) is False  # not yet expired
        time.sleep(0.3)
        assert survivor.try_claim(DIGEST) is True
        assert survivor.takeovers == 1
        assert survivor.owner_of(DIGEST)["owner"] == "survivor"
