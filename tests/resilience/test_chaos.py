"""The chaos harness end to end (small plan, small sweep)."""

import json

import pytest

from repro.resilience.chaos import DEFAULT_FAULTS, matrix_json, render, run_chaos
from repro.resilience.faults import FAULT_SITES, FaultPlan


class TestDefaults:
    def test_default_plan_covers_every_site(self):
        plan = FaultPlan.parse(DEFAULT_FAULTS)
        assert set(plan.sites) == set(FAULT_SITES)
        # The acceptance bar is >= 3 distinct fault kinds.
        assert len(plan.sites) >= 3


class TestMatrixJson:
    def test_canonical_and_order_independent(self, tmp_path):
        from repro.common.params import ProtocolKind
        from repro.experiments._engine import (
            ExperimentEngine,
            ResultCache,
            RunSpec,
        )

        specs = [RunSpec("histogram", ProtocolKind.MESI, cores=2, per_core=60),
                 RunSpec("histogram", ProtocolKind.PROTOZOA_MW, cores=2,
                         per_core=60)]
        cache = ResultCache(tmp_path, enabled=True)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            results = engine.run_many(specs)
        forward = matrix_json(results)
        backward = matrix_json(dict(reversed(list(results.items()))))
        assert forward == backward
        assert json.loads(forward)  # valid, parseable JSON


@pytest.mark.slow
class TestRunChaos:
    def test_faulted_sweep_is_bit_identical(self, tmp_path):
        report = run_chaos(
            faults="worker-kill:n=1;worker-exc:n=1;cache-corrupt:n=1",
            seed=0, workloads=("histogram",), cores=2, per_core=60,
            jobs=2, out=str(tmp_path / "report.json"))
        assert report["identical"], report
        assert report["quarantine_leaks"] == []
        assert report["ok"], report
        # Every armed kind actually fired.
        assert report["fired"].get("worker-kill") == 1
        assert report["fired"].get("worker-exc") == 1
        assert report["fired"].get("cache-corrupt") == 1
        assert report["journal"]["completed"] == report["cells"]
        # The report round-trips to disk and renders a PASS.
        on_disk = json.loads((tmp_path / "report.json").read_text())
        assert on_disk["ok"]
        assert "chaos: PASS" in render(report)

    def test_scratch_cleaned_up_unless_kept(self, tmp_path):
        import os

        report = run_chaos(faults="worker-exc:n=1", seed=1,
                           workloads=("histogram",), cores=2, per_core=60,
                           jobs=2)
        assert report["scratch"] == ""
        # Arming env vars must not leak into the calling process.
        assert "REPRO_FAULTS" not in os.environ
        assert "REPRO_FAULTS_DIR" not in os.environ
