"""Size-budgeted eviction: ``--prune-to-size`` and the tier budget.

The three ordering guarantees (docs/resilience.md) each get a direct
proof here: manifest-logged before the delete, quarantine untouched,
spooled sole copies untouchable — on both FsStore and TieredStore.
"""

import os
import time
from pathlib import Path

import pytest

from repro.cli import _parse_size, main
from repro.resilience.doctor import prune_store_to_size, run_doctor
from repro.store import FsStore, TieredStore

NOW = time.time()


def key_for(index):
    return f"results/{index:02x}" + "0" * 62 + ".json"


def fill(store, count=4, size=100, spacing=1000.0):
    """``count`` blobs of ``size`` bytes, oldest first by mtime."""
    for i in range(count):
        store.put(key_for(i), b"x" * size)
        path = store.local_path(key_for(i))
        stamp = NOW - spacing * (count - i)
        os.utime(path, (stamp, stamp))
    return [key_for(i) for i in range(count)]


@pytest.fixture()
def store(tmp_path):
    return FsStore(tmp_path / "cache", trace_root=tmp_path / "cache/traces")


class TestParseSize:
    def test_suffixes(self):
        assert _parse_size("1024") == 1024
        assert _parse_size("1K") == 1000
        assert _parse_size("2m") == 2 * 10 ** 6
        assert _parse_size("0.5G") == 500 * 10 ** 6
        assert _parse_size("1T") == 10 ** 12

    def test_rejects_garbage(self):
        for bad in ("", "lots", "-5", "0", "5X"):
            with pytest.raises(ValueError):
                _parse_size(bad)


class TestLruOrder:
    def test_evicts_oldest_first(self, store):
        keys = fill(store, count=4, size=100)
        check = prune_store_to_size(store, 250, "t", now=NOW)
        assert check.ok
        assert check.evicted == 2 and check.freed_bytes == 200
        assert store.get(keys[0]) is None and store.get(keys[1]) is None
        assert store.get(keys[2]) is not None and store.get(keys[3]) is not None

    def test_under_budget_is_a_noop(self, store):
        keys = fill(store, count=2, size=100)
        check = prune_store_to_size(store, 10 ** 6, "t", now=NOW)
        assert check.ok and check.evicted == 0
        assert all(store.get(key) is not None for key in keys)
        assert store.gc_manifest("results") == []

    def test_budget_spans_namespaces(self, store):
        store.put("traces/" + "a" * 64 + ".bin", b"t" * 300)
        trace_path = store.local_path("traces/" + "a" * 64 + ".bin")
        os.utime(trace_path, (NOW - 9999, NOW - 9999))
        store.put(key_for(0), b"r" * 100)
        check = prune_store_to_size(store, 150, "t", now=NOW)
        assert check.ok and check.evicted == 1
        # The old trace went; its eviction is logged in *its* namespace.
        assert store.get("traces/" + "a" * 64 + ".bin") is None
        assert [e["reason"] for e in store.gc_manifest("traces")] == [
            "size-budget"]


class TestManifestFirst:
    def test_eviction_is_logged_with_provenance(self, store):
        keys = fill(store, count=3, size=100)
        prune_store_to_size(store, 150, "t", now=NOW)
        entries = store.gc_manifest("results")
        assert len(entries) == 2
        for entry in entries:
            assert entry["reason"] == "size-budget"
            assert entry["budget_bytes"] == 150
            assert entry["bytes"] == 100
            assert entry["pid"] == os.getpid()
            assert entry["age_days"] > 0
        logged = {entry["file"].split("/", 1)[1] for entry in entries}
        assert logged == {keys[0].split("/", 1)[1], keys[1].split("/", 1)[1]}

    def test_manifest_written_even_if_delete_fails(self, tmp_path):
        class StuckStore(FsStore):
            def delete(self, key):
                return False  # the blob refuses to die

        store = StuckStore(tmp_path / "cache",
                           trace_root=tmp_path / "cache/traces")
        keys = fill(store, count=2, size=100)
        check = prune_store_to_size(store, 100, "t", now=NOW)
        # The intent was durably recorded before the delete was attempted.
        assert len(store.gc_manifest("results")) >= 1
        assert not check.ok  # and the failure is loud, not silent
        assert store.get(keys[0]) is not None


class TestQuarantineExempt:
    def test_quarantine_is_never_touched(self, store):
        fill(store, count=2, size=100)
        store.quarantine(key_for(0), "checksum mismatch")
        quarantined = store.quarantine_inventory("results")["files"]
        assert quarantined
        check = prune_store_to_size(store, 1, "t", now=NOW)
        # Budget pressure of 1 byte: every listed blob goes, but the
        # quarantine inventory is not a candidate and survives intact.
        assert store.quarantine_inventory("results")["files"] == quarantined
        assert check.evicted == 1  # only the one remaining listed blob


class TestSpoolExempt:
    def test_exempt_keys_survive_any_pressure(self, store):
        keys = fill(store, count=3, size=100)
        check = prune_store_to_size(store, 150, "t", now=NOW,
                                    exempt={keys[0]})
        assert keys[0].split("/", 1)[1] not in [
            entry["file"].split("/", 1)[1]
            for entry in store.gc_manifest("results")]
        assert store.get(keys[0]) is not None
        assert store.get(keys[1]) is None  # the next-oldest paid instead

    def test_unreachable_budget_fails_loud(self, store):
        keys = fill(store, count=2, size=100)
        check = prune_store_to_size(store, 50, "t", now=NOW,
                                    exempt=set(keys))
        assert not check.ok and check.evicted == 0
        assert any("budget not met" in line for line in check.details)

    def test_tiered_store_doctor_prune_spares_spool(self, tmp_path):
        remote = FsStore(tmp_path / "remote",
                         trace_root=tmp_path / "remote/traces")
        tier = TieredStore(remote, tmp_path / "tier")
        fill(tier.local, count=3, size=100)
        # Fake an unflushed write: a marker claims the oldest key.
        tier._spool(key_for(0))
        report = run_doctor(store=tier, prune_to_size_bytes=150)
        prune = next(c for c in report.checks if "size budget" in c.name)
        assert prune.ok and "local tier" in prune.name
        assert tier.local.get(key_for(0)) is not None  # sole copy kept
        assert tier.local.get(key_for(1)) is None      # LRU paid instead
        # The audit's own store traffic then noticed the reachable remote
        # and drained the spool — the sole copy is replicated, never lost.
        assert remote.list() == [key_for(0)]
        # Evicted blobs were local-tier casualties only; the remote never
        # saw them and never saw a delete.
        assert remote.get(key_for(1)) is None


class TestDoctorEntryPoints:
    def test_run_doctor_path_based(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR",
                           str(tmp_path / "cache/traces"))
        store = FsStore(tmp_path / "cache",
                        trace_root=tmp_path / "cache/traces")
        fill(store, count=3, size=100)
        report = run_doctor(result_root=tmp_path / "cache",
                            trace_root=tmp_path / "cache/traces",
                            prune_to_size_bytes=150)
        prune = next(c for c in report.checks if "size budget" in c.name)
        assert prune.ok and prune.evicted == 2
        assert len(store.gc_manifest("results")) == 2

    def test_cli_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR",
                           str(tmp_path / "cache/traces"))
        store = FsStore(tmp_path / "cache",
                        trace_root=tmp_path / "cache/traces")
        fill(store, count=3, size=100)
        rc = main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                   "--prune-to-size", "150"])
        out = capsys.readouterr().out
        # rc is 1: the filler blobs flunk entry integrity (they are not
        # RunResults) — the budget pruning itself must still have run.
        assert rc == 1
        assert "size budget 150" in out
        assert "2 entr(ies) evicted" in out

    def test_cli_rejects_bad_size(self, tmp_path):
        with pytest.raises(SystemExit, match="--prune-to-size"):
            main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                  "--prune-to-size", "plenty"])
