"""Resilience-suite isolation: every test starts with cold fault state."""

import pytest

from repro.obs.metrics import reset_process_registry
from repro.resilience.faults import reset_injector
from repro.resilience.log import clear_events


@pytest.fixture(autouse=True)
def _cold_fault_state():
    reset_injector()
    reset_process_registry()
    clear_events()
    yield
    reset_injector()
    reset_process_registry()
    clear_events()
