"""The paper's qualitative protocol orderings on representative workloads.

These assert the evaluation's *shape*: who wins, and in which metric, per
sharing profile — not absolute values.
"""

import pytest

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.trace.workloads import build_streams

SCALE = 1200


@pytest.fixture(scope="module")
def runs():
    cache = {}

    def get(workload, kind):
        key = (workload, kind)
        if key not in cache:
            streams = build_streams(workload, cores=16, per_core=SCALE)
            cache[key] = simulate(streams, SystemConfig(protocol=kind),
                                  name=workload)
        return cache[key]

    return get


class TestFalseSharingWorkloads:
    def test_linreg_mw_eliminates_misses(self, runs):
        mesi = runs("linear-regression", ProtocolKind.MESI)
        mw = runs("linear-regression", ProtocolKind.PROTOZOA_MW)
        assert mw.mpki() < 0.1 * mesi.mpki()  # paper: -99%

    def test_linreg_mw_speedup(self, runs):
        mesi = runs("linear-regression", ProtocolKind.MESI)
        mw = runs("linear-regression", ProtocolKind.PROTOZOA_MW)
        assert mw.exec_cycles() < 0.75 * mesi.exec_cycles()  # paper: 2.2x

    def test_linreg_sw_does_not_fix_false_sharing(self, runs):
        mesi = runs("linear-regression", ProtocolKind.MESI)
        sw = runs("linear-regression", ProtocolKind.PROTOZOA_SW)
        assert sw.mpki() > 0.8 * mesi.mpki()

    def test_histogram_ordering(self, runs):
        mesi = runs("histogram", ProtocolKind.MESI)
        sw = runs("histogram", ProtocolKind.PROTOZOA_SW)
        mw = runs("histogram", ProtocolKind.PROTOZOA_MW)
        assert mw.mpki() < mesi.mpki()
        assert mw.traffic_bytes() < sw.traffic_bytes() < mesi.traffic_bytes()

    def test_string_match_multi_owner(self, runs):
        mw = runs("string-match", ProtocolKind.PROTOZOA_MW)
        buckets = mw.dir_owned_buckets()
        assert buckets[">1owner"] > 0  # paper: extreme fine-grain sharing


class TestSpatialLocalityWorkloads:
    def test_matmul_all_protocols_equal(self, runs):
        vals = [runs("matrix-multiply", k).traffic_bytes() for k in ProtocolKind]
        spread = (max(vals) - min(vals)) / max(vals)
        assert spread < 0.05

    def test_matmul_high_used_fraction(self, runs):
        assert runs("matrix-multiply", ProtocolKind.MESI).used_fraction() > 0.9

    def test_canneal_sw_halves_traffic(self, runs):
        mesi = runs("canneal", ProtocolKind.MESI)
        sw = runs("canneal", ProtocolKind.PROTOZOA_SW)
        assert sw.traffic_bytes() < 0.7 * mesi.traffic_bytes()
        assert mesi.used_fraction() < 0.3  # poor locality under fixed blocks

    def test_canneal_blocks_mostly_narrow(self, runs):
        mw = runs("canneal", ProtocolKind.PROTOZOA_MW)
        buckets = mw.block_size_buckets()
        assert buckets["1-2"] > 0.4

    def test_matmul_blocks_mostly_full(self, runs):
        mw = runs("matrix-multiply", ProtocolKind.PROTOZOA_MW)
        assert mw.block_size_buckets()["7-8"] > 0.6


class TestTrafficOrdering:
    @pytest.mark.parametrize("workload", ["linear-regression", "histogram",
                                          "string-match"])
    def test_mw_beats_mesi_on_false_sharers(self, runs, workload):
        mesi = runs(workload, ProtocolKind.MESI)
        mw = runs(workload, ProtocolKind.PROTOZOA_MW)
        assert mw.traffic_bytes() < mesi.traffic_bytes()
        assert mw.flit_hops() < mesi.flit_hops()

    @pytest.mark.parametrize("workload", ["canneal", "bodytrack", "kmeans"])
    def test_sw_beats_mesi_on_sparse_apps(self, runs, workload):
        mesi = runs(workload, ProtocolKind.MESI)
        sw = runs(workload, ProtocolKind.PROTOZOA_SW)
        assert sw.traffic_bytes() < mesi.traffic_bytes()

    def test_used_fraction_improves_under_protozoa(self, runs):
        for workload in ("canneal", "histogram", "bodytrack"):
            mesi = runs(workload, ProtocolKind.MESI)
            sw = runs(workload, ProtocolKind.PROTOZOA_SW)
            assert sw.used_fraction() > mesi.used_fraction()
