"""Integration: the paper's Figure 1 OpenMP counter example end-to-end."""

import pytest

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.trace.events import MemAccess

ITEM_BASE = 0x8000
ITERS = 300


def worker(index):
    addr = ITEM_BASE + index * 8
    return ([MemAccess.read(addr, 8, 0x10, 2),
             MemAccess.write(addr, 8, 0x14, 1)] * ITERS)


def run(kind, threads=2):
    config = SystemConfig(protocol=kind, cores=max(threads, 2))
    return simulate([worker(i) for i in range(threads)], config, name="fig1")


@pytest.fixture(scope="module")
def results():
    return {kind: run(kind) for kind in ProtocolKind}


class TestFigure1:
    def test_mesi_ping_pongs(self, results):
        mesi = results[ProtocolKind.MESI]
        # Nearly every increment round-trip misses.
        assert mesi.stats.misses > ITERS

    def test_sw_reduces_traffic_not_misses(self, results):
        mesi = results[ProtocolKind.MESI]
        sw = results[ProtocolKind.PROTOZOA_SW]
        assert sw.traffic_bytes() < 0.6 * mesi.traffic_bytes()
        assert sw.stats.misses > 0.8 * mesi.stats.misses  # ping-pong remains

    def test_mw_eliminates_misses(self, results):
        mesi = results[ProtocolKind.MESI]
        mw = results[ProtocolKind.PROTOZOA_MW]
        assert mw.stats.misses < 0.02 * mesi.stats.misses
        assert mw.traffic_bytes() < 0.02 * mesi.traffic_bytes()

    def test_mw_speeds_up_execution(self, results):
        mesi = results[ProtocolKind.MESI]
        mw = results[ProtocolKind.PROTOZOA_MW]
        assert mw.exec_cycles() < 0.5 * mesi.exec_cycles()

    def test_swmr_in_between(self, results):
        sw = results[ProtocolKind.PROTOZOA_SW]
        swmr = results[ProtocolKind.PROTOZOA_SW_MR]
        mw = results[ProtocolKind.PROTOZOA_MW]
        assert mw.stats.misses <= swmr.stats.misses <= sw.stats.misses

    def test_sw_unused_data_eliminated(self, results):
        sw = results[ProtocolKind.PROTOZOA_SW]
        split = sw.traffic_split()
        assert split["unused"] < 0.05 * (split["used"] + split["unused"] + 1)

    def test_sixteen_threads(self):
        mesi = run(ProtocolKind.MESI, threads=16)
        mw = run(ProtocolKind.PROTOZOA_MW, threads=16)
        assert mw.stats.misses < 0.05 * mesi.stats.misses
