"""The evaluation section's *textual* claims, as executable assertions.

Each test quotes a sentence from Section 4 of the paper and asserts the
corresponding (appropriately loosened) property of our runs.  Workload
subsets and thresholds are chosen to be robust at test scale.
"""

import pytest

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.trace.workloads import build_streams

SCALE = 1500


@pytest.fixture(scope="module")
def runs():
    cache = {}

    def get(workload, kind):
        key = (workload, kind)
        if key not in cache:
            streams = build_streams(workload, cores=16, per_core=SCALE)
            cache[key] = simulate(streams, SystemConfig(protocol=kind),
                                  name=workload)
        return cache[key]

    return get


class TestSection41Claims:
    def test_unused_data_exceeds_control_in_mesi(self, runs):
        """'Unused DATA accounts for a significant portion of the overall
        traffic (34%), more than all control messages combined (22%).'"""
        totals = unused = control = 0
        for name in ("canneal", "linear-regression", "bodytrack", "apache"):
            r = runs(name, ProtocolKind.MESI)
            t = r.stats.traffic
            totals += t.total
            unused += t.unused_data
            control += t.control_total
        assert unused > control
        assert unused / totals > 0.3

    def test_sw_eliminates_most_unused_data(self, runs):
        """'Protozoa-SW eliminates 81% of Unused DATA.'"""
        for name in ("canneal", "bodytrack", "linear-regression"):
            mesi = runs(name, ProtocolKind.MESI).stats.traffic.unused_data
            sw = runs(name, ProtocolKind.PROTOZOA_SW).stats.traffic.unused_data
            assert sw < 0.35 * mesi

    def test_sw_beats_control_free_mesi(self, runs):
        """'This improvement is more noticeable than even if all control
        messages were eliminated from MESI' — i.e. incoherent fixed-
        granularity systems have bounded scope."""
        for name in ("canneal", "bodytrack"):
            mesi = runs(name, ProtocolKind.MESI).stats.traffic
            sw = runs(name, ProtocolKind.PROTOZOA_SW).stats.traffic
            mesi_without_control = mesi.used_data + mesi.unused_data
            assert sw.total < mesi_without_control

    def test_sw_may_increase_misses_by_underfetching(self, runs):
        """'Protozoa-SW ... may increase the # of misses by underfetching'
        (h2, histogram)."""
        increased = 0
        for name in ("h2", "histogram"):
            mesi = runs(name, ProtocolKind.MESI).stats.misses
            sw = runs(name, ProtocolKind.PROTOZOA_SW).stats.misses
            if sw > mesi:
                increased += 1
        assert increased >= 1

    def test_mw_and_swmr_reduce_traffic_vs_sw_on_false_sharers(self, runs):
        """'both Protozoa-MW and Protozoa-SW+MR reduce data transferred
        compared to Protozoa-SW by eliminating secondary misses' (h2,
        histogram, string-match)."""
        for name in ("h2", "histogram", "string-match"):
            sw = runs(name, ProtocolKind.PROTOZOA_SW)
            mw = runs(name, ProtocolKind.PROTOZOA_MW)
            sw_data = sw.stats.traffic.used_data + sw.stats.traffic.unused_data
            mw_data = mw.stats.traffic.used_data + mw.stats.traffic.unused_data
            assert mw_data < sw_data

    def test_linreg_no_misses_once_warm(self, runs):
        """'once the cache is warmed up and the disjoint fine-grain data
        blocks are cached for read-write access, the application
        experiences no further misses.'"""
        mw = runs("linear-regression", ProtocolKind.PROTOZOA_MW)
        # Warm-up misses only: a tiny fraction of total accesses.
        assert mw.stats.misses < 0.02 * mw.stats.accesses

    def test_string_match_multi_owner_dominates(self, runs):
        """'for string-match, more than 90% of the lookups in the Owned
        state find more than 1 owners.'"""
        mw = runs("string-match", ProtocolKind.PROTOZOA_MW)
        buckets = mw.dir_owned_buckets()
        total = sum(buckets.values()) or 1
        assert buckets[">1owner"] / total > 0.5

    def test_embarrassingly_parallel_have_no_owned_sharing(self, runs):
        """'Matrix-multiply and wordcount are embarrassingly parallel.'"""
        for name in ("matrix-multiply", "word-count"):
            mw = runs(name, ProtocolKind.PROTOZOA_MW)
            buckets = mw.dir_owned_buckets()
            total = sum(buckets.values()) or 1
            assert buckets[">1owner"] / total < 0.02


class TestSection42Claims:
    def test_mw_speedup_on_histogram_and_streamcluster(self, runs):
        """'Protozoa-MW and Protozoa-SW+MR reduce execution time relative
        to MESI for histogram and streamclusters.'"""
        for name in ("histogram", "streamcluster"):
            mesi = runs(name, ProtocolKind.MESI).exec_cycles()
            mw = runs(name, ProtocolKind.PROTOZOA_MW).exec_cycles()
            assert mw < mesi

    def test_linreg_dramatic_mw_speedup(self, runs):
        """'the speedup for Protozoa-MW is dramatic at 2.2X.'"""
        mesi = runs("linear-regression", ProtocolKind.MESI).exec_cycles()
        mw = runs("linear-regression", ProtocolKind.PROTOZOA_MW).exec_cycles()
        assert mesi / mw > 1.8

    def test_mw_beats_swmr_on_linreg(self, runs):
        """'Protozoa-MW is also able to reduce execution time by 36%
        relative to Protozoa-SW+MR by allowing fine-grain write sharing.'"""
        swmr = runs("linear-regression", ProtocolKind.PROTOZOA_SW_MR)
        mw = runs("linear-regression", ProtocolKind.PROTOZOA_MW)
        assert mw.exec_cycles() < 0.8 * swmr.exec_cycles()

    def test_flit_hop_reduction_ordering(self, runs):
        """'Protozoa-SW eliminates 33%, ... Protozoa-MW eliminates 49% of
        the flit-hops' — MW saves more than SW."""
        for name in ("linear-regression", "histogram", "string-match"):
            sw = runs(name, ProtocolKind.PROTOZOA_SW).flit_hops()
            mw = runs(name, ProtocolKind.PROTOZOA_MW).flit_hops()
            mesi = runs(name, ProtocolKind.MESI).flit_hops()
            assert mw < sw < mesi
