"""Cross-cutting accounting conservation properties.

The byte totals the figures report must tie out against the raw message
stream: every data word transmitted at the L1 boundary is classified used
or unused exactly once, control bytes equal 8 per L1-visible message, and
flit counts follow from message sizes.
"""

import random

import pytest

from repro.coherence.messages import MsgType

from tests.conftest import ALL_KINDS, make_engine


class Recorder:
    def __init__(self, protocol):
        self.data_words_at_l1 = 0
        self.control_msgs_at_l1 = 0
        self.total_bytes = 0
        protocol.trace_hook = self._hook

    def _hook(self, mtype, src, dst, payload_words):
        if mtype in (MsgType.MEM_READ, MsgType.MEM_DATA, MsgType.MEM_WRITE):
            return
        self.data_words_at_l1 += payload_words
        self.control_msgs_at_l1 += 1
        self.total_bytes += mtype.size_bytes(payload_words)


def drive(p, seed, accesses=1200, regions=8, same_set=False):
    rng = random.Random(seed)
    stride = p.l1s[0].num_sets if same_set else 1
    for _ in range(accesses):
        core = rng.randrange(p.config.cores)
        addr = rng.randrange(regions) * stride * 64 + rng.randrange(8) * 8
        if rng.random() < 0.4:
            p.write(core, addr)
        else:
            p.read(core, addr)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
@pytest.mark.parametrize("same_set", [False, True], ids=["hot", "churn"])
def test_data_byte_conservation(kind, same_set):
    """used + unused data bytes == 8 x (payload words at the L1 boundary)."""
    p = make_engine(kind, cores=4)
    rec = Recorder(p)
    drive(p, seed=21, same_set=same_set)
    p.flush()
    t = p.stats.traffic
    assert t.used_data + t.unused_data == 8 * rec.data_words_at_l1


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def test_control_byte_conservation(kind):
    """Control bytes == 8 per L1-visible message (headers included)."""
    p = make_engine(kind, cores=4)
    rec = Recorder(p)
    drive(p, seed=22)
    p.flush()
    assert p.stats.traffic.control_total == 8 * rec.control_msgs_at_l1


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def test_total_traffic_matches_message_stream(kind):
    p = make_engine(kind, cores=4)
    rec = Recorder(p)
    drive(p, seed=23)
    p.flush()
    assert p.stats.traffic.total == rec.total_bytes


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def test_flits_lower_bounded_by_messages(kind):
    p = make_engine(kind, cores=4)
    drive(p, seed=24)
    assert p.net.total_flits >= p.net.total_messages


@pytest.mark.parametrize("kind", ALL_KINDS, ids=[k.short_name for k in ALL_KINDS])
def test_miss_plus_hit_equals_accesses(kind):
    p = make_engine(kind, cores=4)
    drive(p, seed=25)
    s = p.stats
    assert s.read_hits + s.write_hits + s.misses == s.accesses
