"""Smoke tests: every bundled example runs and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "false_sharing_lab.py",
            "spatial_locality_sweep.py", "protocol_walkthrough.py",
            "trace_tools.py"} <= names


def test_trace_tools():
    out = run_example("trace_tools.py")
    assert "falsely shared" in out
    assert "MESI" in out and "MW" in out


def test_quickstart():
    out = run_example("quickstart.py")
    assert "MESI" in out and "MW" in out
    assert "eliminates the misses" in out


def test_false_sharing_lab():
    out = run_example("false_sharing_lab.py")
    assert "stride" in out
    assert "MW is immune" in out


def test_protocol_walkthrough():
    out = run_example("protocol_walkthrough.py")
    assert "Figure 4" in out and "Figure 7" in out
    assert "ACK-S" in out
    assert "WBACK" in out


@pytest.mark.slow
def test_spatial_locality_sweep():
    out = run_example("spatial_locality_sweep.py")
    assert "Protozoa-MW" in out
    assert "MESI-128" in out
