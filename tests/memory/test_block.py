"""Tests for the Amoeba-Block 4-tuple and its bookkeeping."""

import pytest

from repro.common.wordrange import WordRange
from repro.memory.block import Block, LineState


def make(rng=WordRange(2, 5), state=LineState.S):
    return Block(7, rng, state, [0] * rng.width, miss_pc=0x42, miss_word=rng.start)


class TestConstruction:
    def test_data_length_must_match(self):
        with pytest.raises(ValueError):
            Block(0, WordRange(0, 3), LineState.S, [0, 0])

    def test_initial_masks(self):
        b = make()
        assert b.fetched_mask == WordRange(2, 5).to_mask()
        assert b.touched_mask == 0
        assert b.dirty_mask == 0
        assert not b.dirty

    def test_repr_mentions_state(self):
        assert "S/c" in repr(make())


class TestDataAccess:
    def test_value_indexing_is_absolute(self):
        b = make()
        b.data[0] = 11  # word 2
        b.data[3] = 44  # word 5
        assert b.value(2) == 11
        assert b.value(5) == 44

    def test_write_sets_dirty_and_touched(self):
        b = make()
        b.write(3, 99)
        assert b.value(3) == 99
        assert b.dirty
        assert b.dirty_mask == 1 << 3
        assert b.touched_mask == 1 << 3

    def test_touch_clips_to_block_range(self):
        b = make()
        b.touch(WordRange(0, 7))
        assert b.touched_mask == WordRange(2, 5).to_mask()

    def test_values_in_intersection(self):
        b = make()
        for w in range(2, 6):
            b.write(w, w * 10)
        assert b.values_in(WordRange(3, 4)) == [30, 40]
        assert b.values_in(WordRange(0, 2)) == [20]
        assert b.values_in(WordRange(6, 7)) == []


class TestStates:
    def test_readable(self):
        for s in (LineState.M, LineState.E, LineState.S):
            assert s.readable
        assert not LineState.I.readable

    def test_writable(self):
        assert LineState.M.writable and LineState.E.writable
        assert not LineState.S.writable and not LineState.I.writable


class TestFootprint:
    def test_footprint_includes_tag(self):
        b = make(WordRange(0, 0))
        assert b.footprint_bytes(tag_bytes=8) == 16

    def test_full_region_footprint(self):
        b = make(WordRange(0, 7))
        assert b.footprint_bytes(tag_bytes=8) == 72

    def test_size_words(self):
        assert make(WordRange(1, 4)).size_words == 4
