"""Tests for the region-granularity MSHR file."""

import pytest

from repro.common.errors import ProtocolError
from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_allocate_release_cycle(self):
        m = MSHRFile()
        m.allocate(5)
        assert m.is_busy(5)
        m.release(5)
        assert not m.is_busy(5)
        assert m.allocations == 1

    def test_reentry_rejected(self):
        m = MSHRFile()
        m.allocate(5)
        with pytest.raises(ProtocolError):
            m.allocate(5)

    def test_release_idle_rejected(self):
        with pytest.raises(ProtocolError):
            MSHRFile().release(5)

    def test_exhaustion(self):
        m = MSHRFile(entries=2)
        m.allocate(0)
        m.allocate(1)
        with pytest.raises(ProtocolError):
            m.allocate(2)


class TestBlockingStats:
    def test_single_block_not_counted(self):
        m = MSHRFile()
        m.note_multi_block(from_cpu=True, blocks=1)
        m.note_multi_block(from_cpu=False, blocks=0)
        assert m.cpu_blocking_events == 0
        assert m.coh_blocking_events == 0

    def test_multi_block_buckets(self):
        m = MSHRFile()
        m.note_multi_block(from_cpu=True, blocks=3)
        m.note_multi_block(from_cpu=False, blocks=2)
        m.note_multi_block(from_cpu=False, blocks=4)
        assert m.cpu_blocking_events == 1
        assert m.coh_blocking_events == 2
