"""Predictor table-aliasing and stress behaviour."""

from repro.common.wordrange import WordRange
from repro.memory.predictor import PCHistoryPredictor

WPR = 8


class TestAliasing:
    def test_distinct_pcs_may_alias_but_never_crash(self):
        p = PCHistoryPredictor(table_size=2)
        for pc in range(64):
            p.train(pc, pc % WPR, 1 << (pc % WPR), 0xFF, WPR)
        for pc in range(64):
            got = p.predict(pc, 0, WordRange(3, 3), False, WPR)
            assert got.contains(3)
            assert 0 <= got.start <= got.end < WPR

    def test_table_bounded(self):
        p = PCHistoryPredictor(table_size=16)
        for pc in range(1000):
            p.train(pc, 0, 0b1, 0xFF, WPR)
        assert len(p._table) <= 16

    def test_hit_and_cold_counters(self):
        p = PCHistoryPredictor()
        p.predict(0x1, 0, WordRange(0, 0), False, WPR)
        p.train(0x1, 0, 0b1, 0xFF, WPR)
        p.predict(0x1, 0, WordRange(0, 0), False, WPR)
        assert p.cold == 1
        assert p.hits == 1


class TestRegionSizes:
    def test_predictions_respect_small_regions(self):
        p = PCHistoryPredictor()
        p.train(0x9, 0, 0b11, 0b11, 2)  # 16-byte regions: 2 words
        got = p.predict(0x9, 0, WordRange(1, 1), False, 2)
        assert got.end <= 1

    def test_wide_region_support(self):
        p = PCHistoryPredictor()
        p.train(0x9, 0, (1 << 16) - 1, (1 << 16) - 1, 16)  # 128-byte regions
        got = p.predict(0x9, 0, WordRange(0, 0), False, 16)
        assert got == WordRange(0, 15)


class TestWritesVsReads:
    def test_prediction_is_access_kind_agnostic(self):
        # The table is PC-indexed; reads and writes from one site share it.
        p = PCHistoryPredictor()
        p.train(0x5, 2, 0b1100, 0xFF, WPR)
        read = p.predict(0x5, 0, WordRange(2, 2), False, WPR)
        write = p.predict(0x5, 0, WordRange(2, 2), True, WPR)
        assert read == write
