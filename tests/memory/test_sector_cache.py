"""Tests for the decoupled sector-cache substrate."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import L1Organization, ProtocolKind, SystemConfig
from repro.common.wordrange import WordRange
from repro.memory.block import Block, LineState
from repro.memory.sector_cache import SectorCache


def block(region, start, end, state=LineState.S):
    rng = WordRange(start, end)
    return Block(region, rng, state, [0] * rng.width)


def no_evict(victim):
    raise AssertionError("unexpected eviction")


class TestBasics:
    def test_insert_and_lookup(self):
        c = SectorCache(sets=4, ways=2)
        b = block(0, 2, 5)
        c.insert(b, no_evict)
        assert c.lookup(0, 3) is b
        assert c.lookup(0, 6) is None

    def test_geometry_validated(self):
        with pytest.raises(SimulationError):
            SectorCache(sets=0, ways=2)

    def test_sectors_of_one_region_share_a_tag(self):
        c = SectorCache(sets=1, ways=1)
        c.insert(block(0, 0, 1), no_evict)
        c.insert(block(0, 6, 7), no_evict)  # same frame: no eviction
        assert len(c.blocks_of(0)) == 2
        assert c.covered_mask(0, WordRange(0, 7)) == 0b11000011

    def test_overlap_within_frame_rejected(self):
        c = SectorCache(sets=4, ways=2)
        c.insert(block(0, 2, 5), no_evict)
        with pytest.raises(SimulationError):
            c.insert(block(0, 4, 6), no_evict)

    def test_remove_frees_empty_frame(self):
        c = SectorCache(sets=1, ways=1)
        b = block(0, 0, 3)
        c.insert(b, no_evict)
        c.remove(b)
        # The tag is free again: a different region allocates with no victim.
        c.insert(block(1, 0, 0), no_evict)
        assert len(c) == 1

    def test_remove_nonresident_raises(self):
        with pytest.raises(SimulationError):
            SectorCache(sets=2, ways=1).remove(block(0, 0, 0))


class TestFrameEviction:
    def test_tag_conflict_evicts_whole_frame(self):
        c = SectorCache(sets=1, ways=1)
        c.insert(block(0, 0, 1), no_evict)
        c.insert(block(0, 5, 7), no_evict)
        victims = []
        c.insert(block(1, 0, 0), victims.append)
        assert sorted(v.range.start for v in victims) == [0, 5]
        assert c.blocks_of(0) == []

    def test_lru_frame_chosen(self):
        c = SectorCache(sets=1, ways=2)
        c.insert(block(0, 0, 0), no_evict)
        c.insert(block(1, 0, 0), no_evict)
        c.lookup(0, 0)  # refresh region 0
        victims = []
        c.insert(block(2, 0, 0), victims.append)
        assert victims[0].region == 1

    def test_ways_bound_respected(self):
        c = SectorCache(sets=2, ways=2)
        for region in (0, 2, 4):  # all set 0
            c.insert(block(region, 0, 0), lambda v: None)
        c.check_integrity()
        assert len(c._sets[0]) == 2


class TestEngineIntegration:
    def make(self, kind=ProtocolKind.PROTOZOA_MW):
        from repro.system.machine import build_protocol
        cfg = SystemConfig(protocol=kind, cores=4,
                           l1_organization=L1Organization.SECTOR,
                           check_invariants=True, check_values=True)
        return build_protocol(cfg)

    def test_engine_selects_sector_cache(self):
        p = self.make()
        assert isinstance(p.l1s[0], SectorCache)

    def test_false_sharing_still_eliminated(self):
        p = self.make()
        base = 16 * 64
        for _ in range(30):
            p.write(0, base)
            p.write(1, base + 56)
        assert p.stats.misses <= 4  # two cold misses per writer at most

    def test_mesi_never_uses_sector_cache(self):
        from repro.memory.fixed_cache import FixedCache
        from repro.system.machine import build_protocol
        cfg = SystemConfig(protocol=ProtocolKind.MESI, cores=2,
                           l1_organization=L1Organization.SECTOR)
        assert isinstance(build_protocol(cfg).l1s[0], FixedCache)

    def test_random_stress_on_sector(self):
        from repro.verification.random_tester import RandomTester
        cfg = SystemConfig(protocol=ProtocolKind.PROTOZOA_SW, cores=4,
                           l1_organization=L1Organization.SECTOR)
        report = RandomTester(cfg, regions=10, seed=3, same_set=True,
                              check_every=16).run(1500)
        assert report.evictions > 0  # frame evictions exercised
