"""Main memory must retain dirty data across L2 capacity recalls."""

from repro.common.wordrange import WordRange
from repro.memory.backing import L2Store


def test_dirty_data_survives_recall_and_refetch():
    l2 = L2Store(8, capacity_regions=1)
    l2.ensure_present(0)
    l2.patch(0, WordRange(2, 3), [22, 33])
    l2.ensure_present(1)  # recalls region 0 to memory
    assert not l2.present(0)
    l2.ensure_present(0)  # refetch from memory
    assert l2.read(0, WordRange(2, 3)) == [22, 33]
    assert l2.read(0, WordRange(0, 1)) == [0, 0]


def test_clean_recall_needs_no_memory_image():
    l2 = L2Store(8, capacity_regions=1)
    l2.ensure_present(0)
    l2.ensure_present(1)
    assert l2.memory_writebacks == 0
    l2.ensure_present(0)
    assert l2.read(0, WordRange(0, 7)) == [0] * 8


def test_repeated_recalls_keep_latest_image():
    l2 = L2Store(8, capacity_regions=1)
    for value in (1, 2, 3):
        l2.ensure_present(0)
        l2.patch(0, WordRange(0, 0), [value])
        l2.ensure_present(1)  # recall region 0
    l2.ensure_present(0)
    assert l2.read(0, WordRange(0, 0)) == [3]
