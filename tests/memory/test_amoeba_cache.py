"""Tests for the variable-granularity Amoeba cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.common.wordrange import WordRange
from repro.memory.amoeba_cache import AmoebaCache
from repro.memory.block import Block, LineState


def block(region, start, end, state=LineState.S):
    rng = WordRange(start, end)
    return Block(region, rng, state, [0] * rng.width)


def cache(sets=4, set_bytes=288):
    return AmoebaCache(sets=sets, set_bytes=set_bytes, tag_bytes=8)


def no_evict(victim):
    raise AssertionError(f"unexpected eviction of {victim!r}")


class TestBasics:
    def test_insert_and_lookup(self):
        c = cache()
        b = block(0, 2, 5)
        c.insert(b, no_evict)
        assert c.lookup(0, 3) is b
        assert c.lookup(0, 6) is None
        assert c.lookup(4, 3) is None  # different region, same set

    def test_set_budget_too_small_rejected(self):
        with pytest.raises(SimulationError):
            AmoebaCache(sets=4, set_bytes=8, tag_bytes=8)

    def test_blocks_of_region(self):
        c = cache()
        a, b = block(0, 0, 1), block(0, 4, 7)
        c.insert(a, no_evict)
        c.insert(b, no_evict)
        assert set(map(id, c.blocks_of(0))) == {id(a), id(b)}

    def test_same_set_regions_are_isolated(self):
        c = cache(sets=4)
        c.insert(block(1, 0, 3), no_evict)
        c.insert(block(5, 0, 3), no_evict)  # 5 % 4 == 1: same set
        assert len(c.blocks_of(1)) == 1
        assert len(c.blocks_of(5)) == 1

    def test_overlap_insert_rejected(self):
        c = cache()
        c.insert(block(0, 2, 5), no_evict)
        with pytest.raises(SimulationError):
            c.insert(block(0, 5, 7), no_evict)

    def test_adjacent_blocks_allowed(self):
        c = cache()
        c.insert(block(0, 0, 3), no_evict)
        c.insert(block(0, 4, 7), no_evict)
        assert len(c.blocks_of(0)) == 2

    def test_remove_nonresident_raises(self):
        c = cache()
        with pytest.raises(SimulationError):
            c.remove(block(0, 0, 1))


class TestOverlapQueries:
    def test_overlapping(self):
        c = cache()
        a = block(0, 0, 2)
        b = block(0, 5, 7)
        c.insert(a, no_evict)
        c.insert(b, no_evict)
        hits = c.overlapping(0, WordRange(2, 5))
        assert set(map(id, hits)) == {id(a), id(b)}
        assert c.overlapping(0, WordRange(3, 4)) == []

    def test_covered_mask(self):
        c = cache()
        c.insert(block(0, 0, 1), no_evict)
        c.insert(block(0, 6, 7), no_evict)
        assert c.covered_mask(0, WordRange(0, 7)) == 0b11000011
        assert c.covered_mask(0, WordRange(1, 6)) == 0b01000010


class TestEviction:
    def test_lru_eviction_order(self):
        # One set; 288B budget holds 4 full-region blocks (72B each).
        c = cache(sets=1)
        blocks = [block(r, 0, 7) for r in range(4)]
        for b in blocks:
            c.insert(b, no_evict)
        c.lookup(0, 0)  # refresh region 0: region 1 becomes LRU
        victims = []
        c.insert(block(4, 0, 7), victims.append)
        assert [v.region for v in victims] == [1]

    def test_evicts_until_fits(self):
        c = cache(sets=1, set_bytes=72)  # fits one full block or 4 one-word
        for w in range(4):
            c.insert(block(0, w, w), no_evict)
        victims = []
        c.insert(block(1, 0, 7), victims.append)
        assert len(victims) == 4
        assert len(c) == 1

    def test_occupancy_tracks_bytes(self):
        c = cache(sets=1)
        c.insert(block(0, 0, 0), no_evict)  # 16B
        c.insert(block(0, 4, 6), no_evict)  # 32B
        assert c.occupancy(0) == 48
        c.remove(c.lookup(0, 0))
        assert c.occupancy(0) == 32

    def test_utilization(self):
        c = cache(sets=1, set_bytes=288)
        assert c.utilization() == 0.0
        c.insert(block(0, 0, 7), no_evict)
        assert c.utilization() == pytest.approx(72 / 288)


class TestLRUBookkeeping:
    def test_peek_does_not_refresh(self):
        c = cache(sets=1, set_bytes=144)
        a = block(0, 0, 7)
        b = block(1, 0, 7)
        c.insert(a, no_evict)
        c.insert(b, no_evict)
        c.peek(0, 0)  # must NOT refresh region 0
        victims = []
        c.insert(block(2, 0, 7), victims.append)
        assert victims[0] is a


class TestIntegrity:
    def test_check_integrity_clean(self):
        c = cache()
        c.insert(block(0, 0, 3), no_evict)
        c.insert(block(0, 4, 7), no_evict)
        c.check_integrity()

    def test_check_integrity_detects_drift(self):
        c = cache()
        c.insert(block(0, 0, 3), no_evict)
        c._occupancy[0] += 1
        with pytest.raises(SimulationError):
            c.check_integrity()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 7),  # region
            st.integers(0, 7),  # start
            st.integers(1, 8),  # width
        ),
        min_size=1,
        max_size=60,
    )
)
def test_random_insert_remove_maintains_invariants(ops):
    """Property: arbitrary insert sequences keep budget/overlap invariants."""
    c = AmoebaCache(sets=2, set_bytes=144, tag_bytes=8)
    for region, start, width in ops:
        end = min(start + width - 1, 7)
        rng = WordRange(start, end)
        for old in c.overlapping(region, rng):
            c.remove(old)  # caller contract: clear overlaps first
        c.insert(Block(region, rng, LineState.S, [0] * rng.width), lambda v: None)
        c.check_integrity()
    assert c.utilization() <= 1.0
