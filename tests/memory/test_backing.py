"""Tests for the shared L2 region store and memory model."""

import pytest

from repro.common.errors import SimulationError
from repro.common.wordrange import WordRange
from repro.memory.backing import L2Store


class TestPresence:
    def test_first_touch_is_cold_miss(self):
        l2 = L2Store(8)
        assert not l2.present(3)
        assert l2.ensure_present(3) is True
        assert l2.present(3)
        assert l2.ensure_present(3) is False
        assert l2.cold_misses == 1

    def test_initial_contents_zero(self):
        l2 = L2Store(8)
        l2.ensure_present(0)
        assert l2.read(0, WordRange(0, 7)) == [0] * 8


class TestData:
    def test_patch_and_read_back(self):
        l2 = L2Store(8)
        l2.ensure_present(1)
        l2.patch(1, WordRange(2, 4), [20, 30, 40])
        assert l2.read(1, WordRange(2, 4)) == [20, 30, 40]
        assert l2.read(1, WordRange(0, 7)) == [0, 0, 20, 30, 40, 0, 0, 0]
        assert l2.is_dirty(1)

    def test_patch_size_mismatch(self):
        l2 = L2Store(8)
        l2.ensure_present(1)
        with pytest.raises(SimulationError):
            l2.patch(1, WordRange(2, 4), [1, 2])


class TestCapacity:
    def test_lru_recall_on_overflow(self):
        recalled = []
        l2 = L2Store(8, capacity_regions=2)
        l2.recall_hook = recalled.append
        l2.ensure_present(0)
        l2.ensure_present(1)
        l2.ensure_present(2)
        assert recalled == [0]
        assert not l2.present(0)
        assert l2.capacity_recalls == 1

    def test_recency_updated_by_read(self):
        l2 = L2Store(8, capacity_regions=2)
        recalled = []
        l2.recall_hook = recalled.append
        l2.ensure_present(0)
        l2.ensure_present(1)
        l2.read(0, WordRange(0, 0))  # refresh region 0
        l2.ensure_present(2)
        assert recalled == [1]

    def test_in_flight_region_never_recalled(self):
        l2 = L2Store(8, capacity_regions=1)
        l2.ensure_present(0)
        l2.ensure_present(1)  # recalls 0, keeps 1
        assert l2.present(1)
        assert not l2.present(0)

    def test_dirty_recall_counts_memory_writeback(self):
        l2 = L2Store(8, capacity_regions=1)
        l2.ensure_present(0)
        l2.patch(0, WordRange(0, 0), [9])
        l2.ensure_present(1)
        assert l2.memory_writebacks == 1

    def test_evict_absent_raises(self):
        with pytest.raises(SimulationError):
            L2Store(8).evict(3)

    def test_len_tracks_regions(self):
        l2 = L2Store(8)
        l2.ensure_present(0)
        l2.ensure_present(1)
        assert len(l2) == 2
