"""Tests for the spatial-granularity predictors."""

from repro.common.params import PredictorKind
from repro.common.wordrange import WordRange
from repro.memory.predictor import (
    PCHistoryPredictor,
    SingleWordPredictor,
    WholeRegionPredictor,
    make_predictor,
)

WPR = 8


class TestDegenerates:
    def test_whole_region_always_full(self):
        p = WholeRegionPredictor()
        assert p.predict(0x10, 0, WordRange(3, 3), False, WPR) == WordRange(0, 7)

    def test_single_word_returns_request(self):
        p = SingleWordPredictor()
        assert p.predict(0x10, 0, WordRange(3, 4), True, WPR) == WordRange(3, 4)

    def test_train_is_noop(self):
        SingleWordPredictor().train(0x10, 3, 0b1000, 0b1111, WPR)


class TestPCHistory:
    def test_cold_miss_defaults_to_full_region(self):
        p = PCHistoryPredictor()
        assert p.predict(0x10, 0, WordRange(2, 2), False, WPR) == WordRange(0, 7)
        assert p.cold == 1

    def test_learns_single_word_pattern(self):
        p = PCHistoryPredictor()
        # A block allocated by pc=0x10 at word 3 died having touched only word 3.
        p.train(0x10, 3, touched_mask=0b1000, fetched_mask=0xFF, words_per_region=WPR)
        assert p.predict(0x10, 0, WordRange(5, 5), False, WPR) == WordRange(5, 5)
        assert p.hits == 1

    def test_pattern_is_relative_to_miss_word(self):
        p = PCHistoryPredictor()
        # Touched miss word + next word (offsets 0 and +1).
        p.train(0x10, 2, touched_mask=0b1100, fetched_mask=0xFF, words_per_region=WPR)
        assert p.predict(0x10, 0, WordRange(4, 4), False, WPR) == WordRange(4, 5)

    def test_prediction_clamped_to_region(self):
        p = PCHistoryPredictor()
        p.train(0x10, 2, touched_mask=0b1100, fetched_mask=0xFF, words_per_region=WPR)
        assert p.predict(0x10, 0, WordRange(7, 7), False, WPR) == WordRange(7, 7)

    def test_learns_full_region_streaming(self):
        p = PCHistoryPredictor()
        p.train(0x20, 0, touched_mask=0xFF, fetched_mask=0xFF, words_per_region=WPR)
        assert p.predict(0x20, 0, WordRange(0, 0), False, WPR) == WordRange(0, 7)

    def test_distinct_pcs_learn_independently(self):
        p = PCHistoryPredictor()
        p.train(0x10, 0, touched_mask=0b1, fetched_mask=0xFF, words_per_region=WPR)
        p.train(0x11, 0, touched_mask=0xFF, fetched_mask=0xFF, words_per_region=WPR)
        narrow = p.predict(0x10, 0, WordRange(0, 0), False, WPR)
        wide = p.predict(0x11, 0, WordRange(0, 0), False, WPR)
        assert narrow == WordRange(0, 0)
        assert wide == WordRange(0, 7)

    def test_confidence_resists_one_anomaly(self):
        p = PCHistoryPredictor()
        for _ in range(3):
            p.train(0x10, 0, touched_mask=0b1, fetched_mask=0xFF, words_per_region=WPR)
        # One anomalous wide observation blends (widens) but a following
        # narrow observation must not be wiped out either.
        p.train(0x10, 0, touched_mask=0xFF, fetched_mask=0xFF, words_per_region=WPR)
        got = p.predict(0x10, 0, WordRange(0, 0), False, WPR)
        assert got.contains(0)

    def test_untouched_death_trains_miss_word(self):
        p = PCHistoryPredictor()
        p.train(0x10, 4, touched_mask=0, fetched_mask=0xFF, words_per_region=WPR)
        assert p.predict(0x10, 0, WordRange(4, 4), False, WPR) == WordRange(4, 4)

    def test_prediction_always_covers_request_word(self):
        p = PCHistoryPredictor()
        p.train(0x10, 0, touched_mask=0b1, fetched_mask=0xFF, words_per_region=WPR)
        for word in range(WPR):
            got = p.predict(0x10, 0, WordRange(word, word), False, WPR)
            assert got.contains(word)


class TestInvalidationTraining:
    """Invalidation deaths are truncated observations: union, don't replace."""

    def test_invalidation_widens_pattern(self):
        p = PCHistoryPredictor()
        p.train(0x10, 0, 0b1, 0xFF, WPR)  # eviction: 1 word
        p.train(0x10, 0, 0b111, 0xFF, WPR, invalidated=True)
        assert p.predict(0x10, 0, WordRange(0, 0), False, WPR) == WordRange(0, 2)

    def test_invalidation_never_narrows(self):
        p = PCHistoryPredictor()
        p.train(0x10, 0, 0b111, 0xFF, WPR)  # eviction: 3 words
        for _ in range(5):
            p.train(0x10, 0, 0b1, 0xFF, WPR, invalidated=True)  # truncated
        assert p.predict(0x10, 0, WordRange(0, 0), False, WPR) == WordRange(0, 2)

    def test_eviction_can_reset_after_widening(self):
        p = PCHistoryPredictor()
        p.train(0x10, 0, 0b1, 0xFF, WPR)
        p.train(0x10, 0, 0b1111, 0xFF, WPR, invalidated=True)
        # Repeated complete observations of the narrow pattern win back.
        for _ in range(4):
            p.train(0x10, 0, 0b1, 0xFF, WPR)
        assert p.predict(0x10, 0, WordRange(0, 0), False, WPR) == WordRange(0, 0)

    def test_pure_invalidation_site_stays_narrow(self):
        # A falsely-shared counter only ever dies by invalidation with its
        # own word touched: the prediction must stay one word (this is what
        # lets Protozoa-MW eliminate the false sharing).
        p = PCHistoryPredictor()
        for _ in range(10):
            p.train(0x20, 3, 0b1000, 0xFF, WPR, invalidated=True)
        assert p.predict(0x20, 0, WordRange(5, 5), True, WPR) == WordRange(5, 5)


class TestFactory:
    def test_factory_kinds(self):
        assert isinstance(make_predictor(PredictorKind.PC_HISTORY), PCHistoryPredictor)
        assert isinstance(make_predictor(PredictorKind.WHOLE_REGION), WholeRegionPredictor)
        assert isinstance(make_predictor(PredictorKind.SINGLE_WORD), SingleWordPredictor)
