"""Tests for the fixed-granularity (MESI baseline) cache."""

import pytest

from repro.common.errors import SimulationError
from repro.common.wordrange import WordRange
from repro.memory.block import Block, LineState
from repro.memory.fixed_cache import FixedCache


def block(region, state=LineState.S):
    rng = WordRange(0, 7)
    return Block(region, rng, state, [0] * 8)


def no_evict(victim):
    raise AssertionError("unexpected eviction")


class TestBasics:
    def test_insert_lookup(self):
        c = FixedCache(sets=4, ways=2)
        b = block(3)
        c.insert(b, no_evict)
        assert c.lookup(3, 5) is b
        assert c.lookup(7, 0) is None

    def test_geometry_validation(self):
        with pytest.raises(SimulationError):
            FixedCache(sets=0, ways=2)

    def test_duplicate_region_rejected(self):
        c = FixedCache(sets=4, ways=2)
        c.insert(block(0), no_evict)
        with pytest.raises(SimulationError):
            c.insert(block(0), no_evict)

    def test_remove(self):
        c = FixedCache(sets=4, ways=2)
        b = block(0)
        c.insert(b, no_evict)
        c.remove(b)
        assert c.lookup(0, 0) is None
        with pytest.raises(SimulationError):
            c.remove(b)


class TestAssociativity:
    def test_ways_bound(self):
        c = FixedCache(sets=2, ways=2)
        c.insert(block(0), no_evict)
        c.insert(block(2), no_evict)  # same set (0)
        victims = []
        c.insert(block(4), victims.append)
        assert [v.region for v in victims] == [0]
        assert len(c.blocks_of(2)) == 1

    def test_lru_respects_lookups(self):
        c = FixedCache(sets=1, ways=2)
        c.insert(block(0), no_evict)
        c.insert(block(1), no_evict)
        c.lookup(0, 0)
        victims = []
        c.insert(block(2), victims.append)
        assert victims[0].region == 1

    def test_different_sets_do_not_interfere(self):
        c = FixedCache(sets=2, ways=1)
        c.insert(block(0), no_evict)
        c.insert(block(1), no_evict)  # set 1
        assert len(c) == 2


class TestQueries:
    def test_covered_mask_full_or_none(self):
        c = FixedCache(sets=2, ways=1)
        c.insert(block(0), no_evict)
        assert c.covered_mask(0, WordRange(2, 4)) == WordRange(2, 4).to_mask()
        assert c.covered_mask(1, WordRange(2, 4)) == 0

    def test_overlapping(self):
        c = FixedCache(sets=2, ways=1)
        b = block(0)
        c.insert(b, no_evict)
        assert c.overlapping(0, WordRange(3, 3)) == [b]

    def test_integrity(self):
        c = FixedCache(sets=2, ways=2)
        c.insert(block(0), no_evict)
        c.insert(block(1), no_evict)
        c.check_integrity()
