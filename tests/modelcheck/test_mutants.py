"""Tests for the seeded-bug mutation audit."""

import pytest

from repro.common.params import ProtocolKind
from repro.modelcheck.explorer import modelcheck_config
from repro.modelcheck.mutants import MUTANTS, audit, build_mutant, hunt
from repro.system.machine import _PROTOCOLS


class TestRegistry:
    def test_four_known_mutants(self):
        assert set(MUTANTS) == {"skip-invalidation", "drop-writer",
                                "ack-before-writeback", "skip-reader-tracking"}
        for mutant in MUTANTS.values():
            assert mutant.description

    def test_build_mutant_subclasses_the_protocol(self, any_kind):
        config = modelcheck_config(any_kind)
        protocol = build_mutant("drop-writer", config)
        assert isinstance(protocol, _PROTOCOLS[any_kind])

    def test_unknown_mutant_rejected(self):
        config = modelcheck_config(ProtocolKind.MESI)
        with pytest.raises(KeyError):
            build_mutant("drop-directory", config)


class TestHunt:
    def test_detects_and_shrinks(self):
        config = modelcheck_config(ProtocolKind.MESI)
        result = hunt("skip-invalidation", config, depth=3)
        assert result.detected
        assert 1 <= result.shrunk_length <= 3
        assert result.shrunk.extra_meta["mutant"] == "skip-invalidation"

    def test_shrunk_trace_replays(self):
        """The minimal trace must still fail on a fresh mutated engine."""
        from repro.common.errors import ReproError

        config = modelcheck_config(ProtocolKind.PROTOZOA_MW)
        result = hunt("ack-before-writeback", config, depth=3)
        assert result.detected
        protocol = build_mutant("ack-before-writeback", config)
        with pytest.raises(ReproError):
            for op in result.shrunk.ops:
                op.apply(protocol)
                protocol.check_all_invariants()


class TestAudit:
    def test_every_mutant_caught_under_every_protocol(self, any_kind):
        results = audit(any_kind, depth=3)
        assert len(results) == len(MUTANTS)
        for result in results:
            assert result.detected, f"{result.mutant} survived {any_kind}"
            # The ISSUE acceptance bar: shrunk reproducers of at most 8 ops.
            assert 1 <= result.shrunk_length <= 8
