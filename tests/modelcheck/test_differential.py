"""Tests for the MESI-vs-Protozoa differential equivalence checker."""

import pytest

from repro.common.params import ProtocolKind
from repro.modelcheck.differential import DifferentialChecker, observe
from repro.modelcheck.mutants import MUTANTS
from repro.modelcheck.ops import Op

from tests.conftest import make_engine


class TestObserve:
    def test_classifies_misses_and_hits(self):
        p = make_engine(ProtocolKind.MESI, cores=2)
        kind, events = observe(p, Op(0, "R", 0, 0))
        assert kind == "read-miss"
        assert events  # the miss produced coherence messages
        kind, _ = observe(p, Op(0, "R", 0, 0))
        assert kind == "hit"
        kind, _ = observe(p, Op(1, "R", 0, 0))
        assert kind == "read-miss"  # downgrades both copies to S
        kind, _ = observe(p, Op(0, "W", 0, 0))
        assert kind == "upgrade"  # S -> M needs permission, not data
        kind, _ = observe(p, Op(1, "W", 0, 0))
        assert kind == "write-miss"

    def test_hook_removed_afterwards(self):
        p = make_engine(ProtocolKind.MESI, cores=2)
        observe(p, Op(0, "R", 0, 0))
        assert p.trace_hook is None


class TestDifferentialChecker:
    def test_mesi_vs_mesi_rejected(self):
        with pytest.raises(ValueError):
            DifferentialChecker(ProtocolKind.MESI)

    def test_variants_equivalent_exhaustively(self, protozoa_kind):
        checker = DifferentialChecker(protozoa_kind, depth=3)
        result = checker.run_exhaustive()
        assert result.ok, result.divergence and result.divergence.pretty()
        assert result.reference == "mesi"
        assert result.states > 1
        assert result.transitions > 0

    def test_check_sequence_clean(self):
        checker = DifferentialChecker(ProtocolKind.PROTOZOA_MW, depth=3)
        ops = [Op(0, "W", 0, 0), Op(1, "R", 0, 0), Op(1, "W", 0, 0),
               Op(0, "R", 0, 0)]
        assert checker.check_sequence(ops) is None

    def test_seeded_bug_diverges(self, monkeypatch):
        """A mutated variant must be flagged against the MESI reference."""
        from repro.system import machine

        broken = MUTANTS["skip-invalidation"].mutate(
            machine._PROTOCOLS[ProtocolKind.PROTOZOA_MW])
        monkeypatch.setitem(machine._PROTOCOLS, ProtocolKind.PROTOZOA_MW, broken)
        checker = DifferentialChecker(ProtocolKind.PROTOZOA_MW, depth=2)
        result = checker.run_exhaustive()
        assert not result.ok
        text = result.divergence.pretty()
        assert "mesi" in text and "protozoa-mw" in text

    def test_divergence_pretty_shows_both_observations(self):
        from repro.modelcheck.differential import Divergence
        div = Divergence(ops=[Op(0, "W", 0, 0)], reference="mesi",
                         variant="protozoa-sw",
                         obs_reference=("write-miss", ()),
                         obs_variant=("hit", ()))
        text = div.pretty()
        assert "write-miss" in text and "hit" in text
