"""Tests for protocol snapshot/restore and canonical state hashing."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import PredictorKind, ProtocolKind
from repro.system.machine import build_protocol

from tests.conftest import make_engine, region_addr


def drive(p):
    """A short workload touching sharing, upgrades, and dirty data."""
    p.write(0, region_addr(0, 0))
    p.read(1, region_addr(0, 0))
    p.read(1, region_addr(0, 7))
    p.write(1, region_addr(1, 3))
    p.read(0, region_addr(1, 3))


class TestSnapshotRestore:
    def test_roundtrip_restores_canonical_key(self, any_kind):
        p = make_engine(any_kind, cores=2)
        drive(p)
        key = p.canonical_key()
        snap = p.snapshot_state()
        # Diverge: more traffic, then rewind.
        p.write(0, region_addr(2, 5))
        p.write(1, region_addr(0, 0))
        assert p.canonical_key() != key
        p.restore_state(snap)
        assert p.canonical_key() == key
        p.check_all_invariants()

    def test_restore_replays_identically(self, any_kind):
        """After restore, the same op must produce the same abstract state."""
        p = make_engine(any_kind, cores=2)
        drive(p)
        snap = p.snapshot_state()
        p.write(1, region_addr(0, 0))
        key_once = p.canonical_key()
        p.restore_state(snap)
        p.write(1, region_addr(0, 0))
        assert p.canonical_key() == key_once

    def test_snapshot_is_deep(self, any_kind):
        """Mutating the engine must not corrupt an existing snapshot."""
        p = make_engine(any_kind, cores=2)
        p.write(0, region_addr(0, 0))
        key = p.canonical_key()
        snap = p.snapshot_state()
        drive(p)
        p.restore_state(snap)
        assert p.canonical_key() == key

    def test_fresh_engines_share_initial_key(self, any_kind):
        a = make_engine(any_kind, cores=2)
        b = make_engine(any_kind, cores=2)
        assert a.canonical_key() == b.canonical_key()


class TestCanonicalKey:
    def test_key_ignores_value_details_but_sees_staleness(self):
        p = make_engine(ProtocolKind.MESI, cores=2)
        p.write(0, region_addr(0, 0))
        clean = p.canonical_key()
        block = p.l1s[0].peek(0, 0)
        block.data[0] = 424242  # diverge from the golden image
        assert p.canonical_key() != clean  # stale signature changed

    def test_key_is_hashable(self, any_kind):
        p = make_engine(any_kind, cores=2)
        drive(p)
        assert {p.canonical_key()}  # must go into a set without error


class TestSnapshotSafety:
    def test_pc_history_rejected_on_adaptive(self):
        config = dict(cores=2, predictor=PredictorKind.PC_HISTORY)
        p = make_engine(ProtocolKind.PROTOZOA_MW, **config)
        with pytest.raises(ConfigError):
            p.snapshot_state()

    def test_pc_history_fine_on_mesi(self):
        p = make_engine(ProtocolKind.MESI, cores=2,
                        predictor=PredictorKind.PC_HISTORY)
        p.snapshot_state()  # MESI ignores the predictor entirely

    def test_stateless_predictors_accepted(self, protozoa_kind):
        for predictor in (PredictorKind.SINGLE_WORD, PredictorKind.WHOLE_REGION):
            p = make_engine(protozoa_kind, cores=2, predictor=predictor)
            p.snapshot_state()
