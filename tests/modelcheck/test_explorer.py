"""Tests for the bounded-exhaustive explorer."""

from repro.common.params import ProtocolKind
from repro.modelcheck.explorer import Explorer, modelcheck_config
from repro.modelcheck.mutants import build_mutant
from repro.modelcheck.ops import build_alphabet


class TestModelcheckConfig:
    def test_checks_forced_on(self):
        config = modelcheck_config(ProtocolKind.MESI)
        assert config.check_invariants and config.check_values

    def test_tiny_l1_geometry(self):
        config = modelcheck_config(ProtocolKind.PROTOZOA_MW)
        assert config.l1.sets == 1
        big = modelcheck_config(ProtocolKind.PROTOZOA_MW, tiny_l1=False)
        assert big.l1.sets > 1


class TestExplorer:
    def test_clean_protocol_passes(self, any_kind):
        config = modelcheck_config(any_kind)
        result = Explorer(config, depth=3).explore()
        assert result.ok
        assert result.counterexample is None
        assert result.states > 1
        assert result.transitions >= result.states - 1
        assert not result.frontier_truncated

    def test_dedup_prunes_revisits(self):
        """Transitions vastly outnumber distinct states: dedup is working."""
        config = modelcheck_config(ProtocolKind.MESI)
        result = Explorer(config, depth=3).explore()
        assert result.transitions > result.states

    def test_depth_zero_covers_only_initial_state(self):
        config = modelcheck_config(ProtocolKind.MESI)
        result = Explorer(config, depth=0).explore()
        assert result.states == 1
        assert result.transitions == 0

    def test_max_states_truncates(self):
        config = modelcheck_config(ProtocolKind.MESI)
        result = Explorer(config, depth=3, max_states=2).explore()
        assert result.frontier_truncated
        assert result.ok  # truncation is coverage loss, not a failure

    def test_finds_seeded_bug(self, any_kind):
        config = modelcheck_config(any_kind)
        explorer = Explorer(
            config, depth=3,
            build=lambda: build_mutant("skip-invalidation", config),
        )
        result = explorer.explore()
        assert not result.ok
        ce = result.counterexample
        assert ce is not None and len(ce.ops) <= 3
        assert "InvariantViolation" in ce.error or "ProtocolError" in ce.error
        assert "core" in ce.pretty()

    def test_custom_alphabet_respected(self):
        config = modelcheck_config(ProtocolKind.MESI)
        alphabet = build_alphabet(2, 1, config.words_per_region)
        result = Explorer(config, alphabet=alphabet, depth=2).explore()
        assert result.alphabet_size == len(alphabet) == 4
        assert result.ok
