"""Tests for delta-debugging counterexample minimization."""

import io

import pytest

from repro.common.errors import SimulationError
from repro.common.params import ProtocolKind
from repro.modelcheck.explorer import modelcheck_config
from repro.modelcheck.mutants import build_mutant
from repro.modelcheck.ops import Op, read_trace
from repro.modelcheck.shrinker import (
    failure_oracle,
    shrink,
    shrink_counterexample,
)

W0 = Op(0, "W", 0, 0)
R1 = Op(1, "R", 0, 0)
# Noise kept on core 1 and other regions: the model-check L1 is tiny (one
# set), and core-0 noise would evict W0's dirty block — the eviction path
# writes back correctly even in the ack-before-writeback mutant, which
# would defuse the real failure the end-to-end tests rely on.
NOISE = [Op(1, "R", 1, 0), Op(1, "R", 2, 0), Op(1, "R", 3, 0),
         Op(1, "R", 1, 0), Op(1, "R", 4, 0)]


class TestShrink:
    def test_reduces_to_the_failing_core(self):
        # Synthetic oracle: fails iff both W0 and R1 survive, in that order.
        def oracle(ops):
            ops = list(ops)
            return (W0 in ops and R1 in ops
                    and ops.index(W0) < ops.index(R1))

        padded = NOISE[:3] + [W0] + NOISE[3:] + [R1]
        assert shrink(padded, oracle) == [W0, R1]

    def test_one_minimal_result(self):
        def oracle(ops):
            return len(ops) >= 3  # any 3 ops fail

        assert len(shrink(NOISE, oracle)) == 3

    def test_rejects_passing_input(self):
        with pytest.raises(SimulationError):
            shrink(NOISE, lambda ops: False)

    def test_single_op_failure(self):
        assert shrink([W0], lambda ops: True) == [W0]


class TestFailureOracle:
    def test_detects_mutant_failure(self):
        config = modelcheck_config(ProtocolKind.MESI)
        oracle = failure_oracle(
            lambda: build_mutant("ack-before-writeback", config))
        assert oracle([W0, R1])      # stale read trips the value checker
        assert not oracle([W0])      # a lone write is still coherent


class TestShrinkCounterexample:
    def test_end_to_end(self):
        config = modelcheck_config(ProtocolKind.MESI)
        build = lambda: build_mutant("ack-before-writeback", config)
        trace = shrink_counterexample(
            NOISE[:2] + [W0] + NOISE[2:] + [R1], build, "mesi",
            extra_meta={"mutant": "ack-before-writeback"},
        )
        assert len(trace.ops) == 2
        assert trace.error == "InvariantViolation"
        assert "minimal reproducer" in trace.pretty()

    def test_save_roundtrips_through_trace_format(self):
        config = modelcheck_config(ProtocolKind.MESI)
        build = lambda: build_mutant("ack-before-writeback", config)
        trace = shrink_counterexample([W0, R1], build, "mesi",
                                      extra_meta={"mutant": "ack-before-writeback"})
        buf = io.StringIO()
        trace.save(buf)
        buf.seek(0)
        meta, ops = read_trace(buf)
        assert ops == trace.ops
        assert meta["protocol"] == "mesi"
        assert meta["mutant"] == "ack-before-writeback"
        assert meta["error"] == "InvariantViolation"
