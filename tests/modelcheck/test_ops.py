"""Tests for the operation alphabet and replayable trace format."""

import io

import pytest

from repro.common.errors import SimulationError
from repro.modelcheck.ops import (
    Op,
    build_alphabet,
    format_trace,
    read_trace,
    write_trace,
)


class TestOp:
    def test_addr(self):
        assert Op(0, "R", 3, 2).addr(region_bytes=64) == 3 * 64 + 2 * 8

    def test_invalid_kind_rejected(self):
        with pytest.raises(SimulationError):
            Op(0, "X", 0, 0)

    def test_negative_fields_rejected(self):
        with pytest.raises(SimulationError):
            Op(-1, "R", 0, 0)
        with pytest.raises(SimulationError):
            Op(0, "W", 0, 0, span=0)

    def test_encode_decode_roundtrip(self):
        for op in (Op(1, "W", 2, 3, span=2),
                   Op(0, "R", 5, 0, pressure=True)):
            assert Op.decode(op.encode()) == op

    def test_decode_malformed(self):
        for line in ("1 W 2", "1 W 2 3 4 Q", "a W 0 0 1"):
            with pytest.raises(SimulationError):
                Op.decode(line)

    def test_pretty_mentions_span_and_pressure(self):
        assert "words 2-3" in Op(0, "W", 0, 2, span=2).pretty()
        assert "evict pressure" in Op(0, "R", 9, 0, pressure=True).pretty()


class TestAlphabet:
    def test_counts(self):
        # 2 cores x 1 region x 2 words x {R, W} = 8, plus 2 pressure reads.
        alphabet = build_alphabet(2, 1, 8, words=(0, 7),
                                  pressure_regions=1, pressure_stride=4)
        assert len(alphabet) == 10
        pressure = [op for op in alphabet if op.pressure]
        assert len(pressure) == 2
        assert all(op.kind == "R" for op in pressure)
        assert {op.region for op in pressure} == {1}  # regions + 0 * stride

    def test_pressure_stride_spaces_regions(self):
        alphabet = build_alphabet(1, 2, 8, pressure_regions=2,
                                  pressure_stride=16)
        assert {op.region for op in alphabet if op.pressure} == {2, 18}

    def test_spans_exceeding_region_skipped(self):
        alphabet = build_alphabet(1, 1, 8, words=(7,), spans=(1, 2))
        assert all(op.word + op.span <= 8 for op in alphabet)


class TestTraceFormat:
    def test_roundtrip_with_meta(self):
        ops = [Op(0, "W", 0, 0), Op(1, "R", 0, 0, span=2, pressure=True)]
        buf = io.StringIO()
        write_trace(ops, buf, {"protocol": "mesi", "cores": "2"})
        buf.seek(0)
        meta, parsed = read_trace(buf)
        assert parsed == ops
        assert meta["protocol"] == "mesi"
        assert meta["cores"] == "2"

    def test_format_trace_numbers_lines(self):
        text = format_trace([Op(0, "R", 0, 0), Op(1, "W", 0, 0)])
        assert "1. core 0: read" in text
        assert "2. core 1: write" in text
