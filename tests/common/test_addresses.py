"""Tests for byte-address <-> (region, word) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addresses import WORD_BYTES, AddressMap
from repro.common.errors import ConfigError
from repro.common.wordrange import WordRange


class TestConstruction:
    def test_default_region(self):
        amap = AddressMap()
        assert amap.region_bytes == 64
        assert amap.words_per_region == 8

    def test_non_word_multiple_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(region_bytes=60)

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(region_bytes=0)

    @pytest.mark.parametrize("size,words", [(16, 2), (32, 4), (64, 8), (128, 16)])
    def test_sweep_sizes(self, size, words):
        assert AddressMap(size).words_per_region == words


class TestConversions:
    def test_split(self):
        amap = AddressMap(64)
        assert amap.split(0) == (0, 0)
        assert amap.split(63) == (0, 7)
        assert amap.split(64) == (1, 0)
        assert amap.split(130) == (2, 0)

    def test_addr_of_inverts_split(self):
        amap = AddressMap(64)
        addr = amap.addr_of(5, 3)
        assert amap.split(addr) == (5, 3)

    def test_base(self):
        assert AddressMap(64).base(3) == 192

    @given(st.integers(0, 2**40), st.sampled_from([16, 32, 64, 128]))
    def test_roundtrip_property(self, addr, region_bytes):
        amap = AddressMap(region_bytes)
        region, word = amap.split(addr)
        back = amap.addr_of(region, word)
        assert back <= addr < back + WORD_BYTES


class TestAccessRange:
    def test_single_byte(self):
        amap = AddressMap(64)
        assert amap.access_range(17, 1) == (0, WordRange(2, 2))

    def test_unaligned_word_access_spans_two_words(self):
        amap = AddressMap(64)
        assert amap.access_range(20, 8) == (0, WordRange(2, 3))

    def test_aligned_word(self):
        amap = AddressMap(64)
        region, rng = amap.access_range(24, 8)
        assert (region, rng) == (0, WordRange(3, 3))

    def test_multi_word(self):
        amap = AddressMap(64)
        region, rng = amap.access_range(0, 32)
        assert (region, rng) == (0, WordRange(0, 3))

    def test_clamped_at_region_boundary(self):
        amap = AddressMap(64)
        region, rng = amap.access_range(56, 16)  # would spill into next region
        assert region == 0
        assert rng == WordRange(7, 7)

    def test_zero_size_treated_as_one_byte(self):
        amap = AddressMap(64)
        assert amap.access_range(8, 0) == (0, WordRange(1, 1))

    @given(st.integers(0, 2**30), st.integers(1, 64))
    def test_range_always_within_region(self, addr, size):
        amap = AddressMap(64)
        region, rng = amap.access_range(addr, size)
        assert 0 <= rng.start <= rng.end < amap.words_per_region
        assert amap.region_of(addr) == region
        assert rng.contains(amap.word_of(addr))

    def test_full_range(self):
        assert AddressMap(64).full_range() == WordRange(0, 7)
        assert AddressMap(16).full_range() == WordRange(0, 1)
