"""Tests for the system configuration (Table 4 defaults and validation)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    CacheGeometry,
    L2Config,
    NetworkConfig,
    PredictorKind,
    ProtocolKind,
    SystemConfig,
)


class TestDefaults:
    def test_table4_machine(self):
        cfg = SystemConfig()
        assert cfg.cores == 16
        assert cfg.region_bytes == 64
        assert cfg.l1.sets == 256
        assert cfg.l1.set_bytes == 288
        assert cfg.l1.hit_latency == 2
        assert cfg.l2.tiles == 16
        assert cfg.l2.hit_latency == 14
        assert cfg.network.mesh_width == 4
        assert cfg.network.flit_bytes == 16
        assert cfg.network.link_latency == 2
        assert cfg.memory_latency == 300

    def test_words_per_region(self):
        assert SystemConfig().words_per_region == 8

    def test_l2_capacity(self):
        assert L2Config().capacity_bytes == 32 * 1024 * 1024

    def test_amoeba_capacity(self):
        assert CacheGeometry().amoeba_capacity == 256 * 288


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(cores=0)

    def test_too_many_cores_for_mesh(self):
        with pytest.raises(ConfigError):
            SystemConfig(cores=17)

    def test_block_must_match_region(self):
        with pytest.raises(ConfigError):
            SystemConfig(block_bytes=32)

    def test_non_word_region_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(region_bytes=62, block_bytes=62)

    def test_bad_mesh(self):
        with pytest.raises(ConfigError):
            NetworkConfig(mesh_width=0)

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            CacheGeometry(sets=0)


class TestProtocolKind:
    def test_adaptive_storage_flags(self):
        assert not ProtocolKind.MESI.adaptive_storage
        assert ProtocolKind.PROTOZOA_SW.adaptive_storage
        assert ProtocolKind.PROTOZOA_MW.adaptive_storage

    def test_short_names(self):
        assert ProtocolKind.MESI.short_name == "MESI"
        assert ProtocolKind.PROTOZOA_SW_MR.short_name == "SW+MR"


class TestDerivedConfigs:
    def test_with_protocol(self):
        cfg = SystemConfig().with_protocol(ProtocolKind.PROTOZOA_MW)
        assert cfg.protocol is ProtocolKind.PROTOZOA_MW
        assert cfg.block_bytes == cfg.region_bytes

    def test_with_block_bytes_tracks_region(self):
        cfg = SystemConfig().with_block_bytes(16)
        assert cfg.block_bytes == 16
        assert cfg.region_bytes == 16
        assert cfg.words_per_region == 2

    def test_with_block_bytes_rejected_for_protozoa(self):
        cfg = SystemConfig(protocol=ProtocolKind.PROTOZOA_SW)
        with pytest.raises(ConfigError):
            cfg.with_block_bytes(16)

    @pytest.mark.parametrize("block,expected_sets", [(16, 768), (32, 460), (64, 256), (128, 135)])
    def test_fixed_sets_capacity_matched(self, block, expected_sets):
        geom = CacheGeometry()
        assert geom.fixed_sets(block) == expected_sets

    def test_fixed_sets_block_too_large(self):
        with pytest.raises(ConfigError):
            CacheGeometry(sets=1, set_bytes=16).fixed_sets(4096)


class TestPredictorKind:
    def test_three_kinds(self):
        assert {p.value for p in PredictorKind} == {
            "pc-history", "whole-region", "single-word",
        }
