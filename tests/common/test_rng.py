"""Tests for deterministic seeding helpers."""

from repro.common.rng import derive_seed, make_rng


def test_derive_seed_deterministic():
    assert derive_seed("a", 1) == derive_seed("a", 1)


def test_derive_seed_distinguishes_parts():
    assert derive_seed("a", 1) != derive_seed("a", 2)
    assert derive_seed("ab", "c") != derive_seed("a", "bc")


def test_make_rng_reproducible_streams():
    a = make_rng("x", 7)
    b = make_rng("x", 7)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_make_rng_independent_streams():
    a = make_rng("x", 1)
    b = make_rng("x", 2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
