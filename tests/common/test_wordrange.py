"""Unit and property tests for WordRange interval arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.wordrange import (
    WordRange,
    mask_to_ranges,
    popcount,
    union_mask,
)

ranges = st.integers(0, 7).flatmap(
    lambda s: st.integers(s, 7).map(lambda e: WordRange(s, e))
)


class TestConstruction:
    def test_single_word(self):
        r = WordRange(3, 3)
        assert r.width == 1
        assert list(r.words()) == [3]

    def test_full_region(self):
        assert WordRange.full(8) == WordRange(0, 7)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            WordRange(-1, 3)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            WordRange(5, 2)

    def test_immutable(self):
        r = WordRange(1, 2)
        with pytest.raises(AttributeError):
            r.start = 0

    def test_repr_and_str(self):
        assert repr(WordRange(1, 3)) == "WordRange(1, 3)"
        assert str(WordRange(1, 3)) == "[1-3]"


class TestQueries:
    def test_contains_boundaries(self):
        r = WordRange(2, 5)
        assert r.contains(2) and r.contains(5)
        assert not r.contains(1) and not r.contains(6)

    def test_covers(self):
        assert WordRange(0, 7).covers(WordRange(3, 4))
        assert not WordRange(3, 4).covers(WordRange(0, 7))
        assert WordRange(3, 4).covers(WordRange(3, 4))

    def test_overlaps_adjacent_ranges_do_not(self):
        assert not WordRange(0, 3).overlaps(WordRange(4, 7))
        assert WordRange(0, 4).overlaps(WordRange(4, 7))

    def test_adjacent(self):
        assert WordRange(0, 3).adjacent(WordRange(4, 7))
        assert WordRange(4, 7).adjacent(WordRange(0, 3))
        assert not WordRange(0, 3).adjacent(WordRange(5, 7))
        assert not WordRange(0, 4).adjacent(WordRange(4, 7))


class TestCombining:
    def test_intersect_disjoint_is_none(self):
        assert WordRange(0, 1).intersect(WordRange(3, 5)) is None

    def test_intersect_partial(self):
        assert WordRange(0, 4).intersect(WordRange(3, 7)) == WordRange(3, 4)

    def test_span_fills_gap(self):
        assert WordRange(0, 1).span(WordRange(5, 6)) == WordRange(0, 6)

    def test_subtract_middle_splits(self):
        parts = WordRange(0, 7).subtract(WordRange(3, 4))
        assert parts == [WordRange(0, 2), WordRange(5, 7)]

    def test_subtract_disjoint_returns_self(self):
        assert WordRange(0, 2).subtract(WordRange(5, 7)) == [WordRange(0, 2)]

    def test_subtract_total_is_empty(self):
        assert WordRange(3, 4).subtract(WordRange(0, 7)) == []


class TestMasks:
    def test_to_mask(self):
        assert WordRange(0, 7).to_mask() == 0xFF
        assert WordRange(2, 3).to_mask() == 0b1100

    def test_spanning_mask(self):
        assert WordRange.spanning_mask(0b0110) == WordRange(1, 2)
        assert WordRange.spanning_mask(0b1000001) == WordRange(0, 6)
        assert WordRange.spanning_mask(0) is None

    def test_mask_to_ranges(self):
        assert mask_to_ranges(0b1011) == [WordRange(0, 1), WordRange(3, 3)]
        assert mask_to_ranges(0) == []

    def test_union_mask(self):
        assert union_mask([WordRange(0, 1), WordRange(3, 3)]) == 0b1011

    def test_popcount(self):
        assert popcount(0b1011) == 3
        assert popcount(0) == 0


class TestHashing:
    def test_equal_ranges_hash_equal(self):
        assert hash(WordRange(1, 3)) == hash(WordRange(1, 3))
        assert WordRange(1, 3) == WordRange(1, 3)

    def test_usable_as_dict_key(self):
        d = {WordRange(0, 1): "a"}
        assert d[WordRange(0, 1)] == "a"

    def test_not_equal_to_tuple(self):
        assert WordRange(1, 3) != (1, 3)


class TestProperties:
    @given(ranges, ranges)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(ranges, ranges)
    def test_intersect_matches_mask_and(self, a, b):
        inter = a.intersect(b)
        mask = a.to_mask() & b.to_mask()
        if inter is None:
            assert mask == 0
        else:
            assert inter.to_mask() == mask

    @given(ranges, ranges)
    def test_span_covers_both(self, a, b):
        s = a.span(b)
        assert s.covers(a) and s.covers(b)

    @given(ranges, ranges)
    def test_subtract_disjoint_from_other(self, a, b):
        for piece in a.subtract(b):
            assert not piece.overlaps(b)
            assert a.covers(piece)

    @given(ranges, ranges)
    def test_subtract_preserves_words(self, a, b):
        kept = set()
        for piece in a.subtract(b):
            kept.update(piece.words())
        expected = set(a.words()) - set(b.words())
        assert kept == expected

    @given(ranges)
    def test_mask_roundtrip(self, a):
        assert mask_to_ranges(a.to_mask()) == [a]

    @given(st.integers(0, 255))
    def test_mask_to_ranges_partition(self, mask):
        pieces = mask_to_ranges(mask)
        assert union_mask(pieces) == mask
        for x, y in zip(pieces, pieces[1:]):
            assert x.end + 1 < y.start  # maximal and ordered
