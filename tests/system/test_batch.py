"""Differential tests for the batched packed-trace issue loop.

The contract of :mod:`repro.system.batch` is *bit identity*: for every
eligible trace, ``simulate(..., batch=True)`` must produce the same
:class:`RunStats` as the scalar reference loop, field for field.  These
tests sweep that equality across protocols, workloads, and the edge
cases (truncation, single core, forced pure-Python derive, the decline
conditions) rather than asserting anything about the batched loop's
internals.
"""

from __future__ import annotations

import pytest

from repro.common.params import ProtocolKind, SystemConfig
from repro.system import batch as batch_mod
from repro.system.machine import simulate
from repro.trace.packed import PackedTrace
from repro.trace.workloads import build_streams

from tests.conftest import ALL_KINDS

WORKLOADS = ("kmeans", "histogram", "linear-regression", "fft")


def packed(workload: str, cores: int = 4, per_core: int = 300,
           seed: int = 0) -> PackedTrace:
    return PackedTrace.from_streams(
        build_streams(workload, cores=cores, per_core=per_core, seed=seed))


def config_for(kind: ProtocolKind, cores: int = 4) -> SystemConfig:
    # check_values=False: golden-value tracking is a batch decline
    # condition, and the differential here is against the scalar loop's
    # counters, which do not depend on it.
    return SystemConfig(protocol=kind, cores=cores, check_values=False)


def both(trace: PackedTrace, config: SystemConfig, **kwargs):
    scalar = simulate(trace, config, batch=False, **kwargs).stats.to_dict()
    batched = simulate(trace, config, batch=True, **kwargs).stats.to_dict()
    return scalar, batched


class TestDifferential:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_batch_matches_scalar(self, kind, workload):
        scalar, batched = both(packed(workload), config_for(kind))
        assert batched == scalar

    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_truncation_matches_scalar(self, kind):
        # max_accesses lands mid-trace: the executed prefix (and the
        # truncated flag) must match the scalar interleaving exactly.
        scalar, batched = both(packed("kmeans"), config_for(kind),
                               max_accesses=333)
        assert batched == scalar
        assert batched["truncated"] is True

    def test_single_core_trace(self):
        trace = packed("histogram", cores=1, per_core=400)
        scalar, batched = both(trace, config_for(ProtocolKind.MESI, cores=1))
        assert batched == scalar

    def test_all_hard_events_trace(self):
        # linear-regression is ~95% shared-and-written events: run-ahead
        # stretches are nearly empty and the one-event in-order path
        # carries the run.  Identity must hold there too.
        scalar, batched = both(packed("linear-regression"),
                               config_for(ProtocolKind.PROTOZOA_MW))
        assert batched == scalar

    def test_pure_python_derive_matches(self, monkeypatch):
        # Force the no-numpy derive path (what CI without numpy runs) and
        # re-check identity end to end on a fresh, unmemoized trace.
        from repro.trace import derived

        monkeypatch.setattr(derived, "_np", None)
        monkeypatch.setattr(derived, "_np_probed", True)
        scalar, batched = both(packed("kmeans", seed=7),
                               config_for(ProtocolKind.PROTOZOA_SW))
        assert batched == scalar


class _Boom:
    """Sentinel runner: constructing it means batching was NOT declined."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("batched runner ran where it should decline")


class TestEligibility:
    def test_env_flag_off_declines(self, monkeypatch):
        monkeypatch.setenv(batch_mod.ENV_FLAG, "0")
        monkeypatch.setattr(batch_mod, "_BatchRunner", _Boom)
        result = simulate(packed("kmeans"), config_for(ProtocolKind.MESI))
        assert result.stats.accesses == 4 * 300

    def test_explicit_false_declines(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_BatchRunner", _Boom)
        simulate(packed("kmeans"), config_for(ProtocolKind.MESI), batch=False)

    def test_check_values_declines(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_BatchRunner", _Boom)
        config = SystemConfig(protocol=ProtocolKind.MESI, cores=4,
                              check_values=True)
        simulate(packed("kmeans"), config, batch=True)

    def test_low_reuse_declines_by_default_but_not_forced(self, monkeypatch):
        # One access per (core, region) pair: reuse is 1.0, far below
        # MIN_REUSE, so default mode must take the scalar loop ...
        from repro.trace.events import MemAccess

        streams = [[MemAccess.read((c * 100 + i) * 64) for i in range(50)]
                   for c in range(4)]
        trace = PackedTrace.from_streams(streams)
        config = config_for(ProtocolKind.MESI)
        monkeypatch.setattr(batch_mod, "_BatchRunner", _Boom)
        simulate(trace, config)
        monkeypatch.undo()
        # ... while batch=True bypasses the heuristic and stays identical.
        scalar, batched = both(trace, config)
        assert batched == scalar

    def test_unpacked_streams_decline(self, monkeypatch):
        from repro.trace.events import MemAccess

        monkeypatch.setattr(batch_mod, "_BatchRunner", _Boom)
        streams = [[MemAccess.read(8 * i) for i in range(10)]]
        result = simulate(streams, config_for(ProtocolKind.MESI, cores=1),
                          batch=True)
        assert result.stats.accesses == 10
