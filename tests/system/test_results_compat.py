"""RunResult JSON round-trip: exact today, tolerant of tomorrow.

The persistent result cache is read back by *older* code after schema
extensions (new counters, new sections).  These tests pin the contract:
unknown keys at every nesting level are ignored, missing optional keys
fall back to defaults, and a same-version round trip loses nothing.
"""

import json

import pytest

from repro.common.params import ProtocolKind
from repro.experiments._engine import RunSpec, execute_spec
from repro.system.results import RunResult, config_from_dict


@pytest.fixture(scope="module")
def result():
    return execute_spec(RunSpec("histogram", ProtocolKind.PROTOZOA_MW,
                                cores=4, per_core=150))


@pytest.fixture()
def wire(result):
    return json.loads(json.dumps(result.to_dict()))


class TestExactRoundTrip:
    def test_counters_survive(self, result, wire):
        back = RunResult.from_dict(wire)
        assert back.stats.to_dict() == result.stats.to_dict()
        assert back.to_dict() == result.to_dict()

    def test_figure_accessors_agree(self, result, wire):
        back = RunResult.from_dict(wire)
        assert back.mpki() == result.mpki()
        assert back.flit_hops() == result.flit_hops()
        assert back.dir_owned_buckets() == result.dir_owned_buckets()

    def test_metrics_key_absent_when_unobserved(self, wire):
        assert "metrics" not in wire

    def test_metrics_round_trip_when_present(self, wire):
        wire["metrics"] = {"counters": {"repro_x_total": 3}, "histograms": {}}
        back = RunResult.from_dict(wire)
        assert back.metrics == wire["metrics"]
        assert back.to_dict()["metrics"] == wire["metrics"]


class TestForwardCompat:
    def test_unknown_top_level_keys_ignored(self, result, wire):
        wire["future_section"] = {"anything": [1, 2, 3]}
        wire["schema_note"] = "written by v99"
        back = RunResult.from_dict(wire)
        assert back.stats.to_dict() == result.stats.to_dict()

    def test_unknown_stats_keys_ignored(self, result, wire):
        wire["stats"]["future_counter"] = 12345
        wire["stats"]["traffic"]["future_bytes"] = 9
        wire["stats"]["miss_latency"]["future_field"] = None
        back = RunResult.from_dict(wire)
        assert back.stats.to_dict() == result.stats.to_dict()

    def test_unknown_config_keys_ignored(self, result, wire):
        wire["config"]["interconnect_flavor"] = "torus"
        back = RunResult.from_dict(wire)
        assert back.config == result.config

    def test_missing_optional_keys_default(self, wire):
        del wire["name"]
        del wire["flit_hops"]
        del wire["dir_owned_buckets"]
        for key in ("read_hits", "truncated", "miss_latency"):
            del wire["stats"][key]
        back = RunResult.from_dict(wire)
        assert back.name == ""
        assert back.flit_hops() == 0
        assert back.dir_owned_buckets() == {}
        assert back.stats.read_hits == 0
        assert back.stats.truncated is False
        assert back.stats.miss_latency.count == 0

    def test_missing_config_axes_fall_back_to_defaults(self, wire):
        kept = {"protocol": wire["config"]["protocol"]}
        back = config_from_dict(kept)
        assert back.protocol is ProtocolKind.PROTOZOA_MW
        assert back.cores == 16  # the SystemConfig default

    def test_future_control_categories_kept(self, wire):
        wire["stats"]["traffic"]["control"]["FUTURE"] = 64
        back = RunResult.from_dict(wire)
        assert back.stats.traffic.control["FUTURE"] == 64
        # and they survive a re-serialization, so a newer reader loses nothing
        assert back.to_dict()["stats"]["traffic"]["control"]["FUTURE"] == 64
