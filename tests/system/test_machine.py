"""Tests for machine assembly and the one-call simulate() helper."""

from repro.coherence.mesi import MESIProtocol
from repro.coherence.protozoa_multi import ProtozoaMWProtocol, ProtozoaSWMRProtocol
from repro.coherence.protozoa_sw import ProtozoaSWProtocol
from repro.common.params import ProtocolKind, SystemConfig
from repro.memory.amoeba_cache import AmoebaCache
from repro.memory.fixed_cache import FixedCache
from repro.system.machine import build_protocol, simulate
from repro.trace.events import MemAccess


class TestBuildProtocol:
    def test_kind_dispatch(self):
        assert isinstance(build_protocol(SystemConfig()), MESIProtocol)
        assert isinstance(
            build_protocol(SystemConfig(protocol=ProtocolKind.PROTOZOA_SW)),
            ProtozoaSWProtocol)
        assert isinstance(
            build_protocol(SystemConfig(protocol=ProtocolKind.PROTOZOA_SW_MR)),
            ProtozoaSWMRProtocol)
        assert isinstance(
            build_protocol(SystemConfig(protocol=ProtocolKind.PROTOZOA_MW)),
            ProtozoaMWProtocol)

    def test_l1_organisation_follows_protocol(self):
        mesi = build_protocol(SystemConfig())
        mw = build_protocol(SystemConfig(protocol=ProtocolKind.PROTOZOA_MW))
        assert isinstance(mesi.l1s[0], FixedCache)
        assert isinstance(mw.l1s[0], AmoebaCache)

    def test_per_core_structures(self):
        p = build_protocol(SystemConfig(cores=5))
        assert len(p.l1s) == 5
        assert len(p.mshrs) == 5
        assert len(p.predictors) == 5

    def test_mesi_has_no_predictors(self):
        p = build_protocol(SystemConfig())
        assert all(pred is None for pred in p.predictors)

    def test_protozoa_has_predictors(self):
        p = build_protocol(SystemConfig(protocol=ProtocolKind.PROTOZOA_SW))
        assert all(pred is not None for pred in p.predictors)

    def test_l2_capacity_from_config(self):
        p = build_protocol(SystemConfig())
        assert p.l2.capacity_regions == 32 * 1024 * 1024 // 64


class TestSimulate:
    def test_returns_packaged_result(self):
        streams = [[MemAccess.read(0), MemAccess.write(64)]]
        result = simulate(streams, SystemConfig(cores=2), name="demo")
        assert result.name == "demo"
        assert result.protocol_name == "MESI"
        assert result.stats.accesses == 2
        assert result.flit_hops() >= 0
        assert result.traffic_bytes() > 0

    def test_summary_includes_flit_hops(self):
        streams = [[MemAccess.read(0)]]
        result = simulate(streams, SystemConfig(cores=2))
        assert "flit_hops" in result.summary()

    def test_traffic_split_sums_to_total(self):
        streams = [[MemAccess.read(8 * i) for i in range(32)]]
        result = simulate(streams, SystemConfig(cores=2))
        split = result.traffic_split()
        assert sum(split.values()) == result.traffic_bytes()
