"""Hypothesis fuzzing of the full simulation loop.

Arbitrary small traces across all protocols must simulate cleanly with
checking enabled, and the cross-protocol accounting identities must hold.
"""

from hypothesis import given, settings, strategies as st

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import build_protocol
from repro.system._simulator import Simulator
from repro.trace.events import MemAccess

access = st.builds(
    MemAccess,
    is_write=st.booleans(),
    addr=st.integers(0, 6 * 64 - 8),  # six regions
    size=st.sampled_from([1, 4, 8, 16, 32]),
    pc=st.integers(0, 7),
    think=st.integers(0, 5),
)

streams_strategy = st.lists(
    st.lists(access, max_size=40), min_size=1, max_size=3
)


@settings(max_examples=25, deadline=None)
@given(kind=st.sampled_from(list(ProtocolKind)), streams=streams_strategy)
def test_fuzzed_traces_simulate_cleanly(kind, streams):
    config = SystemConfig(protocol=kind, cores=4, check_invariants=True,
                          check_values=True)
    protocol = build_protocol(config)
    stats = Simulator(protocol, streams).run()
    total = sum(len(s) for s in streams)
    assert stats.accesses == total
    assert stats.read_hits + stats.write_hits + stats.misses == total
    assert stats.instructions >= total
    protocol.check_all_invariants()


@settings(max_examples=10, deadline=None)
@given(streams=streams_strategy)
def test_all_protocols_read_same_values(streams):
    """Golden-value checking holds under every protocol for one trace."""
    for kind in ProtocolKind:
        config = SystemConfig(protocol=kind, cores=4, check_values=True)
        protocol = build_protocol(config)
        Simulator(protocol, [list(s) for s in streams]).run()


@settings(max_examples=10, deadline=None)
@given(streams=streams_strategy)
def test_traffic_identity_under_fuzz(streams):
    from repro.coherence.messages import MsgType

    config = SystemConfig(protocol=ProtocolKind.PROTOZOA_MW, cores=4)
    protocol = build_protocol(config)
    payload_words = [0]

    def hook(mtype, src, dst, words):
        if mtype not in (MsgType.MEM_READ, MsgType.MEM_DATA, MsgType.MEM_WRITE):
            payload_words[0] += words

    protocol.trace_hook = hook
    stats = Simulator(protocol, streams).run()
    data_bytes = stats.traffic.used_data + stats.traffic.unused_data
    assert data_bytes == 8 * payload_words[0]
