"""Tests for the trace-driven simulation loop."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import ProtocolKind
from repro.system._simulator import Simulator
from repro.trace.events import MemAccess

from tests.conftest import make_engine


def sim(kind=ProtocolKind.MESI, streams=(), cores=4):
    return Simulator(make_engine(kind, cores=cores), list(streams))


class TestRun:
    def test_instruction_counting(self):
        events = [MemAccess.read(0, think=4), MemAccess.read(8, think=2)]
        s = sim(streams=[events])
        stats = s.run()
        # think cycles + 1 instruction per access
        assert stats.instructions == 4 + 1 + 2 + 1

    def test_clock_advances_with_latency(self):
        s = sim(streams=[[MemAccess.read(0, think=0)]])
        stats = s.run()
        assert stats.core_cycles[0] > 0
        assert stats.core_cycles[1] == 0

    def test_max_accesses_cap(self):
        events = [MemAccess.read(i * 8) for i in range(50)]
        s = sim(streams=[events])
        stats = s.run(max_accesses=10)
        assert stats.accesses == 10

    def test_max_accesses_sets_truncated(self):
        events = [MemAccess.read(i * 8) for i in range(50)]
        stats = sim(streams=[events]).run(max_accesses=10)
        assert stats.truncated is True

    def test_complete_run_is_not_truncated(self):
        events = [MemAccess.read(i * 8) for i in range(10)]
        stats = sim(streams=[events]).run()
        assert stats.truncated is False

    def test_exact_cap_consuming_all_events_is_not_truncated(self):
        # The cap fires on the final event: nothing was cut short.
        events = [MemAccess.read(i * 8) for i in range(10)]
        stats = sim(streams=[events]).run(max_accesses=10)
        assert stats.accesses == 10
        assert stats.truncated is False

    def test_interleaving_favours_fast_core(self):
        # Core 0 has tiny think times; core 1 huge: core 0 issues more often
        # but the total still completes.
        fast = [MemAccess.read(0x1000 + 8 * i, think=0) for i in range(20)]
        slow = [MemAccess.read(0x2000 + 8 * i, think=500) for i in range(20)]
        s = sim(streams=[fast, slow])
        stats = s.run()
        assert stats.accesses == 40
        assert stats.core_cycles[1] > stats.core_cycles[0]

    def test_too_many_streams_rejected(self):
        with pytest.raises(SimulationError):
            sim(streams=[[], [], [], [], []], cores=4)

    def test_flush_classifies_resident_blocks(self):
        s = sim(streams=[[MemAccess.read(0)]])
        stats = s.run(flush=True)
        # MESI fetched 8 words, 1 touched: 1 used + 7 unused.
        assert stats.traffic.used_data == 8
        assert stats.traffic.unused_data == 56

    def test_no_flush_defers_classification(self):
        s = sim(streams=[[MemAccess.read(0)]])
        stats = s.run(flush=False)
        assert stats.traffic.used_data == 0

    def test_empty_streams(self):
        stats = sim(streams=[[], []]).run()
        assert stats.accesses == 0

    def test_deterministic_interleaving(self):
        def streams():
            return [[MemAccess.write(0x40 * c + 8 * i, think=1)
                     for i in range(10)] for c in range(3)]
        a = sim(streams=streams()).run()
        b = sim(streams=streams()).run()
        assert a.core_cycles == b.core_cycles
        assert a.traffic.total == b.traffic.total


class TestSharingTiming:
    def test_false_sharing_slows_completion(self):
        def counter(core, stride):
            return [MemAccess.write(0x1000 + core * stride, think=1)
                    for _ in range(50)]
        packed = sim(ProtocolKind.MESI, [counter(0, 8), counter(1, 8)], 2).run()
        padded = sim(ProtocolKind.MESI, [counter(0, 64), counter(1, 64)], 2).run()
        assert packed.execution_cycles() > padded.execution_cycles()
