"""Tests for RunResult accessors."""

import pytest

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.trace.events import MemAccess


@pytest.fixture(scope="module")
def result():
    streams = [
        [MemAccess.read(64 * r + 8 * w, 8, 0x10, 2)
         for r in range(4) for w in range(8)],
        [MemAccess.write(64 * 10 + 8 * w, 8, 0x20, 1) for w in range(8)],
    ]
    return simulate(streams, SystemConfig(protocol=ProtocolKind.PROTOZOA_MW,
                                          cores=2), name="unit")


class TestAccessors:
    def test_protocol_name(self, result):
        assert result.protocol_name == "MW"

    def test_traffic_split_components(self, result):
        split = result.traffic_split()
        assert set(split) == {"used", "unused", "control"}
        assert sum(split.values()) == result.traffic_bytes()

    def test_control_split_covers_categories(self, result):
        control = result.control_split()
        assert set(control) == {"req", "fwd", "inv", "ack", "nack", "hdr"}
        assert sum(control.values()) == result.stats.traffic.control_total

    def test_mpki_positive(self, result):
        assert result.mpki() > 0

    def test_used_fraction_high_for_dense_trace(self, result):
        assert result.used_fraction() > 0.9  # every fetched word is read

    def test_block_size_buckets_normalized(self, result):
        assert sum(result.block_size_buckets().values()) == pytest.approx(1.0)

    def test_dir_owned_buckets_keys(self, result):
        assert set(result.dir_owned_buckets()) == {
            "1owner", "1owner+sharers", ">1owner",
        }

    def test_summary_superset_of_stats_summary(self, result):
        assert set(result.stats.summary()) < set(result.summary())

    def test_exec_cycles_positive(self, result):
        assert result.exec_cycles() > 0
        assert result.flit_hops() > 0
