"""``repro.service``: the multi-tenant sweep service.

A long-running HTTP/JSON-RPC front end over the experiment engine
(docs/service.md).  Submissions are content-addressed and dedup'd
against both in-flight jobs and the persistent result cache, the job
queue is durable (fsynced JSONL journal; SIGKILL-safe with automatic
resume), and a background dispatcher drains it through one shared
:class:`~repro.experiments._engine.ExperimentEngine` with a persistent
warm worker pool.

Layering::

    rpc.py         JSON-RPC method registry + ThreadingHTTPServer
    client.py      stdlib urllib client (ServiceClient)
    app.py         SweepService: wiring + the RPC method bodies + serve()
    dispatcher.py  the drain thread + the per-job progress journal
    queue.py       durable, dedup'ing priority queue (JobQueue)
    jobs.py        the job model and its content-addressed key

Use :func:`~repro.service.app.serve` / ``repro serve`` to run one, and
:class:`~repro.service.client.ServiceClient` / ``repro submit`` /
``repro jobs`` to talk to it.  Both are re-exported from
:mod:`repro.api`.
"""

from repro.service.app import DEFAULT_PORT, SweepService, serve, service_state_dir
from repro.service.client import ServiceClient
from repro.service.dispatcher import Dispatcher, JobJournal
from repro.service.jobs import DEFAULT_TTL_S, Job, JobState, job_key
from repro.service.queue import JobQueue
from repro.service.rpc import METHODS, ServiceError, make_server

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_TTL_S",
    "Dispatcher",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "METHODS",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "job_key",
    "make_server",
    "serve",
    "service_state_dir",
]
