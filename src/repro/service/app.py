"""``SweepService``: the queue, the engine, and the dispatcher, wired up.

The service owns four pieces and their lifecycle:

* one :class:`~repro.experiments._engine.ResultCache` — the same
  content-addressed store every CLI sweep uses, so the service is warm
  from the first request if the machine has ever swept before;
* one :class:`~repro.experiments._engine.ExperimentEngine` with a
  persistent worker pool, shared across jobs (pool start-up is paid
  once per service, not per submission);
* one durable :class:`~repro.service.queue.JobQueue` under the service
  state directory (``$REPRO_SERVICE_DIR``, default ``<cache
  root>/service``), holding per-job sweep journals and result blobs
  beside the queue journal;
* one :class:`~repro.service.dispatcher.Dispatcher` thread draining the
  queue.

The cache-hit-first contract lives in :meth:`SweepService.submit`: a
sweep whose every spec is already in the result cache is answered
*instantly* — the job is journaled straight to ``done``, its result blob
is assembled from cache, no worker is touched, and
``repro_service_cache_hits_total`` records the short-circuit.  Likewise
a resubmission of an already-completed job dedups onto the finished
record.  Everything else queues, and ``job_status`` exposes live
progress (updated per completed spec via the job's journal callback).

Crash recovery composes from parts that already existed: the queue
journal re-queues jobs that were running when the process died, the
per-job :class:`~repro.service.dispatcher.JobJournal` pre-loads their
completed set, and the result cache serves those specs as hits — so a
SIGKILLed service, restarted, finishes exactly the work that remained.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro._version import package_version
from repro.common.errors import ConfigError
from repro.common.params import parse_protocol
from repro.experiments._engine import (
    ExperimentEngine,
    ResultCache,
    RunSpec,
    default_cache_dir,
)
from repro.obs.metrics import MetricsRegistry, process_registry
from repro.resilience.faults import get_injector
from repro.resilience.storage import durable_replace
from repro.service.dispatcher import Dispatcher, JobJournal
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue
from repro.service.rpc import (
    INVALID_PARAMS,
    INVALID_STATE,
    NOT_FOUND,
    ServiceError,
    make_server,
)
from repro.store import FsStore, get_store
from repro.system.results import RunResult
from repro.trace.workloads import WORKLOADS

#: Default port: "repro" has no IANA claim; this one is unassigned.
DEFAULT_PORT = 8673


def service_state_dir() -> Path:
    """``$REPRO_SERVICE_DIR``, else ``service/`` beside the result cache."""
    env = os.environ.get("REPRO_SERVICE_DIR", "")
    if env:
        return Path(env)
    return default_cache_dir() / "service"


def _parse_one_spec(payload, index: int) -> RunSpec:
    if isinstance(payload, RunSpec):
        return payload
    if not isinstance(payload, dict):
        raise ServiceError(
            f"specs[{index}] must be an object, got {type(payload).__name__}",
            INVALID_PARAMS)
    unknown = set(payload) - {"workload", "protocol", "block_bytes",
                              "cores", "per_core", "seed"}
    if unknown:
        raise ServiceError(f"specs[{index}] has unknown fields "
                           f"{sorted(unknown)}", INVALID_PARAMS)
    workload = payload.get("workload")
    if workload not in WORKLOADS:
        raise ServiceError(
            f"specs[{index}]: unknown workload {workload!r} "
            f"(see the 'list' command for the catalog)", INVALID_PARAMS)
    try:
        protocol = parse_protocol(payload.get("protocol", "mesi"))
    except ConfigError as exc:
        raise ServiceError(f"specs[{index}]: {exc}", INVALID_PARAMS)
    try:
        block = payload.get("block_bytes")
        return RunSpec(
            workload=workload,
            protocol=protocol,
            block_bytes=None if block is None else int(block),
            cores=int(payload.get("cores", 16)),
            per_core=int(payload.get("per_core", 2000)),
            seed=int(payload.get("seed", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"specs[{index}]: {exc}", INVALID_PARAMS)


def parse_specs(payloads: Iterable) -> List[RunSpec]:
    """Client-supplied spec payloads -> validated ``RunSpec`` list.

    Eager and strict: unknown workloads, unknown protocol spellings,
    unknown fields, and duplicate specs all come back as one clear
    ``INVALID_PARAMS`` error instead of failing inside the engine.
    """
    if isinstance(payloads, (dict, RunSpec)) or isinstance(payloads, str):
        raise ServiceError("'specs' must be a list of spec objects",
                           INVALID_PARAMS)
    specs = [_parse_one_spec(payload, index)
             for index, payload in enumerate(payloads)]
    if not specs:
        raise ServiceError("'specs' must not be empty", INVALID_PARAMS)
    seen: Dict[RunSpec, int] = {}
    for index, spec in enumerate(specs):
        if spec in seen:
            raise ServiceError(
                f"specs[{index}] duplicates specs[{seen[spec]}] "
                f"({spec.payload()})", INVALID_PARAMS)
        seen[spec] = index
    return specs


class SweepService:
    """The sweep service: durable queue + shared engine + dispatcher."""

    def __init__(self, state_dir=None, jobs: Optional[int] = None,
                 engine: Optional[ExperimentEngine] = None,
                 default_ttl_s: Optional[float] = None,
                 idle_poll_s: float = 0.5):
        self.state_dir = (Path(state_dir) if state_dir is not None
                          else service_state_dir())
        self.engine = engine if engine is not None else ExperimentEngine(
            jobs=jobs, cache=ResultCache(store=get_store()))
        self.cache = self.engine.cache
        # Pinned once: the blob surface the /blob endpoints and store_*
        # RPC methods serve must not drift with later env changes.
        self.store = self.cache.store
        queue_kwargs = ({} if default_ttl_s is None
                        else {"default_ttl_s": default_ttl_s})
        self.queue = JobQueue(self.state_dir, **queue_kwargs)
        self.metrics = MetricsRegistry()
        self.dispatcher = Dispatcher(self, idle_poll_s=idle_poll_s)
        self.started_at = time.time()
        if self.queue.requeued:
            self.metrics.inc("repro_service_jobs_requeued_total",
                             self.queue.requeued)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SweepService":
        self.dispatcher.start()
        return self

    def stop(self) -> None:
        self.dispatcher.stop()
        self.engine.close()
        self.queue.close()

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- paths ---------------------------------------------------------------

    def journal_path(self, job: Job) -> Path:
        return self.state_dir / "journals" / f"{job.id}.jsonl"

    def result_path(self, job: Job) -> Path:
        return self.state_dir / "results" / f"{job.id}.json"

    # -- RPC surface ---------------------------------------------------------

    def submit(self, payloads: Iterable, priority: int = 0,
               ttl_s: Optional[float] = None) -> Dict:
        """Enqueue (or dedup, or answer from cache) one sweep submission."""
        specs = parse_specs(payloads)
        job, deduped = self.queue.submit(specs, priority=priority,
                                         ttl_s=ttl_s)
        cached = False
        if deduped:
            self.metrics.inc("repro_service_jobs_deduped_total")
            if job.state is JobState.DONE:
                # The whole sweep is already computed: this submission
                # never touches a worker.
                cached = True
                self.metrics.inc("repro_service_cache_hits_total", job.total)
        else:
            self.metrics.inc("repro_service_jobs_submitted_total")
            cached = self._try_answer_from_cache(job)
            if not cached:
                self.dispatcher.wake()
        return {
            "job_id": job.id,
            "state": job.state.value,
            "deduped": deduped,
            "cached": cached,
            "total": job.total,
        }

    def job_status(self, job_id: str) -> Dict:
        return self._job(job_id).to_dict()

    def job_result(self, job_id: str) -> Dict:
        """The completed matrix: one ``{spec, result}`` pair per spec, in
        submission order."""
        job = self._job(job_id)
        if job.state is not JobState.DONE:
            raise ServiceError(
                f"job {job.id} is {job.state.value}, not done"
                + (f" ({job.error})" if job.error else ""), INVALID_STATE)
        path = self.result_path(job)
        try:
            import json as _json
            with open(path, encoding="utf-8") as fh:
                payload = _json.load(fh)
            # The blob is written *before* the terminal transition is
            # journaled (durability ordering), so its embedded job
            # snapshot is stale; overlay the live record.
            payload["job"] = job.to_dict()
            return payload
        except (OSError, ValueError):
            # Blob missing or damaged (e.g. GC'd): rebuild from the
            # result cache, which holds every completed spec.
            results = self._results_from_cache(job)
            if results is None:
                raise ServiceError(
                    f"job {job.id} results are no longer available "
                    "(cache evicted); resubmit to recompute", NOT_FOUND)
            self._write_result_blob(job, results)
            return self._result_payload(job, results)

    def cancel(self, job_id: str) -> Dict:
        try:
            job = self.queue.cancel(job_id)
        except ValueError as exc:
            raise ServiceError(str(exc), INVALID_STATE)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", NOT_FOUND)
        self.metrics.inc("repro_service_jobs_finished_total",
                         state=JobState.CANCELLED.value)
        return job.to_dict()

    def list_jobs(self, state: Optional[str] = None, limit: int = 0) -> Dict:
        kind = None
        if state:
            try:
                kind = JobState(state)
            except ValueError:
                raise ServiceError(
                    f"unknown state {state!r} "
                    f"(choose from {[s.value for s in JobState]})",
                    INVALID_PARAMS)
        jobs = self.queue.jobs(state=kind, limit=limit)
        return {"jobs": [job.to_dict() for job in jobs]}

    def health(self) -> Dict:
        return {
            "ok": True,
            "version": package_version(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self.queue.counts(),
            "engine": {
                "jobs": self.engine.jobs,
                "degraded": self.engine.degraded,
                "executed": self.engine.executed,
            },
            "queue": {
                "replayed": self.queue.replayed,
                "requeued": self.queue.requeued,
            },
            "state_dir": str(self.state_dir),
            "dispatcher": self.dispatcher.running,
        }

    def metrics_dump(self) -> Dict:
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        merged.merge(self.engine.metrics)
        merged.merge(process_registry())
        dump = merged.to_dict()
        # The observability tax, self-reported: deferred scratch deltas
        # cost fold cycles, and their cumulative wall-clock over service
        # uptime is the fraction of this process's life spent committing
        # them.  fold_* are registry-level bookkeeping (not series), so
        # they are surfaced here rather than carried in run dumps —
        # per-run metric payloads stay byte-comparable across modes.
        fold_cycles = sum(r.fold_cycles for r in
                          (self.metrics, self.engine.metrics,
                           process_registry()))
        fold_seconds = sum(r.fold_seconds for r in
                           (self.metrics, self.engine.metrics,
                            process_registry()))
        uptime = max(time.time() - self.started_at, 1e-9)
        dump["counters"]["repro_obs_fold_cycles_total"] = fold_cycles
        dump["counters"]["repro_obs_fold_seconds_total"] = round(
            fold_seconds, 6)
        dump["counters"]["repro_obs_overhead_ratio"] = round(
            fold_seconds / uptime, 9)
        return dump

    # -- blob-store surface (the data plane behind /blob/<key>) --------------
    #
    # Keys reach these pre-validated by the RPC layer.  The counters are
    # the fleet's shared-cache scoreboard: repro_service_blob_hits_total
    # counting > 0 is how the distributed smoke test proves two workers
    # actually shared one warm store.

    def _store_fault(self, op: str) -> None:
        # Server-side network fault sites: with REPRO_FAULTS armed in
        # the *service* process, a blob round trip can fail (surfacing
        # as a 500 to the client, whose retry/breaker machinery this
        # rehearses) or stall before touching the store.
        injector = get_injector()
        if injector is not None:
            injector.on_store_op(op)

    def blob_get(self, key: str) -> Optional[bytes]:
        self._store_fault("get")
        data = self.store.get(key)
        if data is None:
            self.metrics.inc("repro_service_blob_misses_total")
        else:
            self.metrics.inc("repro_service_blob_hits_total")
        return data

    def blob_put(self, key: str, data: bytes) -> None:
        self._store_fault("put")
        self.store.put(key, data)
        self.metrics.inc("repro_service_blob_puts_total")

    def blob_stat(self, key: str):
        return self.store.stat(key)

    def blob_delete(self, key: str) -> bool:
        removed = self.store.delete(key)
        if removed:
            self.metrics.inc("repro_service_blob_deletes_total")
        return removed

    # -- execution -----------------------------------------------------------

    def process_next(self) -> bool:
        """Claim and run one queued job; False when the queue is idle.

        Called by the dispatcher thread (and directly by tests, which
        get deterministic single-stepping for free).
        """
        job = self.queue.pop_next()
        if job is None:
            return False
        journal = JobJournal(self.journal_path(job),
                             on_record=lambda digest: self._on_progress(job))
        job.completed = len(journal)  # resumed completions show immediately
        hits_before = self.cache.hits
        executed_before = self.engine.executed
        self.engine.journal = journal
        try:
            results = self.engine.run_many(job.specs)
        except Exception as exc:  # noqa: BLE001 — job-scoped failure
            job.executed += self.engine.executed - executed_before
            self.queue.finish(job, JobState.FAILED,
                              error=f"{type(exc).__name__}: {exc}")
            self.metrics.inc("repro_service_jobs_finished_total",
                             state=JobState.FAILED.value)
            return True
        finally:
            self.engine.journal = None
            journal.close()
        job.cache_hits += self.cache.hits - hits_before
        executed = self.engine.executed - executed_before
        job.executed += executed
        job.completed = job.total
        self._write_result_blob(job, [results[spec] for spec in job.specs])
        self.queue.finish(job, JobState.DONE)
        self.metrics.inc("repro_service_jobs_finished_total",
                         state=JobState.DONE.value)
        self.metrics.inc("repro_service_specs_executed_total", executed)
        if job.started_at is not None:
            self.metrics.observe("repro_service_job_seconds",
                                 max(0, round(time.time() - job.started_at)))
        return True

    # -- internals -----------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        if not isinstance(job_id, str):
            raise ServiceError("'job_id' must be a string", INVALID_PARAMS)
        job = self.queue.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", NOT_FOUND)
        return job

    def _on_progress(self, job: Job) -> None:
        job.completed += 1
        self.metrics.inc("repro_service_specs_completed_total")

    def _results_from_cache(self, job: Job) -> Optional[List[RunResult]]:
        results = []
        for spec in job.specs:
            result = self.cache.get(spec)
            if result is None:
                return None
            results.append(result)
        return results

    def _try_answer_from_cache(self, job: Job) -> bool:
        """Complete a fresh job instantly when every spec is cached."""
        results = self._results_from_cache(job)
        if results is None:
            return False
        job.completed = job.total
        job.cache_hits = job.total
        self._write_result_blob(job, results)
        self.queue.finish(job, JobState.DONE)
        self.metrics.inc("repro_service_cache_hits_total", job.total)
        self.metrics.inc("repro_service_jobs_finished_total",
                         state=JobState.DONE.value)
        return True

    def _result_payload(self, job: Job, results: List[RunResult]) -> Dict:
        return {
            "job": job.to_dict(),
            "results": [{"spec": spec.payload(), "result": result.to_dict()}
                        for spec, result in zip(job.specs, results)],
        }

    def _write_result_blob(self, job: Job, results: List[RunResult]) -> None:
        import json as _json

        payload = self._result_payload(job, results)
        durable_replace(self.result_path(job),
                        _json.dumps(payload, sort_keys=True))


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          state_dir=None, jobs: Optional[int] = None,
          default_ttl_s: Optional[float] = None,
          quiet: bool = True) -> int:
    """Run the sweep service until interrupted (the ``repro serve`` body).

    Binds first (``port=0`` picks an ephemeral port), prints the
    resolved URL, then blocks in ``serve_forever``.  Ctrl-C stops the
    HTTP server, drains the in-flight job, and shuts the engine pool
    down cleanly; a SIGKILL instead is survivable by design — the next
    start replays the queue journal.

    The service must *own* a local store — it is the thing an
    ``http://`` store URL points at, so starting it against one would
    chain services (or loop back into itself).
    """
    backing = get_store()
    if not isinstance(backing, FsStore):
        raise ConfigError(
            f"repro serve must own a local file:// store, not "
            f"{backing.url()} — it IS the http:// store other workers "
            "point --store at")
    with SweepService(state_dir=state_dir, jobs=jobs,
                      default_ttl_s=default_ttl_s) as service:
        server = make_server(service, host=host, port=port, quiet=quiet)
        bound = server.server_address[1]
        print(f"repro service v{package_version()} listening on "
              f"http://{host}:{bound} (state: {service.state_dir})",
              flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    return 0
