"""The durable, dedup'ing job queue behind the sweep service.

A JSONL event journal (``queue.jsonl`` under the service state
directory) is the queue's single source of truth, written with the same
flush+fsync discipline as :class:`~repro.resilience.journal.SweepJournal`
— so a SIGKILL at any point loses at most one torn final line, which the
loader tolerates.  Two event kinds:

* ``{"event": "submit", "job": {...}}`` — a job record snapshot
  (creation, resubmission, and the compacted image written on load);
* ``{"event": "state", "key": ..., "state": ..., ...}`` — one state
  transition, carrying the final progress counters for terminal states.

**Replay.** On construction the journal is replayed into the in-memory
job table, then *compacted*: the live table is rewritten as one snapshot
line per job via :func:`~repro.resilience.storage.durable_replace`, so
the journal's size is bounded by the job count, not the event count.
Jobs found ``RUNNING`` were in flight when the previous process died;
they re-queue (``requeues`` incremented) and their re-run skips every
spec the result cache already holds — PR 5's resume semantics, applied
automatically.

**Dedup.** Submission is content-addressed by
:func:`~repro.service.jobs.job_key`: a second submission of the same
spec set attaches to the existing queued/running/done job instead of
creating a new one (``waiters`` counts the sharing clients).  Jobs in a
terminal failure state (failed / cancelled / expired) restart fresh.

**Ordering.** ``pop_next`` serves the highest priority first, FIFO
within a priority class; queued jobs past their TTL expire instead of
dispatching.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments._engine import RunSpec
from repro.resilience.storage import durable_replace
from repro.service.jobs import (
    ACTIVE_STATES,
    DEFAULT_TTL_S,
    Job,
    JobState,
    job_key,
)

QUEUE_JOURNAL_NAME = "queue.jsonl"

#: Terminal states: the job will never dispatch again without a resubmit.
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED,
                   JobState.EXPIRED)


class JobQueue:
    """Durable priority queue of :class:`~repro.service.jobs.Job` records.

    Thread-safe: every public method takes the queue lock, so RPC handler
    threads and the dispatcher thread interleave freely.
    """

    def __init__(self, state_dir, default_ttl_s: float = DEFAULT_TTL_S):
        self.state_dir = Path(state_dir)
        self.path = self.state_dir / QUEUE_JOURNAL_NAME
        self.default_ttl_s = default_ttl_s
        self._jobs: Dict[str, Job] = {}   # full key -> Job
        self._lock = threading.RLock()
        self._fh = None
        self._seq = 0
        self.replayed = 0                 # jobs loaded from a prior process
        self.requeued = 0                 # RUNNING jobs re-queued on load
        self._load()

    # -- durability ----------------------------------------------------------

    def _load(self) -> None:
        """Replay the journal, re-queue in-flight jobs, compact."""
        try:
            fh = open(self.path, encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn final line from a killed writer
                self._replay_entry(entry)
        self.replayed = len(self._jobs)
        for job in self._jobs.values():
            self._seq = max(self._seq, job.seq)
            if job.state is JobState.RUNNING:
                # The previous process died mid-run: put the job back in
                # line.  Finished specs are in the result cache (and the
                # per-job sweep journal), so the re-run only simulates
                # the remainder.
                job.state = JobState.QUEUED
                job.started_at = None
                job.requeues += 1
                self.requeued += 1
        if self._jobs:
            self._compact()

    def _replay_entry(self, entry: Dict) -> None:
        event = entry.get("event")
        if event == "submit":
            try:
                job = Job.from_dict(entry["job"])
            except (KeyError, ValueError, TypeError):
                return  # malformed snapshot; skip rather than abort replay
            self._jobs[job.key] = job
        elif event == "state":
            job = self._jobs.get(entry.get("key", ""))
            if job is None:
                return
            try:
                job.state = JobState(entry["state"])
            except (KeyError, ValueError):
                return
            for field in ("started_at", "finished_at", "completed",
                          "cache_hits", "executed", "error"):
                if field in entry:
                    setattr(job, field, entry[field])

    def _compact(self) -> None:
        """Rewrite the journal as one snapshot line per live job."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        lines = [json.dumps({"event": "submit", "job": job.to_dict()},
                            sort_keys=True)
                 for job in sorted(self._jobs.values(), key=lambda j: j.seq)]
        durable_replace(self.path, "".join(line + "\n" for line in lines))

    def _append(self, entry: Dict) -> None:
        """Durably append one event (flush + fsync, SweepJournal-style)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(self, specs: List[RunSpec], priority: int = 0,
               ttl_s: Optional[float] = None,
               now: Optional[float] = None) -> Tuple[Job, bool]:
        """Enqueue a sweep; returns ``(job, deduped)``.

        ``deduped`` is true when the submission attached to an existing
        queued/running/done job with the same content key instead of
        creating (or restarting) one.
        """
        now = time.time() if now is None else now
        key = job_key(specs)
        with self._lock:
            self._expire_due(now)
            job = self._jobs.get(key)
            if job is not None and job.state in ACTIVE_STATES:
                job.waiters += 1
                return job, True
            self._seq += 1
            job = Job(
                key=key,
                specs=list(specs),
                priority=priority,
                ttl_s=self.default_ttl_s if ttl_s is None else ttl_s,
                seq=self._seq,
                state=JobState.QUEUED,
                submitted_at=now,
            )
            self._jobs[key] = job
            self._append({"event": "submit", "job": job.to_dict()})
            return job, False

    # -- lookup --------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """Resolve a job by short id or full key."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            for job in self._jobs.values():
                if job.id == job_id:
                    return job
        return None

    def jobs(self, state: Optional[JobState] = None,
             limit: int = 0) -> List[Job]:
        """Jobs newest-first, optionally filtered by state."""
        with self._lock:
            self._expire_due(time.time())
            out = sorted(self._jobs.values(), key=lambda j: -j.seq)
        if state is not None:
            out = [job for job in out if job.state is state]
        return out[:limit] if limit > 0 else out

    def counts(self) -> Dict[str, int]:
        with self._lock:
            self._expire_due(time.time())
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state.value] = counts.get(job.state.value, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- dispatch ------------------------------------------------------------

    def pop_next(self, now: Optional[float] = None) -> Optional[Job]:
        """Claim the next runnable job (highest priority, then FIFO) and
        mark it ``RUNNING``; ``None`` when nothing is queued."""
        now = time.time() if now is None else now
        with self._lock:
            self._expire_due(now)
            queued = [job for job in self._jobs.values()
                      if job.state is JobState.QUEUED]
            if not queued:
                return None
            job = min(queued, key=lambda j: (-j.priority, j.seq))
            job.state = JobState.RUNNING
            job.started_at = now
            self._append({"event": "state", "key": job.key,
                          "state": job.state.value, "started_at": now})
            return job

    def finish(self, job: Job, state: JobState,
               error: Optional[str] = None,
               now: Optional[float] = None) -> None:
        """Record a terminal transition with its final progress counters."""
        now = time.time() if now is None else now
        with self._lock:
            job.state = state
            job.finished_at = now
            job.error = error
            self._append({
                "event": "state", "key": job.key, "state": state.value,
                "finished_at": now, "completed": job.completed,
                "cache_hits": job.cache_hits, "executed": job.executed,
                "error": error,
            })

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job; returns it, or ``None`` if unknown.

        Raises :class:`ValueError` when the job exists but is not
        cancellable (running jobs run to completion; terminal states are
        already settled).
        """
        with self._lock:
            job = self.get(job_id)
            if job is None:
                return None
            if job.state is not JobState.QUEUED:
                raise ValueError(
                    f"job {job.id} is {job.state.value}; only queued jobs "
                    "can be cancelled")
            self.finish(job, JobState.CANCELLED)
            return job

    # -- TTL -----------------------------------------------------------------

    def _expire_due(self, now: float) -> List[Job]:
        """Expire queued jobs past their TTL (caller holds the lock)."""
        expired = []
        for job in self._jobs.values():
            if job.expired(now):
                job.state = JobState.EXPIRED
                job.finished_at = now
                self._append({"event": "state", "key": job.key,
                              "state": job.state.value, "finished_at": now})
                expired.append(job)
        return expired

    def expire_due(self, now: Optional[float] = None) -> List[Job]:
        with self._lock:
            return self._expire_due(time.time() if now is None else now)
