"""The job model: one submitted sweep, content-addressed for dedup.

A *job* is an ordered batch of :class:`~repro.experiments._engine.RunSpec`
recipes plus queueing metadata (priority, TTL, timestamps, progress).
Its identity is the **job key**: the sha256 over the sorted set of spec
digests (plus a schema version), so two clients submitting the same
sweep — in any spec order — address the same job and share one
execution.  The key doubles as the durable name for the job's artifacts
(per-job sweep journal, result blob).

Jobs move through a small state machine::

    QUEUED -> RUNNING -> DONE
       |          |
       |          +----> FAILED   (engine raised; error recorded)
       +-------> CANCELLED        (client cancel before dispatch)
       +-------> EXPIRED          (TTL elapsed while still queued)

Only ``QUEUED`` jobs can be cancelled or expire: once the dispatcher
picks a job up it runs to completion (the engine's own retry/degrade
machinery decides how).  A crash while ``RUNNING`` is not a terminal
state — on restart the queue replays the journal and re-queues the job,
and the result cache plus the per-job sweep journal make the re-run skip
every spec that already finished.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.experiments._engine import RunSpec

#: Bump when the job record layout or key derivation changes; old queue
#: journals replay fine (unknown fields are ignored, missing get defaults)
#: but keys from another schema never collide with current ones.
JOB_SCHEMA = 1

#: Queued jobs older than this expire unless the submitter set a TTL.
DEFAULT_TTL_S = 24 * 3600.0


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"


#: States a dedup'ing submit may attach to instead of creating a new job.
ACTIVE_STATES = (JobState.QUEUED, JobState.RUNNING, JobState.DONE)

#: States from which a resubmission starts the job over.
RESUBMIT_STATES = (JobState.FAILED, JobState.CANCELLED, JobState.EXPIRED)


def job_key(specs: List[RunSpec]) -> str:
    """Content address of a sweep: order-insensitive over its spec set."""
    digests = sorted(spec.digest() for spec in specs)
    blob = json.dumps({"schema": JOB_SCHEMA, "specs": digests},
                      sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class Job:
    """One submitted sweep plus everything the queue must remember."""

    key: str                      # sha256 over the sorted spec digests
    specs: List[RunSpec]          # submission order (result order too)
    priority: int = 0             # higher dispatches first
    ttl_s: float = DEFAULT_TTL_S  # queued-state lifetime; <= 0: never expires
    seq: int = 0                  # submission counter (FIFO within priority)
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    completed: int = 0            # specs finished so far (progress)
    cache_hits: int = 0           # specs served from the result cache
    executed: int = 0             # specs actually simulated
    requeues: int = 0             # crash-recovery replays of this job
    error: Optional[str] = None
    #: volatile (not journaled): clients sharing this execution via dedup
    waiters: int = field(default=1, compare=False)

    @property
    def id(self) -> str:
        """The short client-facing handle (prefix of the full key)."""
        return self.key[:16]

    @property
    def total(self) -> int:
        return len(self.specs)

    def expired(self, now: Optional[float] = None) -> bool:
        """TTL check — only meaningful while still queued."""
        if self.state is not JobState.QUEUED or self.ttl_s <= 0:
            return False
        now = time.time() if now is None else now
        return now - self.submitted_at > self.ttl_s

    # -- wire/journal form ---------------------------------------------------

    def to_dict(self) -> Dict:
        """The journaled (and RPC ``job_status``) form of this job."""
        return {
            "id": self.id,
            "key": self.key,
            "specs": [spec.payload() for spec in self.specs],
            "priority": self.priority,
            "ttl_s": self.ttl_s,
            "seq": self.seq,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "requeues": self.requeues,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Job":
        """Inverse of :meth:`to_dict`; unknown keys ignored, missing
        optional keys take their defaults (forward-compatible replay)."""
        specs = [RunSpec.from_payload(p) for p in data["specs"]]
        return cls(
            key=data["key"],
            specs=specs,
            priority=data.get("priority", 0),
            ttl_s=data.get("ttl_s", DEFAULT_TTL_S),
            seq=data.get("seq", 0),
            state=JobState(data.get("state", "queued")),
            submitted_at=data.get("submitted_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            completed=data.get("completed", 0),
            cache_hits=data.get("cache_hits", 0),
            executed=data.get("executed", 0),
            requeues=data.get("requeues", 0),
            error=data.get("error"),
        )

    def __repr__(self) -> str:
        return (f"Job({self.id!r}, state={self.state.value}, "
                f"specs={self.total}, completed={self.completed})")
