"""``ServiceClient``: a thin stdlib JSON-RPC client for the sweep service.

Everything goes over one ``urllib`` POST per call; no sockets are held
between calls, so a client object is cheap and safe to share.  The
helper methods mirror the server's method registry one-for-one, plus two
conveniences: :meth:`ServiceClient.wait` (poll ``job_status`` until the
job settles) and :meth:`ServiceClient.results` (fetch ``job_result`` and
inflate it back into the same ``{RunSpec: RunResult}`` matrix
``repro.api.sweep`` returns — byte-identical content, different
transport).

RPC-level failures raise :class:`~repro.service.rpc.ServiceError`
carrying the JSON-RPC error code; transport failures (server down,
connection refused) raise the stdlib ``URLError`` untouched so callers
can distinguish "the service said no" from "there is no service".
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Dict, Iterable, List, Optional, Union

from repro.experiments._engine import RunSpec
from repro.service.jobs import JobState
from repro.service.rpc import INTERNAL_ERROR, ServiceError
from repro.system.results import RunResult

#: Terminal job states wait() stops on.
_SETTLED = {JobState.DONE.value, JobState.FAILED.value,
            JobState.CANCELLED.value, JobState.EXPIRED.value}


def _spec_payload(spec: Union[RunSpec, Dict]) -> Dict:
    return spec.payload() if isinstance(spec, RunSpec) else dict(spec)


class ServiceClient:
    """One sweep service endpoint, spoken JSON-RPC over HTTP."""

    def __init__(self, url: str = "http://127.0.0.1:8673",
                 timeout_s: float = 60.0):
        self.url = url.rstrip("/") + "/"
        self.timeout_s = timeout_s
        self._next_id = 0

    # -- transport -----------------------------------------------------------

    def call(self, method: str, **params):
        """One JSON-RPC round trip; returns the ``result`` member."""
        self._next_id += 1
        body = json.dumps({
            "jsonrpc": "2.0",
            "id": self._next_id,
            "method": method,
            "params": params,
        }).encode("utf-8")
        request = urllib.request.Request(
            self.url, data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
        if "error" in payload:
            error = payload["error"] or {}
            raise ServiceError(error.get("message", "unknown service error"),
                               error.get("code", INTERNAL_ERROR))
        return payload.get("result")

    # -- the method registry, mirrored ----------------------------------------

    def submit_sweep(self, specs: Iterable[Union[RunSpec, Dict]],
                     priority: int = 0,
                     ttl_s: Optional[float] = None) -> Dict:
        payloads = [_spec_payload(spec) for spec in specs]
        params = {"specs": payloads, "priority": priority}
        if ttl_s is not None:
            params["ttl_s"] = ttl_s
        return self.call("submit_sweep", **params)

    def job_status(self, job_id: str) -> Dict:
        return self.call("job_status", job_id=job_id)

    def job_result(self, job_id: str) -> Dict:
        return self.call("job_result", job_id=job_id)

    def cancel(self, job_id: str) -> Dict:
        return self.call("cancel", job_id=job_id)

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 0) -> List[Dict]:
        return self.call("list_jobs", state=state, limit=limit)["jobs"]

    def health(self) -> Dict:
        return self.call("health")

    def metrics(self) -> Dict:
        return self.call("metrics")

    # -- conveniences ----------------------------------------------------------

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict:
        """Poll until the job settles; returns its final status record.

        Raises :class:`ServiceError` if the job settles anywhere other
        than ``done`` (the error message carries the job's recorded
        failure), or :class:`TimeoutError` past the deadline.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.job_status(job_id)
            if status["state"] in _SETTLED:
                if status["state"] != JobState.DONE.value:
                    detail = status.get("error") or ""
                    raise ServiceError(
                        f"job {job_id} settled as {status['state']}"
                        + (f": {detail}" if detail else ""))
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout_s:.0f}s ({status['completed']}/"
                    f"{status['total']} specs done)")
            time.sleep(poll_s)

    def results(self, job_id: str) -> Dict[RunSpec, RunResult]:
        """The job's matrix in ``repro.api.sweep``'s shape."""
        payload = self.job_result(job_id)
        return {
            RunSpec.from_payload(cell["spec"]):
                RunResult.from_dict(cell["result"])
            for cell in payload["results"]
        }

    def sweep(self, specs: Iterable[Union[RunSpec, Dict]],
              priority: int = 0, ttl_s: Optional[float] = None,
              timeout_s: float = 600.0,
              poll_s: float = 0.2) -> Dict[RunSpec, RunResult]:
        """Submit, wait, fetch: the one-call remote equivalent of
        :func:`repro.api.sweep`."""
        submitted = self.submit_sweep(specs, priority=priority, ttl_s=ttl_s)
        self.wait(submitted["job_id"], timeout_s=timeout_s, poll_s=poll_s)
        return self.results(submitted["job_id"])

    def __repr__(self) -> str:
        return f"ServiceClient({self.url!r})"
