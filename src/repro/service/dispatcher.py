"""The background dispatcher: drains the job queue through the engine.

One daemon thread calls :meth:`SweepService.process_next
<repro.service.app.SweepService.process_next>` in a loop: claim the next
queued job, run its specs through the shared
:class:`~repro.experiments._engine.ExperimentEngine` (persistent warm
pool, retry/degrade recovery), persist the result blob, journal the
terminal state.  The loop parks on an event when the queue is empty and
is woken by ``submit``, so dispatch latency is bounded by neither the
poll interval nor a busy wait.

Progress comes for free from PR 5's journal machinery:
:class:`JobJournal` subclasses the fsynced
:class:`~repro.resilience.journal.SweepJournal` the engine already
writes per completed spec, and fires a callback on every *fresh*
completion — the service uses it to update the job's ``completed``
counter (visible through ``job_status`` long before the job finishes)
and to bump ``repro_service_specs_completed_total``.  Because the
journal is durable and idempotent, the same file doubles as the job's
crash-resume record: a re-queued job reopens it, pre-loads the completed
set, and the engine serves those specs from the result cache without
recomputing them.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.resilience.journal import SweepJournal


class JobJournal(SweepJournal):
    """A sweep journal that reports fresh completions to the service."""

    def __init__(self, path, on_record: Optional[Callable[[str], None]] = None):
        self._on_record = None  # disarm during the base-class replay load
        super().__init__(path)
        self._on_record = on_record

    def record(self, digest: str, payload: Optional[Dict] = None) -> bool:
        fresh = super().record(digest, payload)
        if fresh and self._on_record is not None:
            self._on_record(digest)
        return fresh


class Dispatcher:
    """Daemon thread pumping ``service.process_next()`` until stopped."""

    def __init__(self, service, idle_poll_s: float = 0.5):
        self.service = service
        self.idle_poll_s = idle_poll_s
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-service-dispatcher",
                                        daemon=True)
        self._thread.start()

    def wake(self) -> None:
        """Nudge the loop (a job was just submitted)."""
        self._wake.set()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Ask the loop to exit and wait for the in-flight job to finish."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            worked = False
            try:
                worked = self.service.process_next()
            except Exception:  # noqa: BLE001 — a job failure must not
                # kill the dispatcher; process_next records per-job
                # errors itself, so anything reaching here is unexpected
                # but survivable.
                pass
            if worked:
                continue  # drain back-to-back jobs without parking
            self._wake.wait(timeout=self.idle_poll_s)
            self._wake.clear()
