"""JSON-RPC 2.0 over HTTP: the sweep service's wire protocol.

One endpoint (``POST /``) accepts JSON-RPC request objects::

    {"jsonrpc": "2.0", "id": 1, "method": "submit_sweep",
     "params": {"specs": [{"workload": "kmeans", "protocol": "mesi"}]}}

and answers ``{"jsonrpc": "2.0", "id": 1, "result": ...}`` or an error
object with the standard codes (parse error -32700, unknown method
-32601, invalid params -32602) plus two service codes: ``-32001`` job
not found, ``-32002`` invalid state transition (e.g. cancelling a
running job).  For operator convenience ``GET /health`` and
``GET /metrics`` return the same payloads as the corresponding RPC
methods, so a bare ``curl`` works as a liveness probe.

The server is the stdlib :class:`http.server.ThreadingHTTPServer` —
one thread per connection, no third-party dependency — and every
handler routes through the :data:`METHODS` registry, a plain name ->
``f(service, params) -> result`` table.  Registering a method is one
decorator; the registry is what ``repro.service.client`` mirrors.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.common.errors import ReproError

# JSON-RPC 2.0 standard codes
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
# service codes
NOT_FOUND = -32001
INVALID_STATE = -32002


class ServiceError(ReproError):
    """An RPC-visible failure, carrying its JSON-RPC error code."""

    def __init__(self, message: str, code: int = INTERNAL_ERROR):
        super().__init__(message)
        self.code = code


#: The method registry: name -> handler(service, params) -> JSON result.
METHODS: Dict[str, Callable] = {}


def rpc_method(name: str):
    """Register a handler under ``name`` in the method registry."""
    def register(fn: Callable) -> Callable:
        METHODS[name] = fn
        return fn
    return register


def _require(params: Dict, key: str):
    if key not in params:
        raise ServiceError(f"missing required param {key!r}", INVALID_PARAMS)
    return params[key]


@rpc_method("submit_sweep")
def _submit_sweep(service, params: Dict) -> Dict:
    return service.submit(
        _require(params, "specs"),
        priority=params.get("priority", 0),
        ttl_s=params.get("ttl_s"),
    )


@rpc_method("job_status")
def _job_status(service, params: Dict) -> Dict:
    return service.job_status(_require(params, "job_id"))


@rpc_method("job_result")
def _job_result(service, params: Dict) -> Dict:
    return service.job_result(_require(params, "job_id"))


@rpc_method("cancel")
def _cancel(service, params: Dict) -> Dict:
    return service.cancel(_require(params, "job_id"))


@rpc_method("list_jobs")
def _list_jobs(service, params: Dict) -> Dict:
    return service.list_jobs(state=params.get("state"),
                             limit=params.get("limit", 0))


@rpc_method("health")
def _health(service, params: Dict) -> Dict:
    return service.health()


@rpc_method("metrics")
def _metrics(service, params: Dict) -> Dict:
    return service.metrics_dump()


def dispatch(service, request: Dict) -> Dict:
    """Execute one parsed JSON-RPC request object; returns the response."""
    request_id = request.get("id")
    response = {"jsonrpc": "2.0", "id": request_id}
    method = request.get("method")
    params = request.get("params", {})
    if not isinstance(method, str):
        response["error"] = {"code": INVALID_REQUEST,
                             "message": "request needs a string 'method'"}
        return response
    if not isinstance(params, dict):
        response["error"] = {"code": INVALID_PARAMS,
                             "message": "'params' must be an object"}
        return response
    handler = METHODS.get(method)
    if handler is None:
        response["error"] = {"code": METHOD_NOT_FOUND,
                             "message": f"unknown method {method!r} "
                                        f"(have {sorted(METHODS)})"}
        return response
    try:
        response["result"] = handler(service, params)
    except ServiceError as exc:
        response["error"] = {"code": exc.code, "message": str(exc)}
    except Exception as exc:  # noqa: BLE001 — a handler bug must come
        # back as a structured error, not a dropped connection.
        response["error"] = {"code": INTERNAL_ERROR,
                             "message": f"{type(exc).__name__}: {exc}"}
    return response


class RpcHandler(BaseHTTPRequestHandler):
    """One JSON-RPC request per POST; GET /health and /metrics mirrors."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"
    #: set by make_server
    service = None
    quiet = True

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            request = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json({"jsonrpc": "2.0", "id": None,
                             "error": {"code": PARSE_ERROR,
                                       "message": "body is not valid JSON"}})
            return
        if not isinstance(request, dict):
            self._send_json({"jsonrpc": "2.0", "id": None,
                             "error": {"code": INVALID_REQUEST,
                                       "message": "batch requests are not "
                                                  "supported"}})
            return
        self._send_json(dispatch(self.service, request))

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        name = self.path.rstrip("/").lstrip("/") or "health"
        if name not in ("health", "metrics"):
            self._send_json({"error": {"code": NOT_FOUND,
                                       "message": f"no such page /{name}"}},
                            status=404)
            return
        self._send_json(dispatch(self.service,
                                 {"jsonrpc": "2.0", "id": None,
                                  "method": name}).get("result", {}))

    def log_message(self, fmt: str, *args) -> None:
        if not self.quiet:
            super().log_message(fmt, *args)


def make_server(service, host: str = "127.0.0.1", port: int = 0,
                quiet: bool = True) -> ThreadingHTTPServer:
    """A ready-to-run HTTP server bound to ``host:port`` (0: ephemeral).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop.  The bound port is
    ``server.server_address[1]``.
    """
    handler = type("BoundRpcHandler", (RpcHandler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
