"""JSON-RPC 2.0 over HTTP: the sweep service's wire protocol.

One endpoint (``POST /``) accepts JSON-RPC request objects::

    {"jsonrpc": "2.0", "id": 1, "method": "submit_sweep",
     "params": {"specs": [{"workload": "kmeans", "protocol": "mesi"}]}}

and answers ``{"jsonrpc": "2.0", "id": 1, "result": ...}`` or an error
object with the standard codes (parse error -32700, unknown method
-32601, invalid params -32602) plus two service codes: ``-32001`` job
not found, ``-32002`` invalid state transition (e.g. cancelling a
running job).  For operator convenience ``GET /health`` and
``GET /metrics`` return the same payloads as the corresponding RPC
methods, so a bare ``curl`` works as a liveness probe.

The service is also a shared **blob store**
(:class:`repro.store.HttpStore` is the client):

* ``GET/PUT/HEAD/DELETE /blob/<namespace>/<name>`` move raw payload
  bytes (results, packed traces) with no JSON framing — the data plane
  a fleet of sweep workers hammers;
* the ``store_*`` JSON-RPC methods (``store_list``,
  ``store_quarantine``, ``store_orphans``, ...) carry the management
  plane, so ``repro doctor --store http://...`` audits the remote tree
  exactly like a local one.

Keys are validated with :func:`repro.store.validate_key` before any
filesystem work, so a request can never escape the store root.

The server is the stdlib :class:`http.server.ThreadingHTTPServer` —
one thread per connection, no third-party dependency — and every
handler routes through the :data:`METHODS` registry, a plain name ->
``f(service, params) -> result`` table.  Registering a method is one
decorator; the registry is what ``repro.service.client`` mirrors.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.common.errors import ReproError
from repro.store.base import StoreError, validate_key

# JSON-RPC 2.0 standard codes
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
# service codes
NOT_FOUND = -32001
INVALID_STATE = -32002


class ServiceError(ReproError):
    """An RPC-visible failure, carrying its JSON-RPC error code."""

    def __init__(self, message: str, code: int = INTERNAL_ERROR):
        super().__init__(message)
        self.code = code


#: The method registry: name -> handler(service, params) -> JSON result.
METHODS: Dict[str, Callable] = {}


def rpc_method(name: str):
    """Register a handler under ``name`` in the method registry."""
    def register(fn: Callable) -> Callable:
        METHODS[name] = fn
        return fn
    return register


def _require(params: Dict, key: str):
    if key not in params:
        raise ServiceError(f"missing required param {key!r}", INVALID_PARAMS)
    return params[key]


@rpc_method("submit_sweep")
def _submit_sweep(service, params: Dict) -> Dict:
    return service.submit(
        _require(params, "specs"),
        priority=params.get("priority", 0),
        ttl_s=params.get("ttl_s"),
    )


@rpc_method("job_status")
def _job_status(service, params: Dict) -> Dict:
    return service.job_status(_require(params, "job_id"))


@rpc_method("job_result")
def _job_result(service, params: Dict) -> Dict:
    return service.job_result(_require(params, "job_id"))


@rpc_method("cancel")
def _cancel(service, params: Dict) -> Dict:
    return service.cancel(_require(params, "job_id"))


@rpc_method("list_jobs")
def _list_jobs(service, params: Dict) -> Dict:
    return service.list_jobs(state=params.get("state"),
                             limit=params.get("limit", 0))


@rpc_method("health")
def _health(service, params: Dict) -> Dict:
    return service.health()


@rpc_method("metrics")
def _metrics(service, params: Dict) -> Dict:
    return service.metrics_dump()


# -- blob-store management plane (repro.store.HttpStore mirrors these) -------

def _store_key(params: Dict) -> str:
    try:
        return validate_key(_require(params, "key"))
    except StoreError as exc:
        raise ServiceError(str(exc), INVALID_PARAMS)


@rpc_method("store_list")
def _store_list(service, params: Dict) -> Dict:
    return {"keys": service.store.list(params.get("prefix", ""))}


@rpc_method("store_quarantine")
def _store_quarantine(service, params: Dict) -> Dict:
    return {"quarantined": service.store.quarantine(
        _store_key(params), params.get("reason", ""))}


@rpc_method("store_quarantine_inventory")
def _store_quarantine_inventory(service, params: Dict) -> Dict:
    return service.store.quarantine_inventory(_require(params, "namespace"))


@rpc_method("store_orphans")
def _store_orphans(service, params: Dict) -> Dict:
    return {"orphans": service.store.orphans(_require(params, "namespace"))}


@rpc_method("store_remove_orphan")
def _store_remove_orphan(service, params: Dict) -> Dict:
    return {"removed": service.store.remove_orphan(
        _require(params, "namespace"), _require(params, "name"))}


@rpc_method("store_structural_check")
def _store_structural_check(service, params: Dict) -> Dict:
    return {"problems": service.store.structural_check(
        _require(params, "namespace"), fix=bool(params.get("fix", False)))}


@rpc_method("store_gc_log")
def _store_gc_log(service, params: Dict) -> Dict:
    entry = _require(params, "entry")
    if not isinstance(entry, dict):
        raise ServiceError("'entry' must be an object", INVALID_PARAMS)
    service.store.gc_log(_require(params, "namespace"), entry)
    return {"ok": True}


@rpc_method("store_gc_manifest")
def _store_gc_manifest(service, params: Dict) -> Dict:
    return {"entries": service.store.gc_manifest(_require(params, "namespace"))}


def dispatch(service, request: Dict) -> Dict:
    """Execute one parsed JSON-RPC request object; returns the response."""
    request_id = request.get("id")
    response = {"jsonrpc": "2.0", "id": request_id}
    method = request.get("method")
    params = request.get("params", {})
    if not isinstance(method, str):
        response["error"] = {"code": INVALID_REQUEST,
                             "message": "request needs a string 'method'"}
        return response
    if not isinstance(params, dict):
        response["error"] = {"code": INVALID_PARAMS,
                             "message": "'params' must be an object"}
        return response
    handler = METHODS.get(method)
    if handler is None:
        response["error"] = {"code": METHOD_NOT_FOUND,
                             "message": f"unknown method {method!r} "
                                        f"(have {sorted(METHODS)})"}
        return response
    try:
        response["result"] = handler(service, params)
    except ServiceError as exc:
        response["error"] = {"code": exc.code, "message": str(exc)}
    except Exception as exc:  # noqa: BLE001 — a handler bug must come
        # back as a structured error, not a dropped connection.
        response["error"] = {"code": INTERNAL_ERROR,
                             "message": f"{type(exc).__name__}: {exc}"}
    return response


class RpcHandler(BaseHTTPRequestHandler):
    """One JSON-RPC request per POST; GET /health and /metrics mirrors."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"
    #: set by make_server
    service = None
    quiet = True

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- raw blob data plane (GET/PUT/HEAD/DELETE /blob/<key>) ---------------

    def _blob_key(self) -> Optional[str]:
        """The validated blob key of this request, or ``None`` after an
        error response has been sent."""
        key = urllib.parse.unquote(self.path[len("/blob/"):])
        try:
            return validate_key(key)
        except StoreError as exc:
            if self.command == "HEAD":
                self._send_headers_only(400)
            else:
                self._send_json({"error": {"code": INVALID_PARAMS,
                                           "message": str(exc)}}, status=400)
            return None

    def _send_headers_only(self, status: int,
                           headers: Optional[Dict] = None) -> None:
        """A body-less response (HEAD answers must not carry a body)."""
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if not headers or "Content-Length" not in headers:
            self.send_header("Content-Length", "0")
        self.end_headers()

    def _blob_request(self, method: str) -> None:
        key = self._blob_key()
        if key is None:
            return
        try:
            if method == "GET":
                data = self.service.blob_get(key)
                if data is None:
                    self._send_json({"error": {"code": NOT_FOUND,
                                               "message": f"no blob {key}"}},
                                    status=404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            elif method == "HEAD":
                stat = self.service.blob_stat(key)
                if stat is None:
                    self._send_headers_only(404)
                    return
                self._send_headers_only(200, {
                    "Content-Type": "application/octet-stream",
                    "Content-Length": str(stat.size),
                    "X-Repro-Mtime": repr(stat.mtime),
                })
            elif method == "PUT":
                length = int(self.headers.get("Content-Length", "0"))
                data = self.rfile.read(length)
                self.service.blob_put(key, data)
                self._send_json({"ok": True, "key": key, "size": len(data)})
            elif method == "DELETE":
                removed = self.service.blob_delete(key)
                if not removed:
                    self._send_json({"error": {"code": NOT_FOUND,
                                               "message": f"no blob {key}"}},
                                    status=404)
                    return
                self._send_json({"ok": True, "key": key})
        except Exception as exc:  # noqa: BLE001 — a store fault must come
            # back as a structured error, not a dropped connection.
            if method == "HEAD":
                self._send_headers_only(500)
            else:
                self._send_json(
                    {"error": {"code": INTERNAL_ERROR,
                               "message": f"{type(exc).__name__}: {exc}"}},
                    status=500)

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            request = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json({"jsonrpc": "2.0", "id": None,
                             "error": {"code": PARSE_ERROR,
                                       "message": "body is not valid JSON"}})
            return
        if not isinstance(request, dict):
            self._send_json({"jsonrpc": "2.0", "id": None,
                             "error": {"code": INVALID_REQUEST,
                                       "message": "batch requests are not "
                                                  "supported"}})
            return
        self._send_json(dispatch(self.service, request))

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        if self.path.startswith("/blob/"):
            self._blob_request("GET")
            return
        name = self.path.rstrip("/").lstrip("/") or "health"
        if name not in ("health", "metrics"):
            self._send_json({"error": {"code": NOT_FOUND,
                                       "message": f"no such page /{name}"}},
                            status=404)
            return
        self._send_json(dispatch(self.service,
                                 {"jsonrpc": "2.0", "id": None,
                                  "method": name}).get("result", {}))

    def do_HEAD(self) -> None:  # noqa: N802 — http.server naming
        if self.path.startswith("/blob/"):
            self._blob_request("HEAD")
            return
        self._send_headers_only(404)

    def do_PUT(self) -> None:  # noqa: N802 — http.server naming
        if self.path.startswith("/blob/"):
            self._blob_request("PUT")
            return
        self._send_json({"error": {"code": NOT_FOUND,
                                   "message": "PUT is only for /blob/<key>"}},
                        status=404)

    def do_DELETE(self) -> None:  # noqa: N802 — http.server naming
        if self.path.startswith("/blob/"):
            self._blob_request("DELETE")
            return
        self._send_json({"error": {"code": NOT_FOUND,
                                   "message": "DELETE is only for "
                                              "/blob/<key>"}},
                        status=404)

    def log_message(self, fmt: str, *args) -> None:
        if not self.quiet:
            super().log_message(fmt, *args)


def make_server(service, host: str = "127.0.0.1", port: int = 0,
                quiet: bool = True) -> ThreadingHTTPServer:
    """A ready-to-run HTTP server bound to ``host:port`` (0: ephemeral).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop.  The bound port is
    ``server.server_address[1]``.
    """
    handler = type("BoundRpcHandler", (RpcHandler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
