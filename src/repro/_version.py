"""The single source of the package version.

``repro --version`` and the service's ``health`` RPC both answer from
here.  An *installed* build reports what its package metadata says
(``importlib.metadata``), so a wheel's version is authoritative; a
source checkout run via ``PYTHONPATH=src`` has no installed
distribution and falls back to the pinned literal below (kept in sync
with ``pyproject.toml``).
"""

from __future__ import annotations

#: Keep equal to ``[project] version`` in pyproject.toml.
FALLBACK_VERSION = "1.2.0"


def package_version() -> str:
    """The installed distribution's version, or the source fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover — stdlib since 3.8
        return FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return FALLBACK_VERSION
