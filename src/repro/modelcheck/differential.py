"""Differential equivalence checking: Protozoa vs MESI, transition for
transition.

The paper's correctness claim (i), Section 3.6: *with fixed-granularity
predictions, Protozoa's state transitions match MESI's exactly.*  This
module turns that claim into an executable proof obligation.  A Protozoa
variant is pinned to the whole-region predictor (so every miss requests
the full region, the fixed-granularity degenerate case) and run in
lock-step with a MESI reference on the same operation sequences; after
each operation the two engines' *observables* are compared:

* the miss classification (hit / read miss / write miss / upgrade),
* the complete coherence message chain — type, source, destination, and
  payload word count of every message, in emission order — modulo one
  deliberate renaming: the overlap-aware protocols answer a probe they
  survive with ``ACK-S`` ("invalidation acknowledged, still sharing")
  where MESI answers ``ACK``; both are 8-byte control replies and the
  directory lands in the same state, so the two labels are unified before
  comparison, and
* the resulting abstract machine state: with whole-region blocks the two
  substrates produce directly comparable canonical keys, so "transitions
  match" is checked literally — after every operation both engines must
  occupy the *same* abstract state (L1 block sets, directory, L2).

``run_exhaustive`` covers every sequence up to the depth bound, pruning on
the *product* of the two engines' canonical state keys: once both engines
have jointly revisited an abstract state pair, all extensions behave
identically and need not be replayed.  Evict-pressure ops and tiny L1s are
excluded here — the two substrates legitimately differ under capacity
churn (the paper compares them at matched capacity, not matched geometry).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.common.params import PredictorKind, ProtocolKind
from repro.modelcheck.explorer import modelcheck_config
from repro.modelcheck.ops import Op, build_alphabet, format_trace
from repro.system.machine import build_protocol

Observation = Tuple[str, Tuple[tuple, ...]]  # (miss kind, message chain)


def observe(protocol, op: Op) -> Observation:
    """Apply ``op`` and record the observable behaviour it produced."""
    events: List[tuple] = []
    protocol.trace_hook = lambda mtype, src, dst, words: events.append(
        (mtype.label, src, dst, words)
    )
    stats = protocol.stats
    before = (stats.read_misses, stats.write_misses, stats.upgrade_misses)
    try:
        op.apply(protocol)
    finally:
        protocol.trace_hook = None
    after = (stats.read_misses, stats.write_misses, stats.upgrade_misses)
    if after[0] > before[0]:
        kind = "read-miss"
    elif after[1] > before[1]:
        kind = "write-miss"
    elif after[2] > before[2]:
        kind = "upgrade"
    else:
        kind = "hit"
    return kind, tuple(events)


@dataclass
class Divergence:
    """The first operation where the two engines disagreed (or crashed)."""

    ops: List[Op]  # full sequence ending in the diverging op
    reference: str
    variant: str
    obs_reference: Optional[Observation] = None
    obs_variant: Optional[Observation] = None
    error: Optional[str] = None  # exception text if an engine raised instead

    def pretty(self) -> str:
        lines = [f"{self.reference} vs {self.variant} diverge:",
                 format_trace(self.ops)]
        if self.error is not None:
            lines.append(f"  engine error: {self.error}")
        else:
            lines.append(f"  {self.reference}: {self.obs_reference}")
            lines.append(f"  {self.variant}:  {self.obs_variant}")
        return "\n".join(lines)


@dataclass
class DiffResult:
    """Coverage of one exhaustive differential run."""

    reference: str
    variant: str
    depth: int
    alphabet_size: int
    states: int = 0
    transitions: int = 0
    elapsed: float = 0.0
    divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


class DifferentialChecker:
    """Lock-step MESI-vs-variant equivalence over bounded op sequences."""

    def __init__(self, variant: ProtocolKind, cores: int = 2, regions: int = 1,
                 depth: int = 6, alphabet: Optional[Sequence[Op]] = None,
                 words: Sequence[int] = (0, 7), spans: Sequence[int] = (1,)):
        if variant is ProtocolKind.MESI:
            raise ValueError("differential checking compares a Protozoa "
                             "variant against the MESI reference")
        self.variant = variant
        self.depth = depth
        # Default (large) L1 geometry: the claim covers protocol
        # transitions, not capacity behaviour, and the substrates differ
        # legitimately once evictions engage.
        self.ref_config = modelcheck_config(
            ProtocolKind.MESI, cores, tiny_l1=False)
        self.var_config = modelcheck_config(
            variant, cores, predictor=PredictorKind.WHOLE_REGION, tiny_l1=False)
        wpr = self.ref_config.words_per_region
        self.alphabet = list(alphabet) if alphabet is not None else build_alphabet(
            cores, regions, wpr, words=[w for w in words if w < wpr], spans=spans,
        )

    def _fresh_pair(self):
        return build_protocol(self.ref_config), build_protocol(self.var_config)

    def check_sequence(self, ops: Sequence[Op]) -> Optional[Divergence]:
        """Replay one op sequence from scratch on both engines."""
        ref, var = self._fresh_pair()
        prefix: List[Op] = []
        for op in ops:
            prefix.append(op)
            diff = self._step(ref, var, prefix, op)
            if diff is not None:
                return diff
        return None

    @staticmethod
    def _normalize(obs: Observation) -> Observation:
        """Unify the ACK / ACK-S labels (see module docstring)."""
        kind, events = obs
        return kind, tuple(
            ("ACK" if label == "ACK-S" else label, src, dst, words)
            for label, src, dst, words in events
        )

    def _step(self, ref, var, prefix: List[Op], op: Op) -> Optional[Divergence]:
        names = (self.ref_config.protocol.value, self.var_config.protocol.value)
        try:
            obs_ref = observe(ref, op)
            obs_var = observe(var, op)
        except ReproError as exc:
            return Divergence(ops=list(prefix), reference=names[0],
                              variant=names[1],
                              error=f"{type(exc).__name__}: {exc}")
        if self._normalize(obs_ref) != self._normalize(obs_var):
            return Divergence(ops=list(prefix), reference=names[0],
                              variant=names[1],
                              obs_reference=obs_ref, obs_variant=obs_var)
        if ref.canonical_key() != var.canonical_key():
            return Divergence(ops=list(prefix), reference=names[0],
                              variant=names[1],
                              error="abstract machine states diverge "
                                    "(identical messages, different state)")
        return None

    def run_exhaustive(self) -> DiffResult:
        """Cover every op sequence up to the depth bound (product-state BFS)."""
        started = time.monotonic()
        ref, var = self._fresh_pair()
        result = DiffResult(
            reference=self.ref_config.protocol.value,
            variant=self.var_config.protocol.value,
            depth=self.depth,
            alphabet_size=len(self.alphabet),
        )
        initial = (ref.snapshot_state(), var.snapshot_state())
        seen = {(ref.canonical_key(), var.canonical_key())}
        frontier = [(initial, ())]
        for _level in range(self.depth):
            next_frontier = []
            for (ref_snap, var_snap), path in frontier:
                for op in self.alphabet:
                    ref.restore_state(ref_snap)
                    var.restore_state(var_snap)
                    diff = self._step(ref, var, list(path) + [op], op)
                    if diff is not None:
                        result.divergence = diff
                        result.states = len(seen)
                        result.elapsed = time.monotonic() - started
                        return result
                    result.transitions += 1
                    key = (ref.canonical_key(), var.canonical_key())
                    if key not in seen:
                        seen.add(key)
                        next_frontier.append(
                            ((ref.snapshot_state(), var.snapshot_state()),
                             path + (op,))
                        )
            frontier = next_frontier
            if not frontier:
                break
        result.states = len(seen)
        result.elapsed = time.monotonic() - started
        return result
