"""Operation alphabets and replayable counterexample traces.

The model checker explores sequences drawn from a small, fixed *alphabet*
of memory operations — the classic recipe for protocol state-space
exploration (2–3 cores, 1–2 regions, a couple of word offsets, plus
evict-pressure accesses that force capacity churn).  Keeping the alphabet
tiny is what makes bounded-exhaustive search tractable; the canonical
state hashing in :mod:`repro.coherence.snapshot` does the rest.

Counterexamples are saved as plain-text traces (one op per line, ``#``
header lines carrying the machine parameters) so a failure found by the
explorer — or shrunk from the random tester — can be replayed later with
``repro check --replay FILE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, TextIO, Tuple

from repro.common.addresses import WORD_BYTES
from repro.common.errors import SimulationError


@dataclass(frozen=True)
class Op:
    """One memory operation of the exploration alphabet."""

    core: int
    kind: str  # "R" (load) or "W" (store)
    region: int
    word: int
    span: int = 1  # words accessed, starting at ``word``
    pressure: bool = False  # capacity-churn filler access (labelling only)

    def __post_init__(self):
        if self.kind not in ("R", "W"):
            raise SimulationError(f"op kind must be R or W, got {self.kind!r}")
        if self.core < 0 or self.region < 0 or self.word < 0 or self.span < 1:
            raise SimulationError(f"malformed op {self!r}")

    def addr(self, region_bytes: int) -> int:
        return self.region * region_bytes + self.word * WORD_BYTES

    def apply(self, protocol) -> int:
        """Run this operation on a protocol engine; returns its latency."""
        addr = self.addr(protocol.config.region_bytes)
        size = self.span * WORD_BYTES
        if self.kind == "W":
            return protocol.write(self.core, addr, size, pc=self.core)
        return protocol.read(self.core, addr, size, pc=self.core)

    def pretty(self) -> str:
        verb = "write" if self.kind == "W" else "read"
        words = (f"word {self.word}" if self.span == 1
                 else f"words {self.word}-{self.word + self.span - 1}")
        note = "  (evict pressure)" if self.pressure else ""
        return f"core {self.core}: {verb} R{self.region} {words}{note}"

    def encode(self) -> str:
        flag = " P" if self.pressure else ""
        return f"{self.core} {self.kind} {self.region} {self.word} {self.span}{flag}"

    @staticmethod
    def decode(line: str) -> "Op":
        fields = line.split()
        if len(fields) not in (5, 6) or (len(fields) == 6 and fields[5] != "P"):
            raise SimulationError(f"malformed trace line: {line!r}")
        core, kind, region, word, span = fields[:5]
        try:
            return Op(int(core), kind, int(region), int(word), int(span),
                      pressure=len(fields) == 6)
        except ValueError:
            raise SimulationError(f"malformed trace line: {line!r}")


def build_alphabet(cores: int, regions: int, words_per_region: int, *,
                   words: Sequence[int] = (0,), spans: Sequence[int] = (1,),
                   pressure_regions: int = 0,
                   pressure_stride: int = 1) -> List[Op]:
    """The exploration alphabet for a small machine.

    Every core gets a read and a write of each (word, span) offset in each
    shared region, plus ``pressure_regions`` extra read-only regions placed
    ``pressure_stride`` apart (set the stride to the L1 set count to force
    every filler into one set and exercise WBACK/WBACK-LAST ordering).
    """
    alphabet: List[Op] = []
    for core in range(cores):
        for region in range(regions):
            for word in words:
                for span in spans:
                    if word + span > words_per_region:
                        continue
                    alphabet.append(Op(core, "R", region, word, span))
                    alphabet.append(Op(core, "W", region, word, span))
    for k in range(pressure_regions):
        region = regions + k * max(pressure_stride, 1)
        for core in range(cores):
            alphabet.append(Op(core, "R", region, 0, 1, pressure=True))
    return alphabet


def format_trace(ops: Iterable[Op]) -> str:
    """Human-readable numbered listing of an op sequence."""
    return "\n".join(f"  {i + 1}. {op.pretty()}" for i, op in enumerate(ops))


def write_trace(ops: Sequence[Op], fh: TextIO, meta: Dict[str, str]) -> None:
    """Write a replayable counterexample trace with ``meta`` header lines."""
    fh.write("# repro modelcheck counterexample\n")
    for key, value in meta.items():
        fh.write(f"# {key}: {value}\n")
    for op in ops:
        fh.write(op.encode() + "\n")


def read_trace(fh: TextIO) -> Tuple[Dict[str, str], List[Op]]:
    """Parse a trace written by :func:`write_trace`."""
    meta: Dict[str, str] = {}
    ops: List[Op] = []
    for raw in fh:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if ":" in body:
                key, value = body.split(":", 1)
                meta[key.strip()] = value.strip()
            continue
        ops.append(Op.decode(line))
    return meta, ops
