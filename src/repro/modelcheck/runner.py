"""Orchestration for ``repro check``: run the full verification battery.

Three passes per invocation (selectable via ``mode``):

* **explore** — bounded-exhaustive search of each protocol with invariant
  and value checking; any violation is shrunk and reported;
* **diff** — exhaustive differential equivalence of each Protozoa variant
  (pinned to whole-region predictions) against MESI;
* **mutants** — the seeded-bug audit: every registered mutant must be
  detected and its counterexample shrunk to a short reproducer.

``run_check`` returns a :class:`CheckReport` that knows how to print
itself and whether the battery passed; the CLI and the CI smoke target
are thin wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TextIO

from repro.common.params import ProtocolKind
from repro.modelcheck.differential import DiffResult, DifferentialChecker
from repro.modelcheck.explorer import (
    ExplorationResult,
    Explorer,
    modelcheck_config,
)
from repro.modelcheck.mutants import MutantResult, audit
from repro.modelcheck.ops import build_alphabet
from repro.modelcheck.shrinker import ShrunkTrace, shrink_counterexample
from repro.system.machine import build_protocol


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation covered and concluded."""

    explorations: List[ExplorationResult] = field(default_factory=list)
    diffs: List[DiffResult] = field(default_factory=list)
    mutant_results: List[MutantResult] = field(default_factory=list)
    shrunk: List[ShrunkTrace] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (all(r.ok for r in self.explorations)
                and all(d.ok for d in self.diffs)
                and all(m.detected for m in self.mutant_results))

    def render(self, out: TextIO) -> None:
        if self.explorations:
            out.write("bounded exploration (invariants + value checking):\n")
            for r in self.explorations:
                verdict = "ok" if r.ok else "VIOLATION"
                out.write(f"  {r.protocol:>15}: {verdict:>9}  depth {r.depth}, "
                          f"{r.states} states, {r.transitions} transitions, "
                          f"{r.elapsed:.1f}s\n")
        if self.diffs:
            out.write("differential vs MESI (whole-region predictions):\n")
            for d in self.diffs:
                verdict = "equivalent" if d.ok else "DIVERGED"
                out.write(f"  {d.variant:>15}: {verdict:>9}  depth {d.depth}, "
                          f"{d.states} product states, {d.transitions} "
                          f"transitions, {d.elapsed:.1f}s\n")
                if not d.ok:
                    out.write(d.divergence.pretty() + "\n")
        if self.mutant_results:
            out.write("mutation audit (every seeded bug must be caught):\n")
            for m in self.mutant_results:
                if m.detected:
                    out.write(f"  {m.protocol:>15} {m.mutant:<22} detected, "
                              f"shrunk to {m.shrunk_length} ops\n")
                else:
                    out.write(f"  {m.protocol:>15} {m.mutant:<22} MISSED "
                              f"({m.states} states explored)\n")
        for trace in self.shrunk:
            out.write(trace.pretty() + "\n")
        out.write("RESULT: " + ("PASS" if self.ok else "FAIL") + "\n")


def run_check(protocols: Optional[Sequence[ProtocolKind]] = None, *,
              cores: int = 2, regions: int = 1, depth: int = 6,
              pressure_regions: int = 1, mode: str = "all",
              mutant_depth: int = 4) -> CheckReport:
    """Run the selected verification passes over the selected protocols."""
    kinds = list(protocols) if protocols else list(ProtocolKind)
    report = CheckReport()

    if mode in ("all", "explore"):
        for kind in kinds:
            config = modelcheck_config(kind, cores)
            alphabet = build_alphabet(
                cores, regions, config.words_per_region,
                words=(0, config.words_per_region - 1),
                pressure_regions=pressure_regions,
                pressure_stride=config.l1.sets,
            )
            outcome = Explorer(config, alphabet=alphabet, depth=depth).explore()
            report.explorations.append(outcome)
            if outcome.counterexample is not None:
                report.shrunk.append(shrink_counterexample(
                    outcome.counterexample.ops,
                    lambda config=config: build_protocol(config),
                    kind.value,
                    extra_meta={"cores": str(cores), "source": "explorer"},
                ))

    if mode in ("all", "diff"):
        for kind in kinds:
            if kind is ProtocolKind.MESI:
                continue
            checker = DifferentialChecker(kind, cores=cores, regions=regions,
                                          depth=depth)
            report.diffs.append(checker.run_exhaustive())

    if mode in ("all", "mutants"):
        for kind in kinds:
            report.mutant_results.extend(
                audit(kind, cores=cores, depth=mutant_depth)
            )

    return report
