"""Protocol model checking and differential verification (Section 3.6, as
a subsystem).

The paper argues Protozoa's correctness in three claims; this package
turns each into machinery that can *fail*:

1. an exhaustive bounded :class:`~repro.modelcheck.explorer.Explorer`
   enumerating all interleavings of a small access alphabet with
   invariant and value checking on, pruned by canonical state hashing;
2. a :class:`~repro.modelcheck.differential.DifferentialChecker` proving
   each Protozoa variant equivalent to MESI under fixed-granularity
   predictions, transition for transition;
3. a delta-debugging :func:`~repro.modelcheck.shrinker.shrink` that
   minimizes any failing sequence to a replayable reproducer; and
4. a mutation harness (:mod:`repro.modelcheck.mutants`) seeding known
   coherence bugs to prove the battery detects them.

Entry points: ``repro check`` on the command line, or
:func:`~repro.modelcheck.runner.run_check` from code.
"""

from repro.modelcheck.differential import (
    DiffResult,
    DifferentialChecker,
    Divergence,
    observe,
)
from repro.modelcheck.explorer import (
    Counterexample,
    ExplorationResult,
    Explorer,
    modelcheck_config,
)
from repro.modelcheck.mutants import (
    MUTANTS,
    Mutant,
    MutantResult,
    audit,
    build_mutant,
    hunt,
)
from repro.modelcheck.ops import (
    Op,
    build_alphabet,
    format_trace,
    read_trace,
    write_trace,
)
from repro.modelcheck.runner import CheckReport, run_check
from repro.modelcheck.shrinker import (
    ShrunkTrace,
    failure_oracle,
    shrink,
    shrink_counterexample,
)

__all__ = [
    "CheckReport",
    "Counterexample",
    "DiffResult",
    "DifferentialChecker",
    "Divergence",
    "ExplorationResult",
    "Explorer",
    "MUTANTS",
    "Mutant",
    "MutantResult",
    "Op",
    "ShrunkTrace",
    "audit",
    "build_alphabet",
    "build_mutant",
    "failure_oracle",
    "format_trace",
    "hunt",
    "modelcheck_config",
    "observe",
    "read_trace",
    "run_check",
    "shrink",
    "shrink_counterexample",
    "write_trace",
]
