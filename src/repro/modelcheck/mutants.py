"""Mutation harness: prove the model checker actually catches bugs.

A verifier that has never seen a failure proves nothing — the standard
antidote (BlackParrot's verification flow, classic mutation testing) is to
inject *known* protocol bugs and demand that the checker produces a
counterexample for every one.  Each mutant here wraps a protocol class
with one seeded defect taken from the coherence-bug folklore:

* ``skip-invalidation`` — a write miss never probes the sharers, so stale
  read-only copies survive a store (the textbook SWMR violation);
* ``drop-writer`` — the directory forgets to record the new owner, so a
  caching core goes untracked (directory-superset violation);
* ``ack-before-writeback`` — probed owners acknowledge without actually
  writing their dirty data back, so a later reader sees stale values;
* ``skip-reader-tracking`` — shared read grants are not recorded in the
  reader set, again leaving a caching core untracked.

:func:`audit` runs the bounded explorer against every applicable mutant
and delta-debugs each counterexample to a minimal reproducer; a mutant
that survives exploration is a hole in the checker, reported as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.common.params import ProtocolKind, SystemConfig
from repro.modelcheck.explorer import Explorer, modelcheck_config
from repro.modelcheck.ops import Op
from repro.modelcheck.shrinker import ShrunkTrace, shrink_counterexample
from repro.system.machine import _PROTOCOLS


def _skip_invalidation(cls: Type) -> Type:
    class SkipInvalidation(cls):
        def _probe(self, core, region, req, is_write, entry, home):
            if is_write:
                return []  # sharers keep their (now stale) copies
            return super()._probe(core, region, req, is_write, entry, home)

    return SkipInvalidation


def _drop_writer(cls: Type) -> Type:
    class DropWriter(cls):
        def _grant(self, core, region, req, is_write, entry):
            granted = super()._grant(core, region, req, is_write, entry)
            if is_write:
                entry.writers.discard(core)  # directory forgets the owner
            return granted

    return DropWriter


def _ack_before_writeback(cls: Type) -> Type:
    class AckBeforeWriteback(cls):
        def _writeback_blocks(self, core, blocks):
            # Acknowledge the probe without moving the dirty data: clear
            # the dirty bits and report an empty writeback payload.
            for block in blocks:
                block.dirty_mask = 0
            return 0, 0

    return AckBeforeWriteback


def _skip_reader_tracking(cls: Type) -> Type:
    class SkipReaderTracking(cls):
        def _grant(self, core, region, req, is_write, entry):
            granted = super()._grant(core, region, req, is_write, entry)
            if not is_write:
                entry.readers.discard(core)  # shared grant left untracked
            return granted

    return SkipReaderTracking


@dataclass(frozen=True)
class Mutant:
    """One seeded protocol bug."""

    name: str
    description: str
    mutate: Callable[[Type], Type]


MUTANTS: Dict[str, Mutant] = {
    m.name: m
    for m in (
        Mutant("skip-invalidation",
               "write misses never invalidate remote sharers", _skip_invalidation),
        Mutant("drop-writer",
               "the directory forgets the granted writer", _drop_writer),
        Mutant("ack-before-writeback",
               "probed owners ack without writing dirty data back",
               _ack_before_writeback),
        Mutant("skip-reader-tracking",
               "shared read grants are not tracked as readers",
               _skip_reader_tracking),
    )
}


def build_mutant(name: str, config: SystemConfig):
    """A protocol instance for ``config`` with the named bug injected."""
    mutant = MUTANTS[name]
    return mutant.mutate(_PROTOCOLS[config.protocol])(config)


@dataclass
class MutantResult:
    """Outcome of hunting one seeded bug."""

    mutant: str
    protocol: str
    detected: bool
    states: int
    transitions: int
    shrunk: Optional[ShrunkTrace] = None

    @property
    def shrunk_length(self) -> int:
        return len(self.shrunk.ops) if self.shrunk else 0


def hunt(name: str, config: SystemConfig, depth: int = 4,
         alphabet: Optional[Sequence[Op]] = None) -> MutantResult:
    """Explore one mutated protocol; shrink the counterexample if caught."""
    build = lambda: build_mutant(name, config)
    explorer = Explorer(config, alphabet=alphabet or (), depth=depth, build=build)
    outcome = explorer.explore()
    result = MutantResult(
        mutant=name,
        protocol=config.protocol.value,
        detected=not outcome.ok,
        states=outcome.states,
        transitions=outcome.transitions,
    )
    if outcome.counterexample is not None:
        result.shrunk = shrink_counterexample(
            outcome.counterexample.ops, build, config.protocol.value,
            extra_meta={"mutant": name, "cores": str(config.cores)},
        )
    return result


def audit(protocol: ProtocolKind, cores: int = 2, depth: int = 4,
          alphabet: Optional[Sequence[Op]] = None) -> List[MutantResult]:
    """Hunt every registered mutant under one protocol kind."""
    config = modelcheck_config(protocol, cores)
    return [hunt(name, config, depth=depth, alphabet=alphabet)
            for name in sorted(MUTANTS)]
