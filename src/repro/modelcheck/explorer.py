"""Bounded-exhaustive state-space exploration of the coherence protocols.

The explorer enumerates *every* interleaving of a small operation alphabet
(see :mod:`repro.modelcheck.ops`) up to a depth bound, over one protocol
instance with invariant and value checking enabled.  Search is
breadth-first over abstract states: after each operation the engine's
canonical key (:func:`repro.coherence.snapshot.canonical_key`) is computed
and already-visited states are pruned, so the frontier saturates instead
of growing ``|alphabet|**depth``-fold.  Any
:class:`~repro.common.errors.ReproError` raised along the way — SWMR
broken, a stale value read, an illegal transition — becomes a
counterexample carrying the exact operation sequence that reached it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.common.errors import ReproError
from repro.common.params import (
    CacheGeometry,
    PredictorKind,
    ProtocolKind,
    SystemConfig,
)
from repro.modelcheck.ops import Op, build_alphabet, format_trace
from repro.system.machine import build_protocol

#: Byte budget that fits two whole-region Amoeba blocks (tag 8 + 64 data)
#: in a single set — the third install must evict, which is exactly the
#: capacity churn the evict-pressure ops are there to trigger.
_TINY_SET_BYTES = 160


def modelcheck_config(protocol: ProtocolKind, cores: int = 2, *,
                      predictor: PredictorKind = PredictorKind.SINGLE_WORD,
                      tiny_l1: bool = True, three_hop: bool = False,
                      **overrides) -> SystemConfig:
    """A small, fully-checked machine for bounded exploration.

    ``tiny_l1`` shrinks every L1 to one set holding two region-sized
    blocks, putting capacity evictions (WBACK / WBACK-LAST ordering,
    stale-sharer NACKs) within reach of a depth-6 search.
    """
    geometry = (CacheGeometry(sets=1, set_bytes=_TINY_SET_BYTES, fixed_ways=2)
                if tiny_l1 else CacheGeometry())
    return SystemConfig(
        protocol=protocol,
        cores=cores,
        predictor=predictor,
        l1=geometry,
        three_hop=three_hop,
        check_invariants=True,
        check_values=True,
        **overrides,
    )


@dataclass
class Counterexample:
    """An operation sequence that provably breaks a protocol."""

    ops: List[Op]
    error: str  # exception class name
    message: str

    def pretty(self) -> str:
        header = f"{self.error}: {self.message}"
        return f"{header}\n{format_trace(self.ops)}"


@dataclass
class ExplorationResult:
    """What one bounded search covered, and what (if anything) it found."""

    protocol: str
    depth: int
    alphabet_size: int
    states: int = 0
    transitions: int = 0
    elapsed: float = 0.0
    counterexample: Optional[Counterexample] = None
    frontier_truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.counterexample is None


@dataclass
class Explorer:
    """Breadth-first bounded model checker for one protocol instance.

    ``build`` overrides protocol construction (the mutation harness passes
    factories producing deliberately broken engines); by default the
    configured protocol is built through the standard machine assembly.
    """

    config: SystemConfig
    alphabet: Sequence[Op] = ()
    depth: int = 6
    build: Optional[Callable[[], object]] = None
    max_states: Optional[int] = None  # safety valve for big alphabets

    def __post_init__(self):
        self.config = replace(self.config, check_invariants=True, check_values=True)
        if not self.alphabet:
            self.alphabet = build_alphabet(
                self.config.cores, 1, self.config.words_per_region,
                words=(0, self.config.words_per_region - 1),
                pressure_regions=1, pressure_stride=self.config.l1.sets,
            )

    def _make(self):
        if self.build is not None:
            return self.build()
        return build_protocol(self.config)

    def explore(self) -> ExplorationResult:
        """Run the search; returns coverage plus the first counterexample."""
        started = time.monotonic()
        protocol = self._make()
        result = ExplorationResult(
            protocol=self.config.protocol.value,
            depth=self.depth,
            alphabet_size=len(self.alphabet),
        )
        initial = protocol.snapshot_state()
        seen = {protocol.canonical_key()}
        frontier = [(initial, ())]
        for _level in range(self.depth):
            next_frontier = []
            for snap, path in frontier:
                for op in self.alphabet:
                    protocol.restore_state(snap)
                    try:
                        op.apply(protocol)
                        protocol.check_all_invariants()
                    except ReproError as exc:
                        result.counterexample = Counterexample(
                            ops=list(path) + [op],
                            error=type(exc).__name__,
                            message=str(exc),
                        )
                        result.states = len(seen)
                        result.elapsed = time.monotonic() - started
                        return result
                    result.transitions += 1
                    key = protocol.canonical_key()
                    if key not in seen:
                        seen.add(key)
                        if self.max_states and len(seen) > self.max_states:
                            result.frontier_truncated = True
                        else:
                            next_frontier.append(
                                (protocol.snapshot_state(), path + (op,))
                            )
            frontier = next_frontier
            if not frontier:
                break
        result.states = len(seen)
        result.elapsed = time.monotonic() - started
        return result
