"""Counterexample minimization (delta debugging).

A failing operation sequence — from the bounded explorer, the differential
checker, or a long random-tester run — is rarely minimal: most of its
operations are noise that happened to precede the two or three that
actually corner the protocol.  This module reduces any failing sequence to
a *1-minimal* reproducer (no single operation can be removed and still
fail) with the classic ddmin chunk-removal loop, then packages it as a
pretty-printable, replayable :class:`ShrunkTrace`.

The oracle contract: a callable taking an op sequence and returning True
when the sequence still exhibits the failure.  :func:`failure_oracle`
builds the common case — "a fresh engine raises a ReproError somewhere
along the sequence" — from a protocol factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from repro.common.errors import ReproError, SimulationError
from repro.modelcheck.ops import Op, format_trace, write_trace

Oracle = Callable[[Sequence[Op]], bool]


def failure_oracle(build: Callable[[], object],
                   check_every_op: bool = True) -> Oracle:
    """An oracle that replays ops on a fresh engine and watches for raises."""

    def oracle(ops: Sequence[Op]) -> bool:
        protocol = build()
        try:
            for op in ops:
                op.apply(protocol)
                if check_every_op:
                    protocol.check_all_invariants()
            protocol.check_all_invariants()
        except ReproError:
            return True
        return False

    return oracle


def shrink(ops: Sequence[Op], oracle: Oracle) -> List[Op]:
    """ddmin: reduce ``ops`` to a 1-minimal sequence still failing ``oracle``.

    Raises :class:`SimulationError` if the input does not fail to begin
    with — a silent "shrink" of a passing sequence would hide a harness
    bug.
    """
    current = list(ops)
    if not oracle(current):
        raise SimulationError("shrink() called on a non-failing sequence")
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and oracle(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    return current


@dataclass
class ShrunkTrace:
    """A minimized counterexample, ready to print or save for replay."""

    ops: List[Op]
    error: str
    message: str
    protocol: str
    extra_meta: Dict[str, str] = field(default_factory=dict)

    def pretty(self) -> str:
        lines = [f"{self.error}: {self.message}",
                 f"minimal reproducer ({len(self.ops)} ops, {self.protocol}):",
                 format_trace(self.ops)]
        return "\n".join(lines)

    def save(self, fh: TextIO) -> None:
        meta = {"protocol": self.protocol, "error": self.error,
                "message": self.message}
        meta.update(self.extra_meta)
        write_trace(self.ops, fh, meta)


def shrink_counterexample(ops: Sequence[Op], build: Callable[[], object],
                          protocol_name: str,
                          extra_meta: Optional[Dict[str, str]] = None) -> ShrunkTrace:
    """Shrink a raising op sequence and capture the final error it triggers."""
    oracle = failure_oracle(build)
    minimal = shrink(ops, oracle)
    # Replay once more to harvest the exact error the minimal trace raises.
    protocol = build()
    error, message = "ReproError", "failure did not reproduce on final replay"
    try:
        for op in minimal:
            op.apply(protocol)
            protocol.check_all_invariants()
        protocol.check_all_invariants()
    except ReproError as exc:
        error, message = type(exc).__name__, str(exc)
    return ShrunkTrace(ops=minimal, error=error, message=message,
                       protocol=protocol_name, extra_meta=dict(extra_meta or {}))
