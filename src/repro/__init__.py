"""Protozoa: adaptive granularity cache coherence (ISCA 2013) — reproduction.

A trace-driven multicore coherence simulator implementing the paper's full
system: the Amoeba-Cache variable-granularity L1 substrate, a conventional
MESI baseline, and the three Protozoa protocols (SW, SW+MR, MW), plus the
synthetic workload suite, statistics, and experiment harnesses that
regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import SystemConfig, ProtocolKind, simulate, build_streams

    streams = build_streams("linear-regression", cores=16, per_core=2000)
    mesi = simulate(streams, SystemConfig(protocol=ProtocolKind.MESI))
    mw = simulate(
        build_streams("linear-regression", cores=16, per_core=2000),
        SystemConfig(protocol=ProtocolKind.PROTOZOA_MW),
    )
    print(mesi.mpki(), mw.mpki())  # Protozoa-MW eliminates the false sharing
"""

from repro.common.params import (
    CacheGeometry,
    L1Organization,
    L2Config,
    NetworkConfig,
    PredictorKind,
    ProtocolKind,
    SystemConfig,
)
from repro.common.wordrange import WordRange
from repro.common.errors import (
    ConfigError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.system.machine import build_protocol, simulate
from repro.system.results import RunResult
from repro.system.simulator import Simulator
from repro.trace.events import MemAccess
from repro.trace.workloads import WORKLOADS, build_streams, get_workload

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "ConfigError",
    "L1Organization",
    "InvariantViolation",
    "L2Config",
    "MemAccess",
    "NetworkConfig",
    "PredictorKind",
    "ProtocolError",
    "ProtocolKind",
    "ReproError",
    "RunResult",
    "SimulationError",
    "Simulator",
    "SystemConfig",
    "WORKLOADS",
    "WordRange",
    "build_protocol",
    "build_streams",
    "get_workload",
    "simulate",
    "__version__",
]
