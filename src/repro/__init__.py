"""Protozoa: adaptive granularity cache coherence (ISCA 2013) — reproduction.

A trace-driven multicore coherence simulator implementing the paper's full
system: the Amoeba-Cache variable-granularity L1 substrate, a conventional
MESI baseline, and the three Protozoa protocols (SW, SW+MR, MW), plus the
synthetic workload suite, statistics, and experiment harnesses that
regenerate every table and figure of the paper's evaluation.

The supported import surface is :mod:`repro.api`, re-exported here.

Quickstart::

    from repro.api import run

    mesi = run("linear-regression", protocol="mesi")
    mw = run("linear-regression", protocol="mw")
    print(mesi.mpki(), mw.mpki())  # Protozoa-MW eliminates the false sharing
"""

from repro.api import (
    PROTOCOL_NAMES,
    BlobStore,
    CacheGeometry,
    ConfigError,
    ExperimentEngine,
    FaultPlan,
    FsStore,
    HttpStore,
    InvariantViolation,
    LeaseBoard,
    L1Organization,
    L2Config,
    MemAccess,
    NetworkConfig,
    ObsConfig,
    Observability,
    PredictorKind,
    ProtocolError,
    ProtocolKind,
    ReproError,
    ResultCache,
    RetryPolicy,
    RunResult,
    RunSpec,
    ServiceClient,
    SimulationError,
    StoreError,
    SweepJournal,
    SweepService,
    SystemConfig,
    TraceProfile,
    WORKLOADS,
    build_machine,
    build_streams,
    configure_store,
    get_store,
    get_workload,
    load_trace,
    parse_protocol,
    profile_streams,
    run,
    save_trace,
    serve,
    simulate,
    sweep,
)

# Legacy top-level names kept for compatibility; prefer repro.api.
from repro.common.wordrange import WordRange
from repro.system.machine import build_protocol
from repro.system._simulator import Simulator

from repro._version import package_version

__version__ = package_version()

__all__ = [
    "BlobStore",
    "CacheGeometry",
    "ConfigError",
    "ExperimentEngine",
    "FaultPlan",
    "FsStore",
    "HttpStore",
    "InvariantViolation",
    "LeaseBoard",
    "L1Organization",
    "L2Config",
    "MemAccess",
    "NetworkConfig",
    "ObsConfig",
    "Observability",
    "PROTOCOL_NAMES",
    "PredictorKind",
    "ProtocolError",
    "ProtocolKind",
    "ReproError",
    "ResultCache",
    "RetryPolicy",
    "RunResult",
    "RunSpec",
    "ServiceClient",
    "SimulationError",
    "Simulator",
    "StoreError",
    "SweepJournal",
    "SweepService",
    "SystemConfig",
    "TraceProfile",
    "WORKLOADS",
    "WordRange",
    "build_machine",
    "build_protocol",
    "build_streams",
    "configure_store",
    "get_store",
    "get_workload",
    "load_trace",
    "parse_protocol",
    "profile_streams",
    "run",
    "save_trace",
    "serve",
    "simulate",
    "sweep",
    "__version__",
]
