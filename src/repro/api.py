"""The stable public API for the Protozoa reproduction.

Everything a script, notebook, or downstream harness should need lives
here; the deep module layout (``repro.system``, ``repro.experiments``,
``repro.trace``, ...) is an implementation detail that may move between
releases.  Import from :mod:`repro.api` (or from :mod:`repro`, which
re-exports the same surface) and nothing else::

    from repro.api import RunSpec, run, sweep

    mesi = run("linear-regression", protocol="mesi")
    mw = run("linear-regression", protocol="mw")
    print(mesi.mpki(), mw.mpki())

    grid = sweep(
        RunSpec(w, parse_protocol(p))
        for w in ("kmeans", "barnes") for p in ("mesi", "sw", "sw+mr", "mw")
    )

Layers
------
* configuration — :class:`SystemConfig` plus its enums and
  :func:`parse_protocol` for the CLI-style short names;
* one run — :func:`run` (by workload name) and :func:`simulate`
  (bring-your-own streams), both returning a :class:`RunResult`;
* many runs — :class:`RunSpec` grids through :func:`sweep`, which uses
  the cache-aware parallel :class:`ExperimentEngine`;
* traces — :func:`build_streams`, :func:`load_trace`,
  :func:`save_trace`, :func:`profile_streams`;
* observability — :class:`ObsConfig` / :class:`Observability`
  (see docs/observability.md), off by default and zero-cost when off;
* resilience — :class:`RetryPolicy` (engine retry/backoff/degradation),
  :class:`SweepJournal` (crash-resume), :class:`LeaseBoard` (multi-host
  work division), :class:`FaultPlan` (``REPRO_FAULTS`` chaos testing);
  see docs/resilience.md;
* storage — the :class:`BlobStore` interface with its :class:`FsStore`
  / :class:`HttpStore` backends and :func:`configure_store`, which
  points every cache this process builds (and every pool worker it
  forks) at one store URL; see docs/distributed.md.  The ``root`` path
  arguments of :class:`ResultCache` / ``TraceCache`` are deprecated
  shims over an :class:`FsStore`;
* the sweep service — :func:`serve` runs the HTTP/JSON-RPC front end
  with its durable job queue, :class:`ServiceClient` talks to one
  (``client.sweep(specs)`` is the remote equivalent of :func:`sweep`);
  see docs/service.md;
* machinery — :func:`build_machine` for direct protocol-engine access
  (walkthroughs, tests, model checking).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.common.errors import (
    ConfigError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.common.params import (
    PROTOCOL_NAMES,
    CacheGeometry,
    L1Organization,
    L2Config,
    NetworkConfig,
    PredictorKind,
    ProtocolKind,
    SystemConfig,
    parse_protocol,
)
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.obs import ObsConfig, Observability
from repro.resilience import FaultPlan, LeaseBoard, RetryPolicy, SweepJournal
from repro.service.app import SweepService, serve
from repro.service.client import ServiceClient
from repro.store import (
    BlobStore,
    FsStore,
    HttpStore,
    StoreError,
    configure_store,
    get_store,
)
from repro.system.machine import build_protocol, simulate
from repro.system.results import RunResult
from repro.trace.analysis import TraceProfile, profile_streams
from repro.trace.events import MemAccess
from repro.trace.io import read_trace, write_trace
from repro.trace.workloads import WORKLOADS, build_streams, get_workload


def build_machine(config: Optional[SystemConfig] = None,
                  protocol: Union[str, ProtocolKind] = ProtocolKind.MESI,
                  **overrides):
    """A ready-to-drive coherence engine (protocol + caches + network).

    Either pass a full :class:`SystemConfig`, or let one be assembled
    from ``protocol`` plus keyword overrides for any ``SystemConfig``
    field::

        engine = build_machine(protocol="mw", cores=8)
        engine.read(core=0, addr=0x1000, size=8, pc=0)
    """
    if config is None:
        config = SystemConfig(protocol=parse_protocol(protocol), **overrides)
    elif overrides:
        raise ConfigError("pass either a SystemConfig or field overrides, not both")
    return build_protocol(config)


def run(workload: str,
        protocol: Union[str, ProtocolKind] = ProtocolKind.MESI,
        *,
        cores: int = 16,
        per_core: int = 2000,
        seed: int = 0,
        block_bytes: Optional[int] = None,
        obs: Union[None, bool, ObsConfig, Observability] = None,
        max_accesses: Optional[int] = None,
        batch: Optional[bool] = None) -> RunResult:
    """Simulate one bundled workload under one protocol.

    The one-call entry point: builds the synthetic trace, the machine,
    and runs it.  ``obs=True`` (or an :class:`ObsConfig`) attaches an
    observability session whose event trace / metrics / phase timers
    land on the returned :class:`RunResult`.  ``batch`` selects the
    batched packed-trace issue loop (:mod:`repro.system.batch`):
    ``None`` consults ``REPRO_BATCH`` (default on), ``False`` forces the
    scalar loop, ``True`` forces batching where eligible — counters are
    bit-identical either way.
    """
    from repro.trace.packed import PackedTrace

    spec = RunSpec(workload=workload, protocol=parse_protocol(protocol),
                   block_bytes=block_bytes, cores=cores,
                   per_core=per_core, seed=seed)
    streams = PackedTrace.from_streams(
        build_streams(workload, cores=cores, per_core=per_core, seed=seed))
    return simulate(streams, spec.config(), name=workload,
                    max_accesses=max_accesses, obs=obs, batch=batch)


def _validate_specs(specs: Iterable[RunSpec]) -> list:
    """Materialize and eagerly validate a sweep's spec collection.

    The errors a grid-building script actually hits — passing one bare
    :class:`RunSpec` where an iterable is expected, a stray non-spec
    item, the same cell generated twice — surface here as one clear
    :class:`ConfigError` instead of a ``TypeError`` (or a silently
    collapsed duplicate) deep inside the engine.
    """
    if isinstance(specs, RunSpec):
        raise ConfigError(
            "sweep() expects an iterable of RunSpec but got a bare RunSpec "
            "— wrap it in a list: sweep([spec])")
    if isinstance(specs, (str, bytes, dict)):
        raise ConfigError(
            f"sweep() expects an iterable of RunSpec, "
            f"not {type(specs).__name__}")
    try:
        items = list(specs)
    except TypeError:
        raise ConfigError(
            f"sweep() expects an iterable of RunSpec, "
            f"not {type(specs).__name__}")
    first_seen: Dict[RunSpec, int] = {}
    for index, item in enumerate(items):
        if not isinstance(item, RunSpec):
            raise ConfigError(
                f"sweep() specs[{index}] is {type(item).__name__}, "
                "not RunSpec")
        if item in first_seen:
            raise ConfigError(
                f"sweep() specs[{index}] duplicates specs[{first_seen[item]}] "
                f"({item.payload()}) — each grid cell must appear once")
        first_seen[item] = index
    return items


def sweep(specs: Iterable[RunSpec],
          jobs: Optional[int] = None,
          engine: Optional[ExperimentEngine] = None) -> Dict[RunSpec, RunResult]:
    """Serve a grid of :class:`RunSpec` runs, in parallel where possible.

    Runs go through the cache-aware :class:`ExperimentEngine`: previously
    computed cells are served from the persistent result cache
    (``REPRO_CACHE_DIR``) and misses fan out across ``jobs`` worker
    processes.  Pass an existing ``engine`` to reuse its warm pool and
    metrics session across several sweeps.

    ``specs`` is validated eagerly: a bare :class:`RunSpec`, a non-spec
    item, or a duplicated cell raises :class:`ConfigError` before any
    simulation starts.
    """
    items = _validate_specs(specs)
    if engine is not None:
        return engine.run_many(items)
    with ExperimentEngine(jobs=jobs) as owned:
        return owned.run_many(items)


def load_trace(path: Union[str, Path]):
    """Per-core ``MemAccess`` streams from a trace file (see docs)."""
    with open(path, "r", encoding="utf-8") as fh:
        return read_trace(fh)


def save_trace(streams, path: Union[str, Path]) -> int:
    """Write per-core streams to a replayable trace file; returns #records."""
    with open(path, "w", encoding="utf-8") as fh:
        return write_trace(streams, fh)


__all__ = [
    # configuration
    "CacheGeometry",
    "L1Organization",
    "L2Config",
    "NetworkConfig",
    "PredictorKind",
    "PROTOCOL_NAMES",
    "ProtocolKind",
    "SystemConfig",
    "parse_protocol",
    # errors
    "ConfigError",
    "InvariantViolation",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    # running
    "ExperimentEngine",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "build_machine",
    "run",
    "simulate",
    "sweep",
    # traces & workloads
    "MemAccess",
    "TraceProfile",
    "WORKLOADS",
    "build_streams",
    "get_workload",
    "load_trace",
    "profile_streams",
    "save_trace",
    # observability
    "ObsConfig",
    "Observability",
    # resilience (fault injection, retries, crash-resume)
    "FaultPlan",
    "LeaseBoard",
    "RetryPolicy",
    "SweepJournal",
    # blob storage (docs/distributed.md)
    "BlobStore",
    "FsStore",
    "HttpStore",
    "StoreError",
    "configure_store",
    "get_store",
    # the sweep service (docs/service.md)
    "ServiceClient",
    "SweepService",
    "serve",
]
