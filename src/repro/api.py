"""The stable public API for the Protozoa reproduction.

Everything a script, notebook, or downstream harness should need lives
here; the deep module layout (``repro.system``, ``repro.experiments``,
``repro.trace``, ...) is an implementation detail that may move between
releases.  Import from :mod:`repro.api` (or from :mod:`repro`, which
re-exports the same surface) and nothing else::

    from repro.api import RunSpec, run, sweep

    mesi = run("linear-regression", protocol="mesi")
    mw = run("linear-regression", protocol="mw")
    print(mesi.mpki(), mw.mpki())

    grid = sweep(
        RunSpec(w, parse_protocol(p))
        for w in ("kmeans", "barnes") for p in ("mesi", "sw", "sw+mr", "mw")
    )

Layers
------
* configuration — :class:`SystemConfig` plus its enums and
  :func:`parse_protocol` for the CLI-style short names;
* one run — :func:`run` (by workload name) and :func:`simulate`
  (bring-your-own streams), both returning a :class:`RunResult`;
* many runs — :class:`RunSpec` grids through :func:`sweep`, which uses
  the cache-aware parallel :class:`ExperimentEngine`;
* traces — :func:`build_streams`, :func:`load_trace`,
  :func:`save_trace`, :func:`profile_streams`;
* observability — :class:`ObsConfig` / :class:`Observability`
  (see docs/observability.md), off by default and zero-cost when off;
* resilience — :class:`RetryPolicy` (engine retry/backoff/degradation),
  :class:`SweepJournal` (crash-resume), :class:`FaultPlan`
  (``REPRO_FAULTS`` chaos testing); see docs/resilience.md;
* machinery — :func:`build_machine` for direct protocol-engine access
  (walkthroughs, tests, model checking).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.common.errors import (
    ConfigError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.common.params import (
    CacheGeometry,
    L1Organization,
    L2Config,
    NetworkConfig,
    PredictorKind,
    ProtocolKind,
    SystemConfig,
)
from repro.experiments._engine import ExperimentEngine, ResultCache, RunSpec
from repro.obs import ObsConfig, Observability
from repro.resilience import FaultPlan, RetryPolicy, SweepJournal
from repro.system.machine import build_protocol, simulate
from repro.system.results import RunResult
from repro.trace.analysis import TraceProfile, profile_streams
from repro.trace.events import MemAccess
from repro.trace.io import read_trace, write_trace
from repro.trace.workloads import WORKLOADS, build_streams, get_workload

#: Accepted spellings for each protocol, as used by the CLI's
#: ``--protocol`` flag and by :func:`parse_protocol`.
PROTOCOL_NAMES: Dict[str, ProtocolKind] = {
    "mesi": ProtocolKind.MESI,
    "sw": ProtocolKind.PROTOZOA_SW,
    "sw+mr": ProtocolKind.PROTOZOA_SW_MR,
    "swmr": ProtocolKind.PROTOZOA_SW_MR,
    "mw": ProtocolKind.PROTOZOA_MW,
}


def parse_protocol(name: Union[str, ProtocolKind]) -> ProtocolKind:
    """Resolve a protocol given by CLI short name, enum value, or enum."""
    if isinstance(name, ProtocolKind):
        return name
    key = name.lower()
    if key in PROTOCOL_NAMES:
        return PROTOCOL_NAMES[key]
    try:
        return ProtocolKind(key)
    except ValueError:
        raise ConfigError(
            f"unknown protocol {name!r} (choose from {sorted(PROTOCOL_NAMES)})"
        )


def build_machine(config: Optional[SystemConfig] = None,
                  protocol: Union[str, ProtocolKind] = ProtocolKind.MESI,
                  **overrides):
    """A ready-to-drive coherence engine (protocol + caches + network).

    Either pass a full :class:`SystemConfig`, or let one be assembled
    from ``protocol`` plus keyword overrides for any ``SystemConfig``
    field::

        engine = build_machine(protocol="mw", cores=8)
        engine.read(core=0, addr=0x1000, size=8, pc=0)
    """
    if config is None:
        config = SystemConfig(protocol=parse_protocol(protocol), **overrides)
    elif overrides:
        raise ConfigError("pass either a SystemConfig or field overrides, not both")
    return build_protocol(config)


def run(workload: str,
        protocol: Union[str, ProtocolKind] = ProtocolKind.MESI,
        *,
        cores: int = 16,
        per_core: int = 2000,
        seed: int = 0,
        block_bytes: Optional[int] = None,
        obs: Union[None, bool, ObsConfig, Observability] = None,
        max_accesses: Optional[int] = None) -> RunResult:
    """Simulate one bundled workload under one protocol.

    The one-call entry point: builds the synthetic trace, the machine,
    and runs it.  ``obs=True`` (or an :class:`ObsConfig`) attaches an
    observability session whose event trace / metrics / phase timers
    land on the returned :class:`RunResult`.
    """
    spec = RunSpec(workload=workload, protocol=parse_protocol(protocol),
                   block_bytes=block_bytes, cores=cores,
                   per_core=per_core, seed=seed)
    streams = build_streams(workload, cores=cores, per_core=per_core, seed=seed)
    return simulate(streams, spec.config(), name=workload,
                    max_accesses=max_accesses, obs=obs)


def sweep(specs: Iterable[RunSpec],
          jobs: Optional[int] = None,
          engine: Optional[ExperimentEngine] = None) -> Dict[RunSpec, RunResult]:
    """Serve a grid of :class:`RunSpec` runs, in parallel where possible.

    Runs go through the cache-aware :class:`ExperimentEngine`: previously
    computed cells are served from the persistent result cache
    (``REPRO_CACHE_DIR``) and misses fan out across ``jobs`` worker
    processes.  Pass an existing ``engine`` to reuse its warm pool and
    metrics session across several sweeps.
    """
    if engine is not None:
        return engine.run_many(specs)
    with ExperimentEngine(jobs=jobs) as owned:
        return owned.run_many(specs)


def load_trace(path: Union[str, Path]):
    """Per-core ``MemAccess`` streams from a trace file (see docs)."""
    with open(path, "r", encoding="utf-8") as fh:
        return read_trace(fh)


def save_trace(streams, path: Union[str, Path]) -> int:
    """Write per-core streams to a replayable trace file; returns #records."""
    with open(path, "w", encoding="utf-8") as fh:
        return write_trace(streams, fh)


__all__ = [
    # configuration
    "CacheGeometry",
    "L1Organization",
    "L2Config",
    "NetworkConfig",
    "PredictorKind",
    "PROTOCOL_NAMES",
    "ProtocolKind",
    "SystemConfig",
    "parse_protocol",
    # errors
    "ConfigError",
    "InvariantViolation",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    # running
    "ExperimentEngine",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "build_machine",
    "run",
    "simulate",
    "sweep",
    # traces & workloads
    "MemAccess",
    "TraceProfile",
    "WORKLOADS",
    "build_streams",
    "get_workload",
    "load_trace",
    "profile_streams",
    "save_trace",
    # observability
    "ObsConfig",
    "Observability",
    # resilience (fault injection, retries, crash-resume)
    "FaultPlan",
    "RetryPolicy",
    "SweepJournal",
]
