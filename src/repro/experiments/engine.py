"""Deprecated alias of :mod:`repro.experiments._engine`.

Import :mod:`repro.api` (``RunSpec``, ``sweep``) instead; this shim keeps
existing deep imports working for one release.
"""

from repro._compat import warn_deprecated_module

warn_deprecated_module("repro.experiments.engine", "repro.experiments._engine")

from repro.experiments._engine import (  # noqa: E402,F401
    SCHEMA_VERSION,
    ExperimentEngine,
    ResultCache,
    RunSpec,
    cache_enabled,
    default_cache_dir,
    default_jobs,
    execute_spec,
)
