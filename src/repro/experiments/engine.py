"""The parallel experiment engine with a persistent result cache.

Every figure harness ultimately replays cells of the same deterministic
(workload x protocol x block-size) run matrix.  Runs are mutually
independent, so this module fans them out across a process pool and
memoizes each finished :class:`~repro.system.results.RunResult` on disk,
content-addressed by the full run recipe:

* **RunSpec** — the recipe for one run: (workload, protocol, block_bytes,
  cores, per_core, seed).  Its digest additionally covers
  ``SCHEMA_VERSION``; bumping the version invalidates every cached entry
  (the only invalidation rule — bump it whenever a change alters simulated
  outcomes or the serialized layout).
* **ResultCache** — ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``),
  one JSON file per digest under a two-hex-char fan-out directory.
  Entries are written atomically (temp file + rename) so concurrent
  engines never observe torn results.  ``REPRO_CACHE=0`` disables it.
* **ExperimentEngine** — cache-aware execution.  ``run()`` serves one
  spec; ``run_many()`` fans cache misses out over a
  ``ProcessPoolExecutor`` sized by ``$REPRO_JOBS`` (default: all cores),
  falling back to in-process serial execution when ``REPRO_JOBS=1``.

Simulations are deterministic, so parallel, serial, and cached results
are bit-identical (``tests/experiments/test_engine.py`` pins this down).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.system.results import RunResult
from repro.trace.workloads import build_streams

#: Bump whenever simulation behaviour or the serialized result layout
#: changes: every previously cached entry becomes unreachable.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """The complete, deterministic recipe for one simulation run."""

    workload: str
    protocol: ProtocolKind
    block_bytes: Optional[int] = None
    cores: int = 16
    per_core: int = 2000
    seed: int = 0

    def config(self) -> SystemConfig:
        config = SystemConfig(protocol=self.protocol, cores=self.cores)
        if self.block_bytes is not None:
            config = config.with_block_bytes(self.block_bytes)
        return config

    def payload(self) -> Dict:
        """JSON-safe form (sent to worker processes, hashed for the cache)."""
        return {
            "workload": self.workload,
            "protocol": self.protocol.value,
            "block_bytes": self.block_bytes,
            "cores": self.cores,
            "per_core": self.per_core,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, data: Dict) -> "RunSpec":
        return cls(
            workload=data["workload"],
            protocol=ProtocolKind(data["protocol"]),
            block_bytes=data["block_bytes"],
            cores=data["cores"],
            per_core=data["per_core"],
            seed=data["seed"],
        )

    def digest(self) -> str:
        """Content address: the recipe plus the engine schema version."""
        recipe = {"schema": SCHEMA_VERSION, **self.payload()}
        blob = json.dumps(recipe, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec in-process (no cache involvement)."""
    streams = build_streams(spec.workload, cores=spec.cores,
                            per_core=spec.per_core, seed=spec.seed)
    return simulate(streams, spec.config(), name=spec.workload)


def _worker_run(payload: Dict) -> Dict:
    """Process-pool entry point: recipe in, portable result out."""
    return execute_spec(RunSpec.from_payload(payload)).to_dict()


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


class ResultCache:
    """Content-addressed on-disk store of serialized run results."""

    def __init__(self, root: Optional[Path] = None, enabled: Optional[bool] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: RunSpec) -> Path:
        digest = spec.digest()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        if not self.enabled:
            return None
        path = self.path_for(spec)
        try:
            with open(path) as fh:
                data = json.load(fh)
            result = RunResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            # Absent or torn/stale entry: treat as a miss (a fresh run
            # overwrites it).
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> None:
        if not self.enabled:
            return
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(result.to_dict(), fh)
            os.replace(tmp, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class ExperimentEngine:
    """Cache-aware, optionally parallel execution of run specs."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache = cache if cache is not None else ResultCache()
        self.executed = 0  # specs actually simulated (cache misses)

    # -- single run ----------------------------------------------------------

    def run(self, spec: RunSpec) -> RunResult:
        cached = self.cache.get(spec)
        if cached is not None:
            return cached
        result = execute_spec(spec)
        self.executed += 1
        self.cache.put(spec, result)
        return result

    # -- batched runs ----------------------------------------------------------

    def run_many(self, specs: Iterable[RunSpec]) -> Dict[RunSpec, RunResult]:
        """Serve every spec, fanning cache misses out across the pool.

        Results are keyed by spec; duplicate specs collapse to one run.
        """
        out: Dict[RunSpec, RunResult] = {}
        todo: List[RunSpec] = []
        pending = set()
        for spec in specs:
            if spec in out or spec in pending:
                continue
            cached = self.cache.get(spec)
            if cached is not None:
                out[spec] = cached
            else:
                todo.append(spec)
                pending.add(spec)
        if not todo:
            return out
        if self.jobs <= 1 or len(todo) == 1:
            for spec in todo:
                result = execute_spec(spec)
                self.executed += 1
                self.cache.put(spec, result)
                out[spec] = result
            return out
        workers = min(self.jobs, len(todo))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_worker_run, spec.payload()): spec
                       for spec in todo}
            for future in as_completed(futures):
                spec = futures[future]
                result = RunResult.from_dict(future.result())
                self.executed += 1
                self.cache.put(spec, result)
                out[spec] = result
        return out
