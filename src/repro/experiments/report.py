"""Regenerate the full evaluation in one pass.

``python -m repro.experiments.report [output.txt]`` runs every table and
figure harness against one shared run matrix and writes a single combined
report (to stdout by default).  ``REPRO_SCALE`` / ``REPRO_WORKLOADS``
control cost as everywhere else.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.experiments import (
    fig9_traffic,
    fig10_control,
    fig11_sharers,
    fig12_blocksize,
    fig13_mpki,
    fig14_exectime,
    fig15_energy,
    table1,
)
from repro.experiments.runner import ResultMatrix
from repro.coherence.overhead import overhead_table
from repro.stats.charts import hbar_chart

SECTIONS = [
    ("Table 1: MESI behaviour vs fixed block size (16->128 B)", table1),
    ("Figure 9: L1 traffic breakdown normalized to MESI", fig9_traffic),
    ("Figure 10: control traffic by message type", fig10_control),
    ("Figure 11: directory Owned-state sharer census (Protozoa-MW)", fig11_sharers),
    ("Figure 12: L1 block-size distribution (Protozoa-MW)", fig12_blocksize),
    ("Figure 13: miss rate (MPKI)", fig13_mpki),
    ("Figure 14: execution time relative to MESI", fig14_exectime),
    ("Figure 15: interconnect flit-hops relative to MESI", fig15_energy),
]


def write_report(matrix: Optional[ResultMatrix] = None,
                 out: TextIO = sys.stdout) -> None:
    matrix = matrix if matrix is not None else ResultMatrix()
    out.write("Protozoa reproduction: full evaluation report\n")
    out.write(f"scale: {matrix.settings.per_core} accesses/core x "
              f"{matrix.settings.cores} cores, "
              f"{len(matrix.settings.workload_names())} workloads\n")
    # Batch every run the sections below will consume through the engine
    # first: disk-cache misses fan out across the worker pool instead of
    # trickling through the harnesses' per-cell run() calls.
    start = time.time()
    journal = getattr(matrix.engine, "journal", None)
    already = len(journal) if journal is not None else 0
    matrix.prewarm(block_sizes=table1.BLOCK_SIZES)
    # Progress goes to stderr: the report body must not depend on how many
    # runs happened to be cached.
    resume_note = ""
    if journal is not None:
        # Journaled completions from a previous (possibly killed) sweep
        # come back as cache hits; only the remainder re-simulated.
        resume_note = (f", journal {already} resumed + "
                       f"{journal.recorded} new at {journal.path}")
    print(f"runs ready in {time.time() - start:.1f}s "
          f"({matrix.engine.jobs} jobs, "
          f"{matrix.engine.cache.hits} cached, "
          f"{matrix.engine.executed} simulated{resume_note})", file=sys.stderr)
    for title, module in SECTIONS:
        start = time.time()
        body = module.render(matrix)
        out.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
        out.write(f"[{time.time() - start:.1f}s]\n")
        out.flush()
    out.write(f"\n{'=' * 72}\nHeadlines (geomean vs MESI)\n{'=' * 72}\n")
    out.write(_headline_charts(matrix))
    out.write("\n\nDirectory metadata cost (Section 3.6):\n")
    out.write(overhead_table(matrix.settings.cores))
    out.write("\n")


def _headline_charts(matrix: ResultMatrix) -> str:
    """Bar-chart summaries of the normalized headline series."""
    charts = [
        hbar_chart(fig9_traffic.summary(matrix),
                   title="L1 traffic (paper: SW 0.74, SW+MR 0.66, MW 0.63)",
                   reference=1.0),
        hbar_chart(fig13_mpki.reduction_summary(matrix),
                   title="MPKI (paper: SW 0.81, SW+MR/MW 0.64)",
                   reference=1.0),
        hbar_chart(fig15_energy.summary(matrix),
                   title="flit-hops (paper: SW 0.67, SW+MR 0.62, MW 0.51)",
                   reference=1.0),
    ]
    return "\n\n".join(charts)


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as fh:
            write_report(out=fh)
        print(f"report written to {sys.argv[1]}")
    else:
        write_report()


if __name__ == "__main__":
    main()
