"""Figure 12: distribution of cache-block granularities in the L1 (MW).

Fraction of installed Amoeba-Blocks sized 1-2 / 3-4 / 5-6 / 7-8 words under
Protozoa-MW.  Low-spatial-locality applications (blackscholes, bodytrack,
canneal) should skew to 1-2 words; dense ones (linear-regression's input
scan, matrix-multiply, kmeans) to 8 words.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ResultMatrix, shared_matrix
from repro.stats.tables import format_table

BUCKETS = ["1-2", "3-4", "5-6", "7-8"]


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        result = matrix.run(name, ProtocolKind.PROTOZOA_MW)
        buckets = result.block_size_buckets()
        table.append([name] + [round(buckets[b], 4) for b in BUCKETS])
    return table


HEADERS = ["benchmark"] + [f"{b} words" for b in BUCKETS]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    return format_table(HEADERS, rows(matrix))


def main() -> None:
    print("Figure 12: L1 block-size distribution under Protozoa-MW")
    print(render())


if __name__ == "__main__":
    main()
