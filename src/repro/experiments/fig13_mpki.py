"""Figure 13: miss rate (MPKI) for all four protocols.

The paper's headline: Protozoa-SW reduces the miss rate 19% on average vs
MESI (35% over the MPKI>=6 applications); SW+MR and MW reduce it 36% on
average (60% over high-miss-rate applications) by eliminating false-sharing
evictions — histogram -71% and linear-regression -99% under MW.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ALL_PROTOCOLS, ResultMatrix, shared_matrix
from repro.stats.tables import format_table, geomean


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        row: List = [name]
        for protocol in ALL_PROTOCOLS:
            row.append(round(matrix.run(name, protocol).mpki(), 3))
        table.append(row)
    return table


def reduction_summary(matrix: Optional[ResultMatrix] = None) -> Dict[str, float]:
    """Geomean MPKI ratio vs MESI per Protozoa protocol (1 - reduction)."""
    matrix = matrix if matrix is not None else shared_matrix()
    out: Dict[str, float] = {}
    for protocol in ALL_PROTOCOLS[1:]:
        ratios = []
        for name in matrix.settings.workload_names():
            base = matrix.run(name, ProtocolKind.MESI).mpki()
            if base <= 0:
                continue
            ratios.append(matrix.run(name, protocol).mpki() / base)
        out[protocol.short_name] = geomean(ratios)
    return out


HEADERS = ["benchmark"] + [p.short_name for p in ALL_PROTOCOLS]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    matrix = matrix if matrix is not None else shared_matrix()
    body = format_table(HEADERS, rows(matrix))
    means = reduction_summary(matrix)
    tail = "  ".join(f"{k}={v:.3f}" for k, v in means.items())
    return f"{body}\n\ngeomean MPKI vs MESI: {tail}"


def main() -> None:
    print("Figure 13: miss rate in MPKI")
    print(render())


if __name__ == "__main__":
    main()
