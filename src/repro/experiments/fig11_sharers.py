"""Figure 11: sharer census of directory entries in the Owned state (MW).

Every Protozoa-MW directory lookup that finds the entry Owned is bucketed
by its census: exactly one owner and nothing else, one owner plus reader
sharers, or multiple owners.  The paper highlights string-match (>90% of
Owned lookups see >1 owner) versus raytrace (single-producer pattern,
almost always one owner only).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ResultMatrix, shared_matrix
from repro.stats.tables import format_table

BUCKETS = ["1owner", "1owner+sharers", ">1owner"]


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        result = matrix.run(name, ProtocolKind.PROTOZOA_MW)
        buckets = result.dir_owned_buckets()
        total = sum(buckets.values())
        if total == 0:
            table.append([name] + [0.0 for _ in BUCKETS] + [0])
            continue
        table.append(
            [name]
            + [round(buckets[b] / total, 4) for b in BUCKETS]
            + [total]
        )
    return table


HEADERS = ["benchmark"] + BUCKETS + ["owned-lookups"]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    return format_table(HEADERS, rows(matrix))


def main() -> None:
    print("Figure 11: accesses to directory entries in Owned state (Protozoa-MW)")
    print(render())


if __name__ == "__main__":
    main()
