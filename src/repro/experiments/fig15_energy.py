"""Figure 15: dynamic interconnect energy as flit-hops relative to MESI.

Every protocol message is packetized into 16-byte flits and multiplied by
its XY-route hop count; the figure normalizes total flit-hops to MESI.
Paper averages: Protozoa-SW eliminates 33%, SW+MR 38%, MW 49% of flit-hops.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ALL_PROTOCOLS, ResultMatrix, shared_matrix
from repro.stats.tables import format_table, geomean


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        base = matrix.run(name, ProtocolKind.MESI).flit_hops() or 1
        row: List = [name]
        for protocol in ALL_PROTOCOLS:
            row.append(round(matrix.run(name, protocol).flit_hops() / base, 4))
        table.append(row)
    return table


def summary(matrix: Optional[ResultMatrix] = None) -> Dict[str, float]:
    matrix = matrix if matrix is not None else shared_matrix()
    out: Dict[str, float] = {}
    for i, protocol in enumerate(ALL_PROTOCOLS[1:], start=2):
        out[protocol.short_name] = geomean([row[i] for row in rows(matrix)])
    return out


HEADERS = ["benchmark"] + [p.short_name for p in ALL_PROTOCOLS]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    matrix = matrix if matrix is not None else shared_matrix()
    body = format_table(HEADERS, rows(matrix))
    tail = "  ".join(f"{k}={v:.3f}" for k, v in summary(matrix).items())
    return f"{body}\n\ngeomean flit-hops vs MESI: {tail}"


def main() -> None:
    print("Figure 15: interconnect flit-hops relative to MESI")
    print(render())


if __name__ == "__main__":
    main()
