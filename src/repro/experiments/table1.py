"""Table 1: MESI behaviour as the fixed block size varies (16->128 bytes).

For each benchmark the paper reports the direction and magnitude of the
MPKI and invalidation-count changes at each block-size doubling, the
block size minimizing misses ("Optimal"), and the USED% of transferred
data.  This harness regenerates those columns and prints the paper's
published Optimal/USED% alongside for comparison.

Symbols follow the paper's legend: ``~`` <10% change, ``+``/``-`` 10-33%
increase/decrease, ``++``/``--`` >33%, ``+++`` >50% increase.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ResultMatrix, shared_matrix
from repro.stats.tables import format_table
from repro.trace.workloads import WORKLOADS

BLOCK_SIZES = (16, 32, 64, 128)


def trend_symbol(before: float, after: float) -> str:
    """The paper's arrow legend, in ASCII."""
    if before == 0:
        return "~" if after == 0 else "+++"
    change = (after - before) / before
    if change > 0.50:
        return "+++"
    if change > 0.33:
        return "++"
    if change > 0.10:
        return "+"
    if change < -0.33:
        return "--"
    if change < -0.10:
        return "-"
    return "~"


def sweep_workload(matrix: ResultMatrix, name: str) -> Dict[int, Dict[str, float]]:
    """MESI metrics at each block size for one workload."""
    out = {}
    for block in BLOCK_SIZES:
        result = matrix.run(name, ProtocolKind.MESI, block_bytes=block)
        out[block] = {
            "mpki": result.mpki(),
            "inv": float(result.invalidations()),
            "used": result.used_fraction(),
        }
    return out


def optimal_block(metrics: Dict[int, Dict[str, float]]) -> int:
    """Block size minimizing MPKI (ties broken by fewer invalidations)."""
    return min(BLOCK_SIZES, key=lambda b: (round(metrics[b]["mpki"], 3),
                                           metrics[b]["inv"]))


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        metrics = sweep_workload(matrix, name)
        row: List = [name]
        for lo, hi in zip(BLOCK_SIZES, BLOCK_SIZES[1:]):
            row.append(trend_symbol(metrics[lo]["mpki"], metrics[hi]["mpki"]))
            row.append(trend_symbol(metrics[lo]["inv"], metrics[hi]["inv"]))
        best = optimal_block(metrics)
        spec = WORKLOADS[name]
        row.extend([
            best,
            f"{100 * metrics[best]['used']:.0f}%",
            spec.paper_optimal,
            f"{spec.paper_used_pct}%",
        ])
        table.append(row)
    return table


HEADERS = [
    "benchmark",
    "MPK 16>32", "INV 16>32",
    "MPK 32>64", "INV 32>64",
    "MPK 64>128", "INV 64>128",
    "optimal", "USED%", "paper-opt", "paper-USED%",
]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    return format_table(HEADERS, rows(matrix))


def main() -> None:
    print("Table 1: MESI behaviour when varying the fixed block size")
    print(render())


if __name__ == "__main__":
    main()
