"""``repro bench``: the repository's performance trajectory, as data.

Times five things and writes them to ``BENCH_protozoa.json``:

* **trace prewarm** — packing every workload trace the sweeps replay
  into the (scratch) trace cache, once per recipe;
* **cold sweep, serial** — the (workload x protocol) matrix through the
  experiment engine with one job and an empty result cache;
* **cold sweep, parallel / warm sweep** — the same matrix fanned out over
  the worker pool into a second empty cache, then replayed against that
  now-populated cache (a warm sweep must be 100% cache hits);
* **single-run microbenchmark** — accesses/second through one simulation
  (the coherence transaction hot path, packed replay), compared against
  the pre-PR baseline recorded in ``benchmarks/baseline_protozoa.json``;
* **observability overhead** — the same microbenchmark with ``repro.obs``
  forced off and then fully on.  The timed sweeps always run with
  ``REPRO_OBS`` popped from the environment, so the numbers above measure
  the simulator, not the tracer; the off/on comparison quantifies the
  tracing tax and checks that disabled observability leaves no artifacts
  and that enabling it changes no counter (the zero-cost-when-off and
  parity guarantees of docs/observability.md).  Both timed phases pin
  ``REPRO_BATCH=0``: only a scalar-vs-scalar comparison isolates the
  tracing tax from the batching win.  The section also records the
  ``batch_obs`` parity map: with observability attached, batched
  execution must reproduce the scalar obs path's RunStats *and* metric
  dumps byte-for-byte for every protocol, and must actually engage (the
  event trace's ``batched`` counter is nonzero);
* **batch execution** — the microbenchmark with the batched issue loop
  (:mod:`repro.system.batch`) forced off and then on, plus a
  scalar-vs-batched counter comparison for every protocol (the
  bit-identity guarantee ``repro bench --assert-batch-identical``
  gates on).

Schema 3 added a ``phases`` section (trace prewarm, worker-pool warm-up,
and the simulate/flush split of one observed run, from
:class:`repro.obs.timers.PhaseTimers`) and the ``obs_overhead`` section.
Schema 4 added the ``batch`` section and records ``parallel_speedup`` as
``null`` when the sweep ran with a single job (a 1-job "speedup" is
process noise, not fan-out performance).  Schema 5 adds
``obs_overhead.batch_obs`` — the batch-with-observability identity and
engagement maps gated by ``--assert-batch-identical`` and the new
``--assert-obs-overhead PCT`` threshold on ``overhead_pct``.

Sweeps run against *scratch* result and trace caches, so the serial and
parallel phases both replay prebuilt packed traces and differ only in
fan-out; worker-pool start-up happens before the clock starts (it is a
per-process cost, not a per-sweep one).  Each sweep phase records the
worker count it actually used.

``--quick`` shrinks the matrix for CI smoke runs; ``--assert-warm`` fails
the invocation unless the warm sweep never missed the cache *and* (with
more than one job) the cold parallel sweep kept up with serial —
``--min-parallel-speedup`` sets that bar (default 1.0);
``--record-baseline`` re-records the microbenchmark baseline for this
machine (do this once per hardware change, before optimization work).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.common.params import ProtocolKind
from repro.experiments._engine import (
    ExperimentEngine,
    ResultCache,
    RunSpec,
    default_jobs,
    execute_spec,
)
from repro.experiments.runner import ALL_PROTOCOLS
from repro.store import FsStore
from repro.trace._cache import TraceCache

BENCH_SCHEMA = 5

#: Microbenchmark recipe — keep in lockstep with benchmarks/baseline_protozoa.json
#: (comparing against a baseline recorded under a different recipe is noise).
MICROBENCH = RunSpec(workload="kmeans", protocol=ProtocolKind.PROTOZOA_MW,
                     cores=16, per_core=2000, seed=0)

QUICK_WORKLOADS = ("kmeans", "histogram")
FULL_WORKLOADS = ("kmeans", "histogram", "fft", "blackscholes")


def baseline_path() -> Path:
    """benchmarks/baseline_protozoa.json at the repository root."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baseline_protozoa.json"


def load_baseline() -> Optional[float]:
    try:
        with open(baseline_path()) as fh:
            return float(json.load(fh)["accesses_per_sec"])
    except (OSError, ValueError, KeyError):
        return None


def matrix_specs(workloads, cores: int, per_core: int, seed: int = 0) -> List[RunSpec]:
    return [RunSpec(workload=name, protocol=protocol, cores=cores,
                    per_core=per_core, seed=seed)
            for name in workloads for protocol in ALL_PROTOCOLS]


def prewarm_traces(specs: List[RunSpec]) -> Dict:
    """Pack every distinct trace recipe the specs replay; returns timing."""
    recipes = sorted({(s.workload, s.cores, s.per_core, s.seed) for s in specs})
    cache = TraceCache()
    start = time.perf_counter()
    for workload, cores, per_core, seed in recipes:
        cache.get_or_build(workload, cores=cores, per_core=per_core, seed=seed)
    return {
        "seconds": time.perf_counter() - start,
        "traces": len(recipes),
        "built": cache.built,
    }


def time_sweep(specs: List[RunSpec], jobs: int, cache_root: Path,
               journal=None) -> Dict:
    """One engine sweep against ``cache_root``; returns timing + cache stats.

    The worker pool is warmed *before* the clock starts: pool start-up is
    paid once per engine, and the sweep time should measure throughput,
    not process creation.  An optional sweep journal records completions
    for crash-resume (``repro bench --journal/--resume``).
    """
    engine = ExperimentEngine(jobs=jobs,
                              cache=ResultCache(store=FsStore(cache_root),
                                                enabled=True),
                              journal=journal)
    try:
        pool_start = time.perf_counter()
        engine.warm_pool()
        pool_warm = time.perf_counter() - pool_start
        start = time.perf_counter()
        results = engine.run_many(specs)
        elapsed = time.perf_counter() - start
    finally:
        engine.close()
    return {
        "seconds": elapsed,
        "pool_warm_s": pool_warm,
        "jobs": engine.jobs,
        "cells": len(results),
        "cache_hits": engine.cache.hits,
        "simulated": engine.executed,
    }


def time_single_run(spec: RunSpec, repeats: int) -> Dict:
    """Best-of-``repeats`` accesses/second through one simulation."""
    best = 0.0
    accesses = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute_spec(spec)
        elapsed = time.perf_counter() - start
        accesses = result.stats.accesses
        best = max(best, accesses / elapsed)
    return {
        "workload": spec.workload,
        "protocol": spec.protocol.value,
        "cores": spec.cores,
        "per_core": spec.per_core,
        "repeats": repeats,
        "accesses": accesses,
        "accesses_per_sec": round(best, 1),
    }


def measure_batch(spec: RunSpec, repeats: int) -> Dict:
    """The batched issue loop's effect, and the guarantee behind it.

    Times the microbenchmark with ``REPRO_BATCH=0`` and then ``=1``, and
    compares scalar against batched counters for every protocol on a
    small differential shape — batch execution must be bit-identical,
    not merely close (``repro bench --assert-batch-identical`` gates on
    the ``identical`` map recorded here).
    """
    from repro.common.params import SystemConfig
    from repro.system.batch import ENV_FLAG
    from repro.system.machine import simulate
    from repro.trace._cache import packed_streams

    old = os.environ.get(ENV_FLAG)
    try:
        rates = {}
        for setting in ("0", "1"):
            os.environ[ENV_FLAG] = setting
            best = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                result = execute_spec(spec)
                best = max(best,
                           result.stats.accesses / (time.perf_counter() - start))
            rates[setting] = best
    finally:
        if old is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = old
    identical = {}
    streams = packed_streams(spec.workload, cores=8, per_core=400,
                             seed=spec.seed)
    for protocol in ALL_PROTOCOLS:
        config = SystemConfig(protocol=protocol, cores=8)
        scalar = simulate(streams, config, batch=False).stats.to_dict()
        batched = simulate(streams, config, batch=True).stats.to_dict()
        identical[protocol.value] = scalar == batched
    off, on = rates["0"], rates["1"]
    return {
        "off_accesses_per_sec": round(off, 1),
        "on_accesses_per_sec": round(on, 1),
        "speedup": round(on / off, 2) if off else None,
        "identical": identical,
        "all_identical": all(identical.values()),
    }


def measure_batch_obs(spec: RunSpec) -> Dict:
    """Batch + observability parity, for every protocol.

    With an obs session attached, the batched issue loop must reproduce
    the scalar obs path exactly: identical ``RunStats`` *and* a
    byte-identical metric dump (the scratch-slot deltas the batch runner
    folds in bulk land in the same series the scalar hot path
    increments).  ``engaged`` proves batching actually ran (the event
    trace counted bulk-executed hits) rather than silently declining.
    """
    from repro.common.params import SystemConfig
    from repro.system.machine import simulate
    from repro.trace._cache import packed_streams

    streams = packed_streams(spec.workload, cores=8, per_core=400,
                             seed=spec.seed)
    identical = {}
    engaged = {}
    for protocol in ALL_PROTOCOLS:
        config = SystemConfig(protocol=protocol, cores=8)
        scalar = simulate(streams, config, obs=True, batch=False)
        batched = simulate(streams, config, obs=True, batch=True)
        identical[protocol.value] = (
            scalar.stats.to_dict() == batched.stats.to_dict()
            and json.dumps(scalar.metrics, sort_keys=True)
                == json.dumps(batched.metrics, sort_keys=True))
        engaged[protocol.value] = batched.obs.events.batched > 0
    return {
        "identical": identical,
        "all_identical": all(identical.values()),
        "engaged": engaged,
        "all_engaged": all(engaged.values()),
    }


def measure_obs_overhead(spec: RunSpec, repeats: int) -> Dict:
    """The tracing tax, and the guarantees behind it.

    Runs the microbenchmark with ``REPRO_OBS`` absent (the default) and
    then set, timing both, and checks:

    * **disabled is a no-op** — the unobserved run carries no obs
      session, no metrics, and serializes without a ``metrics`` key;
    * **parity** — full tracing changes no simulation counter;
    * **batch_obs** — batched execution with obs attached byte-matches
      the scalar obs path (see :func:`measure_batch_obs`).

    Both timed phases pin ``REPRO_BATCH=0``: batching now composes with
    observability, so only a scalar-vs-scalar comparison isolates the
    tracing tax from the batching win.
    """
    from repro.system.batch import ENV_FLAG

    # overhead_pct is a ratio of two best-of timings and gates CI at a
    # 10% budget, so the measurement is hardened against shared-runner
    # noise three ways.  The off/on repeats are *interleaved* (off, on,
    # off, on, ...) rather than run as two sequential blocks: machine
    # load swings last longer than one ~0.3s run, and a block design
    # lets a swing land entirely on one side of the ratio.  Both phases
    # are timed with ``time.process_time`` (CPU time): the tracing tax
    # *is* CPU work, and CPU time ignores the preemption that dominates
    # wall-clock jitter on busy hosts (virtualized steal still leaks
    # in).  And sampling is *adaptive*: best-of estimates the noise
    # floor, which a fixed sample count can miss entirely when a
    # contention burst covers every run of one side, so after the
    # mandatory repeats we keep interleaving pairs — up to a 4x budget —
    # until the running ratio converges below the gate's headroom.
    repeats = max(repeats, 8)
    converged = 1.08   # stop early once overhead < 8%, under the 10% gate
    old = os.environ.pop("REPRO_OBS", None)
    old_batch = os.environ.get(ENV_FLAG)
    os.environ[ENV_FLAG] = "0"
    try:
        off_rate = on_rate = 0.0
        for attempt in range(repeats * 4):
            os.environ.pop("REPRO_OBS", None)
            start = time.process_time()
            off_result = execute_spec(spec)
            off_rate = max(off_rate,
                           off_result.stats.accesses / (time.process_time() - start))
            os.environ["REPRO_OBS"] = "1"
            start = time.process_time()
            on_result = execute_spec(spec)
            on_rate = max(on_rate,
                          on_result.stats.accesses / (time.process_time() - start))
            if attempt + 1 >= repeats and off_rate <= on_rate * converged:
                break
        noop = (off_result.obs is None and off_result.metrics is None
                and "metrics" not in off_result.to_dict())
        parity = on_result.stats.to_dict() == off_result.stats.to_dict()
    finally:
        if old is None:
            os.environ.pop("REPRO_OBS", None)
        else:
            os.environ["REPRO_OBS"] = old
        if old_batch is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = old_batch
    return {
        "disabled_accesses_per_sec": round(off_rate, 1),
        "enabled_accesses_per_sec": round(on_rate, 1),
        "overhead_pct": (round(100.0 * (off_rate / on_rate - 1.0), 1)
                         if on_rate else None),
        "disabled_is_noop": noop,
        "counters_identical": parity,
        "batch_obs": measure_batch_obs(spec),
        "phase_seconds": dict(on_result.phase_seconds or {}),
    }


def run_bench(quick: bool = False, jobs: Optional[int] = None,
              out_path: str = "BENCH_protozoa.json",
              record_baseline: bool = False,
              journal_path: Optional[str] = None,
              resume: bool = False) -> Dict:
    jobs = default_jobs() if jobs is None else max(1, jobs)
    if quick:
        # per_core=500 keeps the timed region long enough (~0.5s serial)
        # that the parallel-speedup guard is not dominated by timer noise.
        workloads, cores, per_core, repeats = QUICK_WORKLOADS, 8, 500, 3
    else:
        workloads, cores, per_core, repeats = FULL_WORKLOADS, 16, 1000, 5
    specs = matrix_specs(workloads, cores=cores, per_core=per_core)

    # With a journal the sweep state must survive a crash: use a
    # persistent scratch beside the journal (kept across invocations so
    # --resume serves completed cells as cache hits) instead of a
    # throwaway tempdir.
    journal = None
    if journal_path:
        from repro.resilience.journal import SweepJournal

        journal = SweepJournal(journal_path)
        scratch = Path(journal_path).resolve().parent / "bench-scratch"
        scratch.mkdir(parents=True, exist_ok=True)
        keep_scratch = True
    else:
        scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
        keep_scratch = False
    old_trace_dir = os.environ.get("REPRO_TRACE_CACHE_DIR")
    os.environ["REPRO_TRACE_CACHE_DIR"] = str(scratch / "traces")
    # Observability must not leak into the timed sweeps: an ambient
    # REPRO_OBS=1 would tax every run (and every pool worker) and make the
    # baseline comparison meaningless.  measure_obs_overhead() re-enables
    # it deliberately, inside its own timed region.
    old_obs = os.environ.pop("REPRO_OBS", None)
    try:
        resumed = len(journal) if journal is not None else 0
        prewarm = prewarm_traces(specs + [MICROBENCH])
        serial_cold = time_sweep(specs, jobs=1, cache_root=scratch / "serial",
                                 journal=journal)
        parallel_cold = time_sweep(specs, jobs=jobs,
                                   cache_root=scratch / "parallel",
                                   journal=journal)
        warm = time_sweep(specs, jobs=jobs, cache_root=scratch / "parallel",
                          journal=journal)
        single = time_single_run(MICROBENCH, repeats=repeats)
        batch = measure_batch(MICROBENCH, repeats=repeats)
        obs_overhead = measure_obs_overhead(MICROBENCH, repeats=repeats)
    finally:
        if old_trace_dir is None:
            os.environ.pop("REPRO_TRACE_CACHE_DIR", None)
        else:
            os.environ["REPRO_TRACE_CACHE_DIR"] = old_trace_dir
        if old_obs is not None:
            os.environ["REPRO_OBS"] = old_obs
        if journal is not None:
            journal.close()
        if not keep_scratch:
            shutil.rmtree(scratch, ignore_errors=True)

    if record_baseline:
        payload = {
            "comment": "Pre-optimization hot-path baseline for `repro bench`. "
                       "Recorded with `repro bench --record-baseline` before the "
                       "transaction-loop optimization landed; re-record on new "
                       "hardware to keep the improvement number meaningful.",
            "microbench": {
                "workload": MICROBENCH.workload,
                "protocol": MICROBENCH.protocol.value,
                "cores": MICROBENCH.cores,
                "per_core": MICROBENCH.per_core,
                "seed": MICROBENCH.seed,
                "repeats": repeats,
            },
            "accesses_per_sec": single["accesses_per_sec"],
        }
        with open(baseline_path(), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    baseline = load_baseline()
    single["baseline_accesses_per_sec"] = baseline
    single["improvement_pct"] = (
        round(100.0 * (single["accesses_per_sec"] / baseline - 1.0), 1)
        if baseline else None
    )

    report = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "jobs": jobs,
        "matrix": {
            "workloads": list(workloads),
            "protocols": [p.value for p in ALL_PROTOCOLS],
            "cores": cores,
            "per_core": per_core,
            "cells": len(specs),
        },
        "sweep": {
            "trace_prewarm_s": round(prewarm["seconds"], 3),
            "traces_packed": prewarm["built"],
            "serial_cold_s": round(serial_cold["seconds"], 3),
            "serial_jobs": serial_cold["jobs"],
            "parallel_cold_s": round(parallel_cold["seconds"], 3),
            "parallel_jobs": parallel_cold["jobs"],
            "warm_s": round(warm["seconds"], 3),
            "warm_jobs": warm["jobs"],
            # A 1-job "parallel" sweep measures process noise, not
            # fan-out: the comparison only exists with a real pool.
            "parallel_speedup": round(
                serial_cold["seconds"] / parallel_cold["seconds"], 2)
                if parallel_cold["jobs"] > 1 else None,
            "warm_speedup_vs_cold": round(
                parallel_cold["seconds"] / warm["seconds"], 2)
                if warm["seconds"] else None,
            "warm_cache_hits": warm["cache_hits"],
            "warm_simulated": warm["simulated"],
            "warm_all_hits": warm["cache_hits"] == len(specs)
                             and warm["simulated"] == 0,
        },
        "phases": {
            "trace_prewarm_s": round(prewarm["seconds"], 3),
            "warm_pool_s": round(parallel_cold["pool_warm_s"], 3),
            "simulate_s": round(
                obs_overhead["phase_seconds"].get("simulate", 0.0), 3),
            "flush_s": round(
                obs_overhead["phase_seconds"].get("flush", 0.0), 3),
        },
        "single_run": single,
        "batch": batch,
        "obs_overhead": {k: v for k, v in obs_overhead.items()
                         if k != "phase_seconds"},
    }
    if journal is not None:
        report["journal"] = {
            "path": str(journal.path),
            "resume": resume,
            "resumed": resumed,
            "completed": len(journal),
            "recorded": journal.recorded,
        }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def render(report: Dict) -> str:
    sweep = report["sweep"]
    single = report["single_run"]
    lines = [
        f"matrix: {report['matrix']['cells']} cells "
        f"({len(report['matrix']['workloads'])} workloads x "
        f"{len(report['matrix']['protocols'])} protocols), "
        f"{report['matrix']['cores']} cores x "
        f"{report['matrix']['per_core']} accesses",
        f"trace prewarm:          {sweep['trace_prewarm_s']:8.3f}s  "
        f"({sweep['traces_packed']} packed traces)",
        f"cold sweep (serial):    {sweep['serial_cold_s']:8.3f}s  "
        f"({sweep['serial_jobs']} job)",
        f"cold sweep (parallel):  {sweep['parallel_cold_s']:8.3f}s  "
        f"({sweep['parallel_jobs']} jobs, "
        + (f"{sweep['parallel_speedup']}x vs serial)"
           if sweep["parallel_speedup"] is not None
           else "serial fallback - no speedup to compare)"),
        f"warm sweep:             {sweep['warm_s']:8.3f}s  "
        f"({sweep['warm_speedup_vs_cold']}x vs cold, "
        f"{sweep['warm_cache_hits']}/{report['matrix']['cells']} cache hits)",
        f"single run:             {single['accesses_per_sec']:,.0f} accesses/s "
        f"({single['workload']}/{single['protocol']})",
    ]
    if single["baseline_accesses_per_sec"]:
        lines.append(
            f"vs recorded baseline:   {single['baseline_accesses_per_sec']:,.0f} "
            f"accesses/s ({single['improvement_pct']:+.1f}%)")
    else:
        lines.append("vs recorded baseline:   (no baseline recorded; run "
                     "`repro bench --record-baseline`)")
    phases = report.get("phases")
    if phases:
        lines.append(
            f"phases:                 prewarm {phases['trace_prewarm_s']}s, "
            f"pool {phases['warm_pool_s']}s, "
            f"simulate {phases['simulate_s']}s, flush {phases['flush_s']}s")
    batch = report.get("batch")
    if batch:
        lines.append(
            f"batch execution:        "
            f"{batch['on_accesses_per_sec']:,.0f} accesses/s batched vs "
            f"{batch['off_accesses_per_sec']:,.0f} scalar "
            f"({batch['speedup']}x), "
            f"identical={'yes' if batch['all_identical'] else 'NO'}")
    obs = report.get("obs_overhead")
    if obs:
        overhead = obs["overhead_pct"]
        lines.append(
            f"observability:          "
            f"{obs['enabled_accesses_per_sec']:,.0f} accesses/s traced "
            f"({overhead:+.1f}% vs off), "
            f"noop-off={'yes' if obs['disabled_is_noop'] else 'NO'}, "
            f"parity={'yes' if obs['counters_identical'] else 'NO'}")
        batch_obs = obs.get("batch_obs")
        if batch_obs:
            lines.append(
                f"batch + observability:  "
                f"identical={'yes' if batch_obs['all_identical'] else 'NO'}, "
                f"engaged={'yes' if batch_obs['all_engaged'] else 'NO'}")
    return "\n".join(lines)
