"""Figure 9: breakdown of bytes sent/received at the L1 by information type.

Four bars per application (MESI, Protozoa-SW, SW+MR, MW), each split into
Used Data / Unused Data / Control and normalized to the MESI total.  The
harness prints one row per (application, protocol) plus the geometric-mean
total-traffic ratios the paper quotes (SW 0.74, SW+MR 0.66, MW 0.63 of
MESI, i.e. 26% / 34% / 37% reductions).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ALL_PROTOCOLS, ResultMatrix, shared_matrix
from repro.stats.tables import format_table, geomean


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        base = matrix.run(name, ProtocolKind.MESI).traffic_bytes() or 1
        for protocol in ALL_PROTOCOLS:
            result = matrix.run(name, protocol)
            split = result.traffic_split()
            table.append([
                name,
                protocol.short_name,
                round(split["used"] / base, 4),
                round(split["unused"] / base, 4),
                round(split["control"] / base, 4),
                round(result.traffic_bytes() / base, 4),
            ])
    return table


def summary(matrix: Optional[ResultMatrix] = None) -> Dict[str, float]:
    """Geometric-mean total-traffic ratio vs MESI per protocol."""
    matrix = matrix if matrix is not None else shared_matrix()
    out: Dict[str, float] = {}
    for protocol in ALL_PROTOCOLS:
        ratios = []
        for name in matrix.settings.workload_names():
            base = matrix.run(name, ProtocolKind.MESI).traffic_bytes() or 1
            ratios.append(matrix.run(name, protocol).traffic_bytes() / base)
        out[protocol.short_name] = geomean(ratios)
    return out


HEADERS = ["benchmark", "protocol", "used", "unused", "control", "total"]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    matrix = matrix if matrix is not None else shared_matrix()
    body = format_table(HEADERS, rows(matrix))
    means = summary(matrix)
    tail = "  ".join(f"{k}={v:.3f}" for k, v in means.items())
    return f"{body}\n\ngeomean total vs MESI: {tail}"


def main() -> None:
    print("Figure 9: L1 traffic breakdown normalized to MESI")
    print(render())


if __name__ == "__main__":
    main()
