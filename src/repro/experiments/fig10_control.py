"""Figure 10: control-message breakdown (REQ / FWD / INV / ACK / NACK).

Bytes of each control-message class sent/received at the L1, normalized to
the *total* traffic of MESI for that application (so the bars are directly
comparable with Figure 9's control segment).  Data-message headers are
reported in their own column.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.messages import MsgCategory
from repro.common.params import ProtocolKind
from repro.experiments.runner import ALL_PROTOCOLS, ResultMatrix, shared_matrix
from repro.stats.tables import format_table

CATEGORIES = [MsgCategory.REQ, MsgCategory.FWD, MsgCategory.INV,
              MsgCategory.ACK, MsgCategory.NACK, MsgCategory.HDR]


def rows(matrix: Optional[ResultMatrix] = None) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        base = matrix.run(name, ProtocolKind.MESI).traffic_bytes() or 1
        for protocol in ALL_PROTOCOLS:
            control = matrix.run(name, protocol).control_split()
            table.append(
                [name, protocol.short_name]
                + [round(control[c.value] / base, 4) for c in CATEGORIES]
            )
    return table


HEADERS = ["benchmark", "protocol"] + [c.value for c in CATEGORIES]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    return format_table(HEADERS, rows(matrix))


def main() -> None:
    print("Figure 10: control traffic breakdown (fraction of MESI total)")
    print(render())


if __name__ == "__main__":
    main()
