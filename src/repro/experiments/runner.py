"""Shared experiment runner with result memoization.

Figures 9, 10, 13, 14 and 15 all consume the same (workload x protocol)
run matrix; :class:`ResultMatrix` memoizes each run so a full figure sweep
simulates every configuration exactly once per process (and the benchmark
suite shares one matrix across all figure benches).  Under the hood every
run is served by :class:`~repro.experiments.engine.ExperimentEngine`:
cache misses of a :meth:`ResultMatrix.sweep` fan out across a process
pool (``REPRO_JOBS``) and finished results persist on disk
(``REPRO_CACHE_DIR``), so a warm sweep is pure cache hits.

Scale control: ``REPRO_SCALE`` (accesses per core, default 2000) and
``REPRO_WORKLOADS`` (comma-separated subset) keep full-suite regeneration
tractable; raise the scale for closer-to-paper steady-state numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import ProtocolKind
from repro.experiments._engine import ExperimentEngine, RunSpec
from repro.system.results import RunResult
from repro.trace.workloads import WORKLOADS

ALL_PROTOCOLS: Tuple[ProtocolKind, ...] = (
    ProtocolKind.MESI,
    ProtocolKind.PROTOZOA_SW,
    ProtocolKind.PROTOZOA_SW_MR,
    ProtocolKind.PROTOZOA_MW,
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and machine parameters for one experiment sweep."""

    cores: int = 16
    per_core: int = 2000
    seed: int = 0
    workloads: Tuple[str, ...] = ()

    def workload_names(self) -> List[str]:
        return list(self.workloads) if self.workloads else sorted(WORKLOADS)


def default_settings() -> ExperimentSettings:
    """Settings honouring the REPRO_SCALE / REPRO_WORKLOADS environment."""
    per_core = int(os.environ.get("REPRO_SCALE", "2000"))
    names = os.environ.get("REPRO_WORKLOADS", "")
    workloads = tuple(n.strip() for n in names.split(",") if n.strip())
    return ExperimentSettings(per_core=per_core, workloads=workloads)


class ResultMatrix:
    """Memoized (workload, protocol[, block size]) -> RunResult runs."""

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 engine: Optional[ExperimentEngine] = None):
        self.settings = settings if settings is not None else default_settings()
        self.engine = engine if engine is not None else ExperimentEngine()
        self._cache: Dict[Tuple, RunResult] = {}

    def _spec(self, workload: str, protocol: ProtocolKind,
              block_bytes: Optional[int] = None) -> RunSpec:
        s = self.settings
        return RunSpec(workload=workload, protocol=protocol,
                       block_bytes=block_bytes, cores=s.cores,
                       per_core=s.per_core, seed=s.seed)

    def run(self, workload: str, protocol: ProtocolKind,
            block_bytes: Optional[int] = None) -> RunResult:
        """One simulation, memoized (in-process and on disk)."""
        key = (workload, protocol, block_bytes)
        result = self._cache.get(key)
        if result is not None:
            return result
        result = self.engine.run(self._spec(workload, protocol, block_bytes))
        self._cache[key] = result
        return result

    def sweep(self, protocols: Sequence[ProtocolKind] = ALL_PROTOCOLS,
              workloads: Optional[Sequence[str]] = None
              ) -> Dict[Tuple[str, ProtocolKind], RunResult]:
        """Run (and memoize) the full workload x protocol matrix.

        Cells not already memoized are served by the engine as one batch,
        which fans cache misses out across the worker pool.
        """
        names = list(workloads) if workloads else self.settings.workload_names()
        missing = {}
        for name in names:
            for protocol in protocols:
                key = (name, protocol, None)
                if key not in self._cache:
                    missing[key] = self._spec(name, protocol)
        if missing:
            results = self.engine.run_many(list(missing.values()))
            for key, spec in missing.items():
                self._cache[key] = results[spec]
        return {(name, protocol): self._cache[(name, protocol, None)]
                for name in names for protocol in protocols}

    def prewarm(self, block_sizes: Sequence[int] = ()) -> None:
        """Batch-run every cell the full report consumes, in parallel.

        Covers the (workload x protocol) matrix plus MESI block-size
        sweeps (Table 1) so the per-cell ``run()`` calls of the figure
        harnesses are pure memo hits afterwards.
        """
        names = self.settings.workload_names()
        specs = []
        keys = []
        for name in names:
            for protocol in ALL_PROTOCOLS:
                keys.append((name, protocol, None))
            for block in block_sizes:
                keys.append((name, ProtocolKind.MESI, block))
        for key in keys:
            if key not in self._cache:
                specs.append((key, self._spec(*key)))
        if specs:
            results = self.engine.run_many([spec for _, spec in specs])
            for key, spec in specs:
                self._cache[key] = results[spec]


_SHARED: Optional[ResultMatrix] = None


def shared_matrix() -> ResultMatrix:
    """Process-wide matrix so all figure harnesses reuse the same runs.

    Keyed by the current environment-derived settings: changing
    ``REPRO_SCALE`` / ``REPRO_WORKLOADS`` mid-process rebuilds the shared
    matrix instead of silently serving runs at the stale scale.
    """
    global _SHARED
    settings = default_settings()
    if _SHARED is None or _SHARED.settings != settings:
        _SHARED = ResultMatrix(settings)
    return _SHARED
