"""Shared experiment runner with result memoization.

Figures 9, 10, 13, 14 and 15 all consume the same (workload x protocol)
run matrix; :class:`ResultMatrix` memoizes each run so a full figure sweep
simulates every configuration exactly once per process (and the benchmark
suite shares one matrix across all figure benches).

Scale control: ``REPRO_SCALE`` (accesses per core, default 2000) and
``REPRO_WORKLOADS`` (comma-separated subset) keep full-suite regeneration
tractable; raise the scale for closer-to-paper steady-state numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import ProtocolKind, SystemConfig
from repro.system.machine import simulate
from repro.system.results import RunResult
from repro.trace.workloads import WORKLOADS, build_streams

ALL_PROTOCOLS: Tuple[ProtocolKind, ...] = (
    ProtocolKind.MESI,
    ProtocolKind.PROTOZOA_SW,
    ProtocolKind.PROTOZOA_SW_MR,
    ProtocolKind.PROTOZOA_MW,
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and machine parameters for one experiment sweep."""

    cores: int = 16
    per_core: int = 2000
    seed: int = 0
    workloads: Tuple[str, ...] = ()

    def workload_names(self) -> List[str]:
        return list(self.workloads) if self.workloads else sorted(WORKLOADS)


def default_settings() -> ExperimentSettings:
    """Settings honouring the REPRO_SCALE / REPRO_WORKLOADS environment."""
    per_core = int(os.environ.get("REPRO_SCALE", "2000"))
    names = os.environ.get("REPRO_WORKLOADS", "")
    workloads = tuple(n.strip() for n in names.split(",") if n.strip())
    return ExperimentSettings(per_core=per_core, workloads=workloads)


class ResultMatrix:
    """Memoized (workload, protocol[, block size]) -> RunResult runs."""

    def __init__(self, settings: Optional[ExperimentSettings] = None):
        self.settings = settings if settings is not None else default_settings()
        self._cache: Dict[Tuple, RunResult] = {}

    def run(self, workload: str, protocol: ProtocolKind,
            block_bytes: Optional[int] = None) -> RunResult:
        """One simulation, memoized."""
        key = (workload, protocol, block_bytes)
        result = self._cache.get(key)
        if result is not None:
            return result
        s = self.settings
        config = SystemConfig(protocol=protocol, cores=s.cores)
        if block_bytes is not None:
            config = config.with_block_bytes(block_bytes)
        streams = build_streams(workload, cores=s.cores, per_core=s.per_core,
                                seed=s.seed)
        result = simulate(streams, config, name=workload)
        self._cache[key] = result
        return result

    def sweep(self, protocols: Sequence[ProtocolKind] = ALL_PROTOCOLS,
              workloads: Optional[Sequence[str]] = None
              ) -> Dict[Tuple[str, ProtocolKind], RunResult]:
        """Run (and memoize) the full workload x protocol matrix."""
        names = list(workloads) if workloads else self.settings.workload_names()
        out = {}
        for name in names:
            for protocol in protocols:
                out[(name, protocol)] = self.run(name, protocol)
        return out


_SHARED: Optional[ResultMatrix] = None


def shared_matrix() -> ResultMatrix:
    """Process-wide matrix so all figure harnesses reuse the same runs."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ResultMatrix()
    return _SHARED
