"""Experiment harnesses regenerating every table/figure of the evaluation."""

from repro.experiments.runner import (
    ALL_PROTOCOLS,
    ExperimentSettings,
    ResultMatrix,
    default_settings,
)

__all__ = [
    "ALL_PROTOCOLS",
    "ExperimentSettings",
    "ResultMatrix",
    "default_settings",
]
