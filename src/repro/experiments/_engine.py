"""The parallel experiment engine with a persistent result cache.

Every figure harness ultimately replays cells of the same deterministic
(workload x protocol x block-size) run matrix.  Runs are mutually
independent, so this module fans them out across a process pool and
memoizes each finished :class:`~repro.system.results.RunResult` on disk,
content-addressed by the full run recipe:

* **RunSpec** — the recipe for one run: (workload, protocol, block_bytes,
  cores, per_core, seed).  Its digest additionally covers
  ``SCHEMA_VERSION``; bumping the version invalidates every cached entry
  (the only invalidation rule — bump it whenever a change alters simulated
  outcomes or the serialized layout).
* **ResultCache** — ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``),
  one JSON file per digest under a two-hex-char fan-out directory.
  Entries are written atomically (temp file + rename) so concurrent
  engines never observe torn results.  ``REPRO_CACHE=0`` disables it.
* **ExperimentEngine** — cache-aware execution.  ``run()`` serves one
  spec; ``run_many()`` fans cache misses out over a persistent
  ``ProcessPoolExecutor`` sized by ``$REPRO_JOBS`` (default: all cores),
  falling back to in-process serial execution when ``REPRO_JOBS=1``.

The fan-out path is built so pool overhead stays off the hot path:

* the **pool is created once per engine** and reused across every
  ``run_many()`` call; its initializer pre-imports the simulation stack
  and pins the trace-cache directory, so workers pay import cost once,
  not per task;
* specs are submitted in **chunks** so task IPC amortizes over several
  simulations;
* workers replay **packed traces** from the content-addressed trace
  cache (:mod:`repro.trace.cache`) instead of regenerating workload
  streams, and return one compact JSON blob per result, which the
  parent writes to the result cache verbatim (one parse to build the
  in-memory ``RunResult``, no dict round-trip).

Simulations are deterministic, so parallel, serial, cached, and
packed-vs-object results are bit-identical
(``tests/experiments/test_engine.py`` pins this down).

The engine is also the recovery layer of :mod:`repro.resilience`
(docs/resilience.md): failed or stalled chunks retry under a seeded
backoff policy, dead pools rebuild, exhausted retries degrade to serial
in-process execution, corrupt cache blobs quarantine instead of
aborting, and an optional sweep journal records completions for
``--resume``.  ``repro chaos`` pins down that a sweep under injected
faults still converges to results bit-identical to a fault-free run.
"""

from __future__ import annotations

import json
import hashlib
import os
import time
import warnings
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.common.params import ProtocolKind, SystemConfig
from repro.obs.metrics import MetricsRegistry, process_registry
from repro.resilience.faults import SITE_CACHE_CORRUPT, get_injector
from repro.resilience.journal import SweepJournal
from repro.resilience.lease import LeaseBoard
from repro.resilience.log import warn as resilience_warn
from repro.resilience.retry import RetryPolicy
from repro.store import NAMESPACE_RESULTS, BlobStore, FsStore, get_store
from repro.store.fs import default_result_root
from repro.system.machine import simulate
from repro.system.results import RunResult
from repro.trace._cache import packed_streams, trace_cache_dir
from repro.trace.workloads import build_streams

#: Bump whenever simulation behaviour or the serialized result layout
#: changes: every previously cached entry becomes unreachable.
SCHEMA_VERSION = 1

#: Chunks submitted per worker per ``run_many`` batch: small enough to
#: load-balance uneven cells, large enough to amortize task IPC.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class RunSpec:
    """The complete, deterministic recipe for one simulation run."""

    workload: str
    protocol: ProtocolKind
    block_bytes: Optional[int] = None
    cores: int = 16
    per_core: int = 2000
    seed: int = 0

    def config(self) -> SystemConfig:
        config = SystemConfig(protocol=self.protocol, cores=self.cores)
        if self.block_bytes is not None:
            config = config.with_block_bytes(self.block_bytes)
        return config

    def payload(self) -> Dict:
        """JSON-safe form (sent to worker processes, hashed for the cache)."""
        return {
            "workload": self.workload,
            "protocol": self.protocol.value,
            "block_bytes": self.block_bytes,
            "cores": self.cores,
            "per_core": self.per_core,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, data: Dict) -> "RunSpec":
        return cls(
            workload=data["workload"],
            protocol=ProtocolKind(data["protocol"]),
            block_bytes=data["block_bytes"],
            cores=data["cores"],
            per_core=data["per_core"],
            seed=data["seed"],
        )

    def digest(self) -> str:
        """Content address: the recipe plus the engine schema version."""
        recipe = {"schema": SCHEMA_VERSION, **self.payload()}
        blob = json.dumps(recipe, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def execute_spec(spec: RunSpec, packed: bool = True) -> RunResult:
    """Run one spec in-process (no result-cache involvement).

    With ``packed`` (the default) the trace comes from the packed trace
    cache — built at most once per recipe, replayed with no per-event
    objects.  ``packed=False`` regenerates ``MemAccess`` streams; the
    equivalence tests pin both paths to bit-identical results.
    """
    if packed:
        trace = packed_streams(spec.workload, cores=spec.cores,
                               per_core=spec.per_core, seed=spec.seed)
        return simulate(trace, spec.config(), name=spec.workload)
    streams = build_streams(spec.workload, cores=spec.cores,
                            per_core=spec.per_core, seed=spec.seed)
    return simulate(streams, spec.config(), name=spec.workload)


def _serialize_result(result: RunResult) -> str:
    """The compact wire/cache form shipped back from pool workers."""
    return json.dumps(result.to_dict(), separators=(",", ":"))


def _pool_init(trace_dir: str, batch_env: str = "",
               store_env: str = "", store_timeout_env: str = "") -> None:
    """Worker initializer: pin the trace cache, pre-import the machine.

    Runs once per worker process (not per task), so spawn-started pools
    agree with the parent on trace-cache location, blob-store choice
    (``REPRO_STORE``, set by ``--store``), the remote-store timeout
    (``REPRO_STORE_TIMEOUT``), batched-execution choice (``REPRO_BATCH``,
    set by ``--batch/--no-batch``), and every heavy import is paid
    before the first task arrives.
    """
    if trace_dir:
        os.environ["REPRO_TRACE_CACHE_DIR"] = trace_dir
    if batch_env:
        os.environ["REPRO_BATCH"] = batch_env
    if store_env:
        os.environ["REPRO_STORE"] = store_env
    if store_timeout_env:
        os.environ["REPRO_STORE_TIMEOUT"] = store_timeout_env
    import repro.system.machine  # noqa: F401


def _worker_run(payload: Dict) -> Dict:
    """Single-spec pool entry point (kept for compatibility)."""
    return execute_spec(RunSpec.from_payload(payload)).to_dict()


def _worker_run_chunk(payloads: List[Dict]) -> List[str]:
    """Chunked pool entry point: recipes in, compact serialized results out.

    The fault-injection sites live at chunk start (worker kill, transient
    exception, stall); with ``REPRO_FAULTS`` unset the check is one
    environment lookup.
    """
    injector = get_injector()
    if injector is not None:
        injector.on_worker_chunk()
    return [_serialize_result(execute_spec(RunSpec.from_payload(payload)))
            for payload in payloads]


def default_cache_dir() -> Path:
    return default_result_root()


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    # The affinity mask sees cgroup/taskset limits that cpu_count() does
    # not; oversubscribing a restricted container just thrashes the
    # scheduler.
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class ResultCache:
    """Content-addressed store of serialized run results.

    The cache's only policy is *meaning*: it knows a result blob must
    parse back into a :class:`~repro.system.results.RunResult` and keys
    blobs as ``results/<digest>.json``.  Durability, atomicity, and
    location all belong to the pluggable :class:`~repro.store.BlobStore`
    it sits on (local ``FsStore`` tree or a shared ``HttpStore`` — see
    docs/distributed.md); by default it follows :func:`repro.store.get_store`
    per call, so ``--store`` / ``REPRO_STORE`` and the hermetic test
    fixtures all take effect without plumbing.

    Reads distinguish *absent* (a plain miss) from *corrupt* (the blob
    exists but does not parse): corrupt blobs quarantine through the
    store — never silently deleted — and the miss triggers a fresh run
    that rewrites the entry.  ``REPRO_CACHE=0`` disables it.

    .. deprecated::
        The ``root`` path argument is a compatibility shim that pins an
        :class:`~repro.store.FsStore` at that path; pass ``store=``
        (or call :func:`repro.store.configure_store`) instead.
    """

    def __init__(self, root: Optional[Path] = None,
                 enabled: Optional[bool] = None,
                 store: Optional[BlobStore] = None):
        if root is not None:
            if store is not None:
                raise TypeError("pass either root= (deprecated) or store=, "
                                "not both")
            warnings.warn(
                "ResultCache(root=...) is deprecated; pass "
                "store=FsStore(root) or configure_store(...)",
                DeprecationWarning, stacklevel=2)
            store = FsStore(Path(root))
        self._store = store
        self.enabled = cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    @property
    def store(self) -> BlobStore:
        """The backend in effect (pinned at construction, else the
        process-wide :func:`repro.store.get_store` resolved per use)."""
        return self._store if self._store is not None else get_store()

    @property
    def root(self) -> Optional[Path]:
        """The local cache root, when the backend has one (legacy)."""
        return getattr(self.store, "root", None)

    @staticmethod
    def key_for(spec: RunSpec) -> str:
        return f"{NAMESPACE_RESULTS}/{spec.digest()}.json"

    def path_for(self, spec: RunSpec) -> Optional[Path]:
        """Local blob path (``None`` on a remote store)."""
        return self.store.local_path(self.key_for(spec))

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        if not self.enabled:
            return None
        store = self.store
        key = self.key_for(spec)
        injector = get_injector()
        if injector is not None:
            path = store.local_path(key)
            if path is not None:
                injector.maybe_corrupt(SITE_CACHE_CORRUPT, path)
        raw = store.get(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            # UnicodeDecodeError is a ValueError: a non-UTF-8 blob takes
            # the same quarantine path as malformed JSON.
            result = RunResult.from_dict(json.loads(raw.decode("utf-8")))
        except (ValueError, KeyError, TypeError) as exc:
            # The entry exists but is damaged: preserve the evidence in
            # quarantine and treat it as a miss (the rerun rewrites it).
            self.quarantined += 1
            quarantined = store.quarantine(key, f"{type(exc).__name__}: {exc}")
            resilience_warn(
                "result-cache-corrupt",
                f"unreadable result blob {key}",
                cache="result", error=str(exc),
                quarantined=quarantined if quarantined else "FAILED")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> None:
        if not self.enabled:
            return
        self.store.put(self.key_for(spec), _serialize_result(result))

    def put_blob(self, spec: RunSpec, blob: str) -> None:
        """Store an already-serialized result verbatim (the pool path)."""
        if not self.enabled:
            return
        self.store.put(self.key_for(spec), blob)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=False, cancel_futures=True)


class ExperimentEngine:
    """Cache-aware, optionally parallel, fault-tolerant execution of specs.

    The worker pool is created lazily on the first fan-out and persists
    for the engine's lifetime; ``close()`` (or using the engine as a
    context manager) shuts it down, and a dropped engine cleans up via a
    finalizer.  ``warm_pool()`` spins the workers up eagerly — call it
    before a timed region so pool start-up is not attributed to the
    sweep being measured.

    Failure handling (see docs/resilience.md): a failed or stalled chunk
    is retried in later rounds under the engine's
    :class:`~repro.resilience.retry.RetryPolicy` (seeded exponential
    backoff between rounds); a dead worker (``BrokenProcessPool``)
    triggers a pool rebuild; once retries or rebuilds are exhausted the
    engine *degrades to serial* in-process execution, which cannot lose
    work to worker faults — so ``run_many`` either returns every spec's
    result or raises, never returns a partial matrix.  Retry, rebuild,
    stall, and degradation counters land in :attr:`metrics`
    (``repro_engine_*``).  An attached
    :class:`~repro.resilience.journal.SweepJournal` records every
    completed spec for crash-resume.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 retry: Optional[RetryPolicy] = None,
                 journal: Optional[SweepJournal] = None,
                 lease: Optional[LeaseBoard] = None):
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache = cache if cache is not None else ResultCache()
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.journal = journal
        self.lease = lease
        self.executed = 0  # specs actually simulated (cache misses)
        self.absorbed = 0  # sharded mode: results computed by teammates
        self.pool_rebuilds = 0
        self.degraded = False  # pool gave up; everything runs serial now
        # Session-level aggregation of per-run metric dumps (repro.obs).
        # Workers inherit REPRO_OBS through the pool environment, attach a
        # registry dump to each serialized result, and every result served
        # by this engine — simulated here, shipped from a worker, or read
        # back from the cache — is folded in on arrival.
        self.metrics = MetricsRegistry()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer = None

    # -- pool lifecycle ------------------------------------------------------

    def warm_pool(self) -> Optional[ProcessPoolExecutor]:
        """The persistent pool (created on first use; ``None`` if serial
        or the engine has degraded to serial execution)."""
        if self.jobs <= 1 or self.degraded:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_pool_init,
                initargs=(str(trace_cache_dir()),
                          os.environ.get("REPRO_BATCH", ""),
                          os.environ.get("REPRO_STORE", ""),
                          os.environ.get("REPRO_STORE_TIMEOUT", "")),
            )
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down; the engine stays usable (serially
        it never had one, and a later fan-out recreates it)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()  # idempotent; detaches after first call
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _abandon_pool(self) -> None:
        """Drop the pool without waiting on it (a worker died or stalled;
        blocking on its remaining tasks could block forever)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()  # shutdown(wait=False, cancel_futures=True)
            self._pool_finalizer = None
        self._pool = None

    def _rebuild_pool(self, reason: str) -> None:
        """Replace a broken/stalled pool; degrade to serial past the limit."""
        self._abandon_pool()
        self.pool_rebuilds += 1
        self.metrics.inc("repro_engine_pool_rebuilds_total", reason=reason)
        resilience_warn("engine-pool-rebuild",
                        f"worker pool rebuilt ({reason})",
                        rebuilds=self.pool_rebuilds)
        if self.pool_rebuilds > self.retry.max_pool_rebuilds:
            self._degrade("pool-rebuilds-exhausted")

    def _degrade(self, reason: str) -> None:
        """Give up on parallel fan-out for this engine's lifetime."""
        if self.degraded:
            return
        self.degraded = True
        self.metrics.inc("repro_engine_degraded_total", reason=reason)
        resilience_warn("engine-degraded",
                        "falling back to serial in-process execution",
                        reason=reason)
        self._abandon_pool()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- single run ----------------------------------------------------------

    def _absorb_metrics(self, result: RunResult) -> RunResult:
        if result.metrics:
            self.metrics.merge_dict(result.metrics)
        return result

    def _journal_record(self, spec: RunSpec) -> None:
        if self.journal is not None:
            self.journal.record(spec.digest(), spec.payload())

    def run(self, spec: RunSpec) -> RunResult:
        cached = self.cache.get(spec)
        if cached is not None:
            self._journal_record(spec)
            return self._absorb_metrics(cached)
        result = execute_spec(spec)
        self.executed += 1
        self.cache.put(spec, result)
        self._journal_record(spec)
        return self._absorb_metrics(result)

    # -- batched runs ----------------------------------------------------------

    def run_many(self, specs: Iterable[RunSpec]) -> Dict[RunSpec, RunResult]:
        """Serve every spec, fanning cache misses out across the pool.

        Results are keyed by spec; duplicate specs collapse to one run.
        Misses are submitted to the persistent pool in chunks
        (``_CHUNKS_PER_WORKER`` per worker) so several simulations share
        one task's IPC; each worker ships back compact JSON blobs that
        land in the result cache byte-for-byte.  Worker failures are
        retried and, past the retry policy's limits, served serially —
        the returned dict always covers every spec.

        With a :class:`LeaseBoard` attached (multi-host sweeps), the
        work is additionally divided with every other process sharing
        the same journal + store — see :meth:`run_sharded`.
        """
        if (self.lease is not None and self.journal is not None
                and self.cache.enabled):
            return self.run_sharded(specs)
        return self._run_many_local(specs)

    def _run_many_local(self,
                        specs: Iterable[RunSpec]) -> Dict[RunSpec, RunResult]:
        out: Dict[RunSpec, RunResult] = {}
        todo: List[RunSpec] = []
        pending = set()
        for spec in specs:
            if spec in out or spec in pending:
                continue
            cached = self.cache.get(spec)
            if cached is not None:
                out[spec] = self._absorb_metrics(cached)
                self._journal_record(spec)
            else:
                todo.append(spec)
                pending.add(spec)
        if not todo:
            return out
        if self.jobs <= 1 or len(todo) == 1 or self.degraded:
            self._run_serial(todo, out)
            return out
        self._run_parallel(todo, out)
        return out

    def _run_serial(self, specs: List[RunSpec],
                    out: Dict[RunSpec, RunResult]) -> None:
        """In-process execution: immune to pool faults by construction."""
        for spec in specs:
            result = execute_spec(spec)
            self.executed += 1
            self.cache.put(spec, result)
            out[spec] = self._absorb_metrics(result)
            self._journal_record(spec)

    def _run_parallel(self, todo: List[RunSpec],
                      out: Dict[RunSpec, RunResult]) -> None:
        """Fan out with bounded retries; finish serially if the pool fails."""
        policy = self.retry
        pending = list(todo)
        attempt = 0
        while pending and not self.degraded:
            pending = self._parallel_round(pending, out)
            if not pending:
                return
            attempt += 1
            if attempt > policy.max_retries:
                self._degrade("retries-exhausted")
                break
            self.metrics.inc("repro_engine_retries_total", len(pending))
            delay = policy.backoff(attempt)
            if delay > 0:
                time.sleep(delay)
        if pending:
            self._run_serial(pending, out)

    def _parallel_round(self, specs: List[RunSpec],
                        out: Dict[RunSpec, RunResult]) -> List[RunSpec]:
        """One submit-and-drain pass; returns the specs that must retry."""
        pool = self.warm_pool()
        if pool is None:  # degraded between rounds
            return specs
        size = max(1, -(-len(specs) // (self.jobs * _CHUNKS_PER_WORKER)))
        chunks = [specs[i:i + size] for i in range(0, len(specs), size)]
        futures = {
            pool.submit(_worker_run_chunk, [s.payload() for s in chunk]): chunk
            for chunk in chunks
        }
        failed: List[RunSpec] = []
        broken = False
        worker_died = False
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, timeout=self.retry.timeout_s,
                                  return_when=FIRST_COMPLETED)
            if not done:
                # Deadline passed with zero progress: everything still
                # outstanding counts as stalled and re-dispatches.
                self.metrics.inc("repro_engine_stalls_total", len(not_done))
                resilience_warn("engine-task-stall",
                                "no chunk completed within the deadline",
                                timeout_s=self.retry.timeout_s)
                for future in not_done:
                    future.cancel()
                    failed.extend(futures[future])
                broken = True
                not_done = set()
                break
            for future in done:
                chunk = futures[future]
                try:
                    blobs = future.result()
                except BrokenProcessPool:
                    worker_died = True
                    broken = True
                    failed.extend(chunk)
                except Exception as exc:
                    self.metrics.inc("repro_engine_worker_errors_total",
                                     kind=type(exc).__name__)
                    failed.extend(chunk)
                else:
                    for spec, blob in zip(chunk, blobs):
                        self.executed += 1
                        self.cache.put_blob(spec, blob)
                        out[spec] = self._absorb_metrics(
                            RunResult.from_dict(json.loads(blob)))
                        self._journal_record(spec)
            if broken:
                # A broken pool poisons every outstanding future.
                for future in not_done:
                    failed.extend(futures[future])
                break
        if worker_died:
            self.metrics.inc("repro_engine_worker_deaths_total")
        if broken:
            self._rebuild_pool("worker-death" if worker_died else "stall")
        return failed

    # -- sharded (multi-process) runs ------------------------------------------

    def run_sharded(self, specs: Iterable[RunSpec]) -> Dict[RunSpec, RunResult]:
        """Serve every spec while *other worker processes* share the work.

        Requires an attached journal and :class:`LeaseBoard` (and an
        enabled cache — the shared store is how teammates' results reach
        us); without all three this is plain :meth:`run_many`.  Each
        worker loops: absorb completions teammates journaled
        (:meth:`SweepJournal.refresh`, results fetched from the shared
        store), lease a batch of unclaimed specs (at most one fan-out's
        worth, so leases stay short-lived), run it through the normal
        cache/retry/journal machinery, release the leases.  Specs every
        worker sees claimed elsewhere are simply waited on.  Workers
        start their claim scan at different points of the digest-sorted
        order (rotated by a hash of the lease owner id) so concurrent
        workers mostly lease disjoint batches instead of racing on every
        file.  The returned dict always covers every requested spec —
        simulations are deterministic, so who computed a cell never
        shows in the bytes.
        """
        if self.journal is None or self.lease is None or not self.cache.enabled:
            return self._run_many_local(specs)
        ordered: List[RunSpec] = []
        by_digest: Dict[str, RunSpec] = {}
        for spec in specs:
            digest = spec.digest()
            if digest not in by_digest:
                by_digest[digest] = spec
                ordered.append(spec)
        digests = sorted(by_digest)
        if digests:
            start = int(hashlib.sha256(
                self.lease.owner.encode("utf-8")).hexdigest(), 16) % len(digests)
            digests = digests[start:] + digests[:start]
        out: Dict[RunSpec, RunResult] = {}
        done: set = set()
        batch_cap = max(1, self.jobs * _CHUNKS_PER_WORKER)
        while len(done) < len(by_digest):
            progress = self._absorb_journaled(by_digest, done, out)
            batch: List[RunSpec] = []
            for digest in digests:
                if len(batch) >= batch_cap:
                    break
                if digest in done or digest in self.journal:
                    continue
                if self.lease.try_claim(digest):
                    batch.append(by_digest[digest])
            if batch:
                progress = True
                self.metrics.inc("repro_engine_shard_claims_total", len(batch))
                try:
                    results = self._run_many_local(batch)
                finally:
                    for spec in batch:
                        self.lease.release(spec.digest())
                for spec, result in results.items():
                    out[spec] = result
                    done.add(spec.digest())
            if not progress:
                # Everything left is leased to live teammates: wait for
                # their journal lines (or for a lease to expire).
                time.sleep(self.lease.poll_s)
        return {spec: out[spec] for spec in ordered}

    def _absorb_journaled(self, by_digest: Dict[str, RunSpec], done: set,
                          out: Dict[RunSpec, RunResult]) -> bool:
        """Fold in results whose completion some process journaled.

        Results are published to the store *before* the journal line is
        appended, so a journaled digest is normally fetchable; if the
        blob was since damaged or quarantined, recompute locally — the
        deterministic rerun rewrites identical bytes.
        """
        self.journal.refresh()
        progress = False
        for digest in self.journal.completed():
            if digest in done or digest not in by_digest:
                continue
            spec = by_digest[digest]
            result = self.cache.get(spec)
            if result is None:
                result = execute_spec(spec)
                self.executed += 1
                self.cache.put(spec, result)
            else:
                self.absorbed += 1
                self.metrics.inc("repro_engine_shard_absorbed_total")
            out[spec] = self._absorb_metrics(result)
            done.add(digest)
            progress = True
        return progress
