"""Figure 14: execution time relative to MESI.

Completion time of the slowest core, normalized to MESI.  The paper plots
only applications whose execution time changes by more than 3% under some
protocol; the harness marks those rows and reports the overall geomean
(the paper's average improvement is ~4%, with linear-regression 2.2x
faster under MW yet 17% *slower* under SW).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import ProtocolKind
from repro.experiments.runner import ALL_PROTOCOLS, ResultMatrix, shared_matrix
from repro.stats.tables import format_table, geomean


def rows(matrix: Optional[ResultMatrix] = None,
         significant_only: bool = False) -> List[List]:
    matrix = matrix if matrix is not None else shared_matrix()
    table: List[List] = []
    for name in matrix.settings.workload_names():
        base = matrix.run(name, ProtocolKind.MESI).exec_cycles() or 1
        ratios = [
            matrix.run(name, protocol).exec_cycles() / base
            for protocol in ALL_PROTOCOLS
        ]
        significant = any(abs(r - 1.0) > 0.03 for r in ratios[1:])
        if significant_only and not significant:
            continue
        table.append([name] + [round(r, 4) for r in ratios]
                     + ["*" if significant else ""])
    return table


HEADERS = ["benchmark"] + [p.short_name for p in ALL_PROTOCOLS] + [">3%"]


def render(matrix: Optional[ResultMatrix] = None) -> str:
    matrix = matrix if matrix is not None else shared_matrix()
    body = format_table(HEADERS, rows(matrix))
    means = {}
    for i, protocol in enumerate(ALL_PROTOCOLS[1:], start=2):
        ratios = [row[i] for row in rows(matrix)]
        means[protocol.short_name] = geomean(ratios)
    tail = "  ".join(f"{k}={v:.3f}" for k, v in means.items())
    return f"{body}\n\ngeomean exec time vs MESI: {tail}"


def main() -> None:
    print("Figure 14: execution time relative to MESI")
    print(render())


if __name__ == "__main__":
    main()
