"""``HttpStore``: the blob store spoken over a running ``repro serve``.

One service instance owns an :class:`~repro.store.fs.FsStore` and
exposes it two ways (see :mod:`repro.service.rpc`):

* **raw blob endpoints** for the data plane —
  ``GET/PUT/HEAD/DELETE /blob/<key>`` move payload bytes without any
  JSON framing, so a fleet of workers shares one warm cache at wire
  speed;
* **JSON-RPC methods** for the management plane — ``store_list``,
  ``store_quarantine``, ``store_orphans``, ``store_gc_log``, ... carry
  the doctor/GC surface, so ``repro doctor --store http://...`` audits
  the remote tree exactly like a local one.

The remote leg is hardened for coordinator flaps (docs/distributed.md):

* every round trip runs under a seeded
  :class:`~repro.resilience.retry.RetryPolicy` — transport failures
  (socket errors, timeouts, 5xx) retry with deterministic jittered
  exponential backoff; HTTP *answers* below 500 (404 included) never
  retry, they are semantics, not weather;
* the per-request timeout is configurable: an explicit ``timeout_s``
  beats a ``?timeout=SECONDS`` URL query, which beats
  ``$REPRO_STORE_TIMEOUT``, which beats the 60 s default;
* a trip-open/half-open **circuit breaker** guards the endpoint: after
  ``$REPRO_STORE_BREAKER_THRESHOLD`` (default 3) consecutive transport
  failures the store goes *degraded* — calls fail fast with
  :class:`StoreUnavailableError` instead of burning a timeout each —
  until a cooldown (``$REPRO_STORE_BREAKER_COOLDOWN``, default 5 s)
  admits one half-open probe.  Degradation is counted, never silent:
  ``repro_store_retry_total{op,outcome}`` and
  ``repro_store_degraded_seconds_total`` land in the process metrics
  registry (exported by the service ``/metrics`` endpoint), and every
  trip/recovery logs through :mod:`repro.resilience.log`.

The network fault sites (``store-get-error`` / ``store-put-stall`` /
``store-conn-refused``, armed via ``REPRO_FAULTS``) are consulted once
per attempt, so ``repro chaos`` rehearses exactly the path a real
flapping coordinator exercises.

This client is deliberately free of :mod:`repro.service` imports (the
service itself sits *above* the store layer); the ~20 lines of JSON-RPC
framing are duplicated here instead of creating an import cycle.
"""

from __future__ import annotations

import http.client
import io
import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import process_registry
from repro.resilience.faults import get_injector
from repro.resilience.log import warn as resilience_warn
from repro.resilience.retry import RetryPolicy
from repro.store.base import BlobStat, BlobStore, StoreError, validate_key

#: Fallback per-request timeout when nothing else names one.
DEFAULT_TIMEOUT_S = 60.0

#: Consecutive transport failures before the breaker trips open.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds a tripped breaker waits before admitting a half-open probe.
DEFAULT_BREAKER_COOLDOWN_S = 5.0


class StoreUnavailableError(StoreError):
    """The endpoint is degraded (breaker open): failed fast, no I/O."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


def default_store_timeout() -> float:
    """``$REPRO_STORE_TIMEOUT`` seconds, else the 60 s default."""
    return _env_float("REPRO_STORE_TIMEOUT", DEFAULT_TIMEOUT_S)


def default_store_retry() -> RetryPolicy:
    """The remote-leg retry policy (seeded so backoffs are replayable).

    ``$REPRO_STORE_RETRIES`` bounds attempts (default 2 retries, i.e.
    3 attempts), ``$REPRO_STORE_BACKOFF_BASE`` scales the first sleep,
    and ``$REPRO_RETRY_SEED`` seeds the jitter — the same seed the
    engine's policy uses, so one knob makes a whole chaos run
    deterministic.
    """
    return RetryPolicy(
        max_retries=max(0, int(_env_float("REPRO_STORE_RETRIES", 2))),
        backoff_base_s=max(0.0, _env_float("REPRO_STORE_BACKOFF_BASE", 0.05)),
        seed=int(_env_float("REPRO_RETRY_SEED", 0)),
    )


def _retryable(exc: BaseException) -> bool:
    """Transport weather retries; HTTP answers below 500 do not."""
    if isinstance(exc, urllib.error.HTTPError):
        return exc.code >= 500
    return isinstance(exc, (OSError, http.client.HTTPException))


class _Breaker:
    """Trip-open/half-open circuit state for one endpoint.

    Closed: requests flow.  Open: requests fail fast until the cooldown
    elapses.  Half-open: exactly one probe is admitted; its outcome
    closes or re-opens the circuit.  Time spent non-closed accrues to
    ``repro_store_degraded_seconds_total`` as it passes, so the metric
    is live during an outage, not only after recovery.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, url: str, threshold: Optional[int] = None,
                 cooldown_s: Optional[float] = None):
        self.url = url
        self.threshold = (int(_env_float("REPRO_STORE_BREAKER_THRESHOLD",
                                         DEFAULT_BREAKER_THRESHOLD))
                          if threshold is None else threshold)
        self.cooldown_s = (_env_float("REPRO_STORE_BREAKER_COOLDOWN",
                                      DEFAULT_BREAKER_COOLDOWN_S)
                           if cooldown_s is None else cooldown_s)
        self.state = self.CLOSED
        self.failures = 0          # consecutive transport failures
        self.trips = 0
        self._since = 0.0          # monotonic mark of the degraded span
        self._opened = 0.0         # monotonic instant the circuit tripped

    def _account(self) -> None:
        """Accrue degraded wall-clock up to now (non-closed states)."""
        now = time.monotonic()
        if self.state != self.CLOSED:
            process_registry().inc("repro_store_degraded_seconds_total",
                                   round(now - self._since, 6))
        self._since = now

    def allow(self) -> bool:
        """May a request go out right now?  (Counts degraded time.)"""
        if self.threshold <= 0 or self.state == self.CLOSED:
            return True
        self._account()
        if self.state == self.OPEN and self._cooled():
            self.state = self.HALF_OPEN  # admit exactly one probe
            return True
        # OPEN still cooling, or HALF_OPEN with the probe already spent.
        return False

    def _cooled(self) -> bool:
        return time.monotonic() - self._opened >= self.cooldown_s

    def record_failure(self) -> None:
        if self.threshold <= 0:
            return
        self.failures += 1
        if self.state == self.HALF_OPEN or (
                self.state == self.CLOSED and self.failures >= self.threshold):
            reopened = self.state == self.HALF_OPEN
            self._account()
            self.state = self.OPEN
            self._opened = time.monotonic()
            self.trips += 1
            process_registry().inc("repro_store_breaker_trips_total")
            resilience_warn(
                "store-degraded",
                f"store {self.url} degraded "
                f"({'probe failed' if reopened else self.failures} "
                f"consecutive transport failure(s)); failing fast for "
                f"{self.cooldown_s:g}s",
                url=self.url)

    def record_success(self) -> None:
        if self.state != self.CLOSED:
            self._account()
            self.state = self.CLOSED
            resilience_warn("store-recovered",
                            f"store {self.url} reachable again",
                            url=self.url)
        self.failures = 0


class HttpStore(BlobStore):
    """Blob storage over a ``repro serve`` endpoint (``http://host:port``).

    The URL may carry a ``?timeout=SECONDS`` query; an explicit
    ``timeout_s`` argument wins over it (see the module docstring for
    the full precedence chain).
    """

    def __init__(self, url: str, timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker_threshold: Optional[int] = None,
                 breaker_cooldown_s: Optional[float] = None):
        self.base, url_timeout = self._split_url(url)
        if timeout_s is not None:
            self.timeout_s = float(timeout_s)
        elif url_timeout is not None:
            self.timeout_s = url_timeout
        else:
            self.timeout_s = default_store_timeout()
        self._url_timeout = url_timeout
        self.retry = retry if retry is not None else default_store_retry()
        self._breaker = _Breaker(self.base, threshold=breaker_threshold,
                                 cooldown_s=breaker_cooldown_s)
        self._next_id = 0

    @staticmethod
    def _split_url(url: str) -> Tuple[str, Optional[float]]:
        parts = urllib.parse.urlsplit(url.strip())
        timeout: Optional[float] = None
        if parts.query:
            for name, values in urllib.parse.parse_qs(parts.query).items():
                if name != "timeout":
                    raise StoreError(
                        f"unknown store URL parameter {name!r} in {url!r} "
                        "(http stores accept only ?timeout=SECONDS)")
                try:
                    timeout = float(values[-1])
                except ValueError:
                    raise StoreError(
                        f"bad ?timeout= value {values[-1]!r} in {url!r}")
        base = urllib.parse.urlunsplit(
            (parts.scheme, parts.netloc, parts.path, "", "")).rstrip("/")
        return base, timeout

    @property
    def degraded(self) -> bool:
        """Is the breaker currently failing fast?"""
        return self._breaker.state != _Breaker.CLOSED

    # -- the guarded round trip ----------------------------------------------

    def _count(self, op: str, outcome: str) -> None:
        process_registry().inc("repro_store_retry_total",
                               op=op, outcome=outcome)

    def _do(self, op: str, attempt_fn: Callable):
        """Run one logical store operation with retries + the breaker.

        ``attempt_fn`` performs a complete round trip (request, read,
        parse) and may raise; the fault-injection sites are consulted
        per *attempt*, so an injected failure exercises the identical
        retry path a real one would.
        """
        attempts = self.retry.max_retries + 1
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            if not self._breaker.allow():
                self._count(op, "fast-fail")
                raise StoreUnavailableError(
                    f"store {self.base} is degraded (circuit open after "
                    f"{self._breaker.failures} consecutive transport "
                    f"failure(s)); retrying after the "
                    f"{self._breaker.cooldown_s:g}s cooldown")
            try:
                injector = get_injector()
                if injector is not None:
                    injector.on_store_op(op)
                result = attempt_fn()
            except BaseException as exc:  # noqa: BLE001 — classified below
                if not _retryable(exc):
                    raise
                last = exc
                self._breaker.record_failure()
                if attempt + 1 >= attempts or self.degraded:
                    break
                self._count(op, "retried")
                delay = self.retry.backoff(attempt + 1)
                if delay > 0:
                    time.sleep(delay)
                continue
            self._breaker.record_success()
            if attempt:
                self._count(op, "recovered")
            return result
        self._count(op, "exhausted")
        raise last

    # -- wire helpers --------------------------------------------------------

    def _blob_url(self, key: str) -> str:
        return f"{self.base}/blob/{urllib.parse.quote(validate_key(key))}"

    def _request(self, method: str, key: str, data: Optional[bytes] = None):
        request = urllib.request.Request(self._blob_url(key), data=data,
                                         method=method)
        if data is not None:
            request.add_header("Content-Type", "application/octet-stream")
        return urllib.request.urlopen(request, timeout=self.timeout_s)

    def _rpc(self, method: str, **params):
        """One JSON-RPC round trip to the service (management plane)."""
        self._next_id += 1
        body = json.dumps({"jsonrpc": "2.0", "id": self._next_id,
                           "method": method, "params": params}).encode()

        def attempt():
            request = urllib.request.Request(
                self.base + "/", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))

        payload = self._do("rpc", attempt)
        if "error" in payload:
            error = payload["error"] or {}
            raise StoreError(f"store RPC {method} failed: "
                             f"{error.get('message', 'unknown error')}")
        return payload.get("result")

    # -- blob data -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        def attempt():
            try:
                with self._request("GET", key) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None
                raise
        return self._do("get", attempt)

    def put(self, key: str, data: Union[str, bytes]) -> None:
        payload = data.encode("utf-8") if isinstance(data, str) else data

        def attempt():
            with self._request("PUT", key, data=payload):
                pass
        self._do("put", attempt)

    def put_blob(self, key: str, writer: Callable) -> None:
        buffer = io.BytesIO()
        writer(buffer)
        self.put(key, buffer.getvalue())

    def delete(self, key: str) -> bool:
        def attempt():
            try:
                with self._request("DELETE", key):
                    return True
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return False
                raise
        return self._do("delete", attempt)

    def stat(self, key: str) -> Optional[BlobStat]:
        def attempt():
            try:
                with self._request("HEAD", key) as resp:
                    return BlobStat(
                        size=int(resp.headers.get("Content-Length", "0")),
                        mtime=float(resp.headers.get("X-Repro-Mtime", "0")))
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None
                raise
        return self._do("stat", attempt)

    def list(self, prefix: str = "") -> List[str]:
        return self._rpc("store_list", prefix=prefix)["keys"]

    # -- connectivity --------------------------------------------------------

    def probe(self) -> Tuple[bool, str]:
        """One unretried liveness round trip (``GET /health``)."""
        try:
            request = urllib.request.Request(self.base + "/health")
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except Exception as exc:  # noqa: BLE001 — a probe reports, not raises
            return False, f"{type(exc).__name__}: {exc}"
        version = payload.get("version", "?")
        return True, f"repro serve {version} reachable"

    # -- integrity / quarantine ----------------------------------------------

    def quarantine(self, key: str, reason: str) -> Optional[str]:
        return self._rpc("store_quarantine", key=validate_key(key),
                         reason=reason)["quarantined"]

    def quarantine_inventory(self, namespace: str) -> Dict:
        return self._rpc("store_quarantine_inventory", namespace=namespace)

    def orphans(self, namespace: str) -> List[str]:
        return self._rpc("store_orphans", namespace=namespace)["orphans"]

    def remove_orphan(self, namespace: str, name: str) -> bool:
        return self._rpc("store_remove_orphan", namespace=namespace,
                         name=name)["removed"]

    def structural_check(self, namespace: str, fix: bool = False) -> List[str]:
        return self._rpc("store_structural_check", namespace=namespace,
                         fix=fix)["problems"]

    # -- garbage collection --------------------------------------------------

    def gc_log(self, namespace: str, entry: Dict) -> None:
        self._rpc("store_gc_log", namespace=namespace, entry=entry)

    def gc_manifest(self, namespace: str) -> List[Dict]:
        return self._rpc("store_gc_manifest", namespace=namespace)["entries"]

    # -- identity ------------------------------------------------------------

    def url(self) -> str:
        if self._url_timeout is not None:
            return f"{self.base}?timeout={self._url_timeout:g}"
        return self.base
