"""``HttpStore``: the blob store spoken over a running ``repro serve``.

One service instance owns an :class:`~repro.store.fs.FsStore` and
exposes it two ways (see :mod:`repro.service.rpc`):

* **raw blob endpoints** for the data plane —
  ``GET/PUT/HEAD/DELETE /blob/<key>`` move payload bytes without any
  JSON framing, so a fleet of workers shares one warm cache at wire
  speed;
* **JSON-RPC methods** for the management plane — ``store_list``,
  ``store_quarantine``, ``store_orphans``, ``store_gc_log``, ... carry
  the doctor/GC surface, so ``repro doctor --store http://...`` audits
  the remote tree exactly like a local one.

This client is deliberately free of :mod:`repro.service` imports (the
service itself sits *above* the store layer); the ~20 lines of JSON-RPC
framing are duplicated here instead of creating an import cycle.
Transport failures raise the stdlib ``URLError`` untouched so callers
can tell "the store said no" from "there is no store".
"""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Dict, List, Optional, Union

from repro.store.base import BlobStat, BlobStore, StoreError, validate_key


class HttpStore(BlobStore):
    """Blob storage over a ``repro serve`` endpoint (``http://host:port``)."""

    def __init__(self, url: str, timeout_s: float = 60.0):
        self.base = url.rstrip("/")
        self.timeout_s = timeout_s
        self._next_id = 0

    # -- wire helpers --------------------------------------------------------

    def _blob_url(self, key: str) -> str:
        return f"{self.base}/blob/{urllib.parse.quote(validate_key(key))}"

    def _request(self, method: str, key: str, data: Optional[bytes] = None):
        request = urllib.request.Request(self._blob_url(key), data=data,
                                         method=method)
        if data is not None:
            request.add_header("Content-Type", "application/octet-stream")
        return urllib.request.urlopen(request, timeout=self.timeout_s)

    def _rpc(self, method: str, **params):
        """One JSON-RPC round trip to the service (management plane)."""
        self._next_id += 1
        body = json.dumps({"jsonrpc": "2.0", "id": self._next_id,
                           "method": method, "params": params}).encode()
        request = urllib.request.Request(
            self.base + "/", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
        if "error" in payload:
            error = payload["error"] or {}
            raise StoreError(f"store RPC {method} failed: "
                             f"{error.get('message', 'unknown error')}")
        return payload.get("result")

    # -- blob data -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        try:
            with self._request("GET", key) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise

    def put(self, key: str, data: Union[str, bytes]) -> None:
        payload = data.encode("utf-8") if isinstance(data, str) else data
        with self._request("PUT", key, data=payload):
            pass

    def put_blob(self, key: str, writer: Callable) -> None:
        buffer = io.BytesIO()
        writer(buffer)
        self.put(key, buffer.getvalue())

    def delete(self, key: str) -> bool:
        try:
            with self._request("DELETE", key):
                return True
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return False
            raise

    def stat(self, key: str) -> Optional[BlobStat]:
        try:
            with self._request("HEAD", key) as resp:
                return BlobStat(
                    size=int(resp.headers.get("Content-Length", "0")),
                    mtime=float(resp.headers.get("X-Repro-Mtime", "0")))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise

    def list(self, prefix: str = "") -> List[str]:
        return self._rpc("store_list", prefix=prefix)["keys"]

    # -- integrity / quarantine ----------------------------------------------

    def quarantine(self, key: str, reason: str) -> Optional[str]:
        return self._rpc("store_quarantine", key=validate_key(key),
                         reason=reason)["quarantined"]

    def quarantine_inventory(self, namespace: str) -> Dict:
        return self._rpc("store_quarantine_inventory", namespace=namespace)

    def orphans(self, namespace: str) -> List[str]:
        return self._rpc("store_orphans", namespace=namespace)["orphans"]

    def remove_orphan(self, namespace: str, name: str) -> bool:
        return self._rpc("store_remove_orphan", namespace=namespace,
                         name=name)["removed"]

    def structural_check(self, namespace: str, fix: bool = False) -> List[str]:
        return self._rpc("store_structural_check", namespace=namespace,
                         fix=fix)["problems"]

    # -- garbage collection --------------------------------------------------

    def gc_log(self, namespace: str, entry: Dict) -> None:
        self._rpc("store_gc_log", namespace=namespace, entry=entry)

    def gc_manifest(self, namespace: str) -> List[Dict]:
        return self._rpc("store_gc_manifest", namespace=namespace)["entries"]

    # -- identity ------------------------------------------------------------

    def url(self) -> str:
        return self.base
