"""Store selection: one URL names where every blob lives.

``parse_store_url`` maps a URL (or bare path) to a backend::

    file:///var/cache/repro   -> FsStore rooted there
    /var/cache/repro          -> the same FsStore
    http://cache-host:8673    -> HttpStore against that service
    http://host:8673?timeout=5
                              -> the same, with a 5 s per-request timeout
    tiered+http://host:8673?local=/var/tier
                              -> TieredStore: local FsStore tier at
                                 /var/tier over that HttpStore
    tiered+http://host:8673?timeout=5&local=/var/tier&budget=1000000000
                              -> the same with a remote timeout and a
                                 1 GB local-tier eviction budget

``tiered+`` consumes the ``local=`` (required) and ``budget=`` query
parameters; everything else in the URL — scheme, host, ``timeout=`` —
describes the remote leg and is handed to it unchanged.

``configure_store`` installs a process-wide choice and exports it as
``REPRO_STORE`` so every engine this process builds — and every pool
worker it forks — resolves the same store.  ``get_store`` is the single
lookup the caches use: the configured store if its URL still matches
the environment, else whatever ``REPRO_STORE`` names, else the default
:class:`~repro.store.fs.FsStore` honouring the legacy
``REPRO_CACHE_DIR`` / ``REPRO_TRACE_CACHE_DIR`` variables (which remain
as deprecated aliases of a ``file://`` store).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.store.base import BlobStore, StoreError
from repro.store.fs import FsStore
from repro.store.http import HttpStore


def _parse_tiered_url(text: str) -> BlobStore:
    """``tiered+<remote-url>?local=DIR[&budget=BYTES]`` -> TieredStore."""
    from urllib.parse import parse_qsl, quote, unquote

    from repro.store.tiered import TieredStore

    inner = text[len("tiered+"):]
    if inner.startswith("tiered+"):
        raise StoreError(f"tiered stores do not nest: {text!r}")
    base, _, query = inner.partition("?")
    local = budget = None
    passthrough = []
    for name, value in parse_qsl(query, keep_blank_values=True):
        if name == "local":
            local = unquote(value)
        elif name == "budget":
            try:
                budget = int(value)
            except ValueError:
                raise StoreError(f"bad budget= value {value!r} in {text!r}")
            if budget <= 0:
                raise StoreError(f"budget= must be positive in {text!r}")
        else:
            passthrough.append(f"{name}={quote(value, safe='')}")
    if not local:
        raise StoreError(
            f"tiered store URL names no local tier: {text!r} "
            "(append ?local=DIR)")
    remote_url = base + ("?" + "&".join(passthrough) if passthrough else "")
    remote = parse_store_url(remote_url)
    if isinstance(remote, TieredStore):
        raise StoreError(f"tiered stores do not nest: {text!r}")
    return TieredStore(remote, Path(local), budget_bytes=budget)


def parse_store_url(url_or_path: Union[str, Path]) -> BlobStore:
    """A ready-to-use backend for one store URL (or bare path)."""
    text = str(url_or_path).strip()
    if not text:
        raise StoreError("empty store URL")
    if text.startswith("tiered+"):
        return _parse_tiered_url(text)
    if text.startswith(("http://", "https://")):
        return HttpStore(text)
    if text.startswith("file://"):
        path = text[len("file://"):]
        if not path:
            raise StoreError(f"file store URL names no path: {text!r}")
        return FsStore(Path(path))
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise StoreError(f"unsupported store scheme {scheme!r} "
                         "(use file:// or http://)")
    return FsStore(Path(text))


def store_url(store: BlobStore) -> str:
    """The canonical URL of a backend (what ``REPRO_STORE`` carries)."""
    return store.url()


#: (REPRO_STORE value it was configured under, the store) — see get_store.
_CONFIGURED: Tuple[Optional[str], Optional[BlobStore]] = (None, None)


def configure_store(url_or_path: Union[str, Path, None]) -> Optional[BlobStore]:
    """Install a process-wide store (``None`` reverts to the environment).

    The choice is exported through ``REPRO_STORE`` so forked pool
    workers and child processes inherit it; returns the backend.
    """
    global _CONFIGURED
    if url_or_path is None:
        _CONFIGURED = (None, None)
        os.environ.pop("REPRO_STORE", None)
        return None
    store = parse_store_url(url_or_path)
    url = store_url(store)
    os.environ["REPRO_STORE"] = url
    _CONFIGURED = (url, store)
    return store


def get_store() -> BlobStore:
    """The store the caches should use right now.

    Construction is a couple of environment reads, so — like the caches
    themselves — callers consult this per use and environment changes
    (notably the hermetic test fixtures) always take effect.
    """
    env = os.environ.get("REPRO_STORE", "")
    url, store = _CONFIGURED
    if store is not None and url == env:
        return store
    if env:
        return parse_store_url(env)
    return FsStore()
