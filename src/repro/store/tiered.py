"""``TieredStore``: a local write-through tier over a remote blob store.

The paper's private-tier/shared-tier split, applied to the artifact
pipeline: each worker keeps a small local :class:`~repro.store.fs.FsStore`
(the *private* tier) coherent with a shared backing store (usually an
:class:`~repro.store.http.HttpStore` against the coordinator), and
adapts what it keeps locally to observed pressure via a byte budget.

Semantics (pinned by ``tests/store/test_tiered.py``):

* **reads are local-first** — a local hit never touches the network; a
  local miss reads through to the remote and *re-warms* the local tier
  (including :meth:`local_path`, so ``TraceCache``'s mmap fast path
  re-warms instead of silently rebuilding);
* **writes are write-through with an outage spool** — every ``put``
  lands in the local tier first, then a *spool marker* is durably
  created before the remote attempt and removed once the remote
  acknowledges.  If the remote is down the write is complete anyway
  (the local tier serves it) and the marker survives until
  :meth:`flush` replays it on reconnect.  A marker is therefore always
  present whenever the local tier holds the *sole* copy of a blob —
  which is exactly why eviction treats :meth:`spooled_keys` as
  untouchable;
* **the local tier lives under ``<dir>/cache``, markers under
  ``<dir>/spool``** — disjoint trees, so the spool can never be
  mistaken for payload by ``list``/``doctor``;
* **corruption heals from the remote** — :meth:`quarantine` retires the
  *local* copy only; the next read re-warms from the remote, whose copy
  was never judged (the damaged bytes came from the local tier);
* **the budget is enforced on install** — when ``budget_bytes`` is set,
  every local install (put or re-warm) that pushes the tier over budget
  triggers the shared size-LRU eviction
  (:func:`repro.resilience.doctor.prune_store_to_size`): manifest-first,
  quarantine-exempt, spool-exempt.

Every crossing is counted on the process registry:
``repro_store_tier_hits_total{tier=local|remote}``,
``repro_store_tier_misses_total``, ``repro_store_tier_spooled_total``,
``repro_store_tier_flushed_total``, ``repro_store_tier_evicted_total``.

Selected via ``--store 'tiered+http://host:port?local=DIR[&budget=BYTES]'``
(see :func:`repro.store.config.parse_store_url`); :meth:`url` round-trips
that form, so pool workers inheriting ``REPRO_STORE`` rebuild the same
tier.
"""

from __future__ import annotations

import io
import json
import time
import urllib.parse
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import process_registry
from repro.resilience.log import warn as resilience_warn
from repro.resilience.storage import durable_replace
from repro.store.base import BlobStat, BlobStore, StoreError, validate_key
from repro.store.fs import FsStore

#: Transport failures the tier absorbs (``URLError`` is an ``OSError``;
#: breaker fast-fails and RPC failures arrive as ``StoreError``).
_UNREACHABLE = (StoreError, OSError)


class TieredStore(BlobStore):
    """Local FsStore write-through/read-back cache over a remote store."""

    def __init__(self, remote: BlobStore, local_dir,
                 budget_bytes: Optional[int] = None):
        self.remote = remote
        self.local_dir = Path(local_dir)
        cache_root = self.local_dir / "cache"
        self.local = FsStore(cache_root, trace_root=cache_root / "traces")
        self.budget_bytes = budget_bytes
        self._spool_dir = self.local_dir / "spool"
        self._spool_dir.mkdir(parents=True, exist_ok=True)
        self._spool_count = len(self._spool_markers())
        # Running local-tier size, maintained incrementally so the budget
        # check is O(1) per install; authoritative re-measure on eviction.
        self._local_bytes = self._measure_local() if budget_bytes else 0

    # -- metrics -------------------------------------------------------------

    @staticmethod
    def _hit(tier: str) -> None:
        process_registry().inc("repro_store_tier_hits_total", tier=tier)

    @staticmethod
    def _miss() -> None:
        process_registry().inc("repro_store_tier_misses_total")

    # -- spool ---------------------------------------------------------------

    def _marker_path(self, key: str) -> Path:
        return self._spool_dir / urllib.parse.quote(validate_key(key),
                                                    safe="")

    def _spool_markers(self) -> List[Tuple[Path, str]]:
        if not self._spool_dir.is_dir():
            return []
        markers = []
        for path in sorted(self._spool_dir.iterdir()):
            if path.is_file():
                markers.append((path, urllib.parse.unquote(path.name)))
        return markers

    def _spool(self, key: str) -> None:
        """Durably mark ``key`` as not-yet-flushed (before the remote try)."""
        durable_replace(self._marker_path(key), json.dumps(
            {"key": key, "spooled_at": time.time()}, sort_keys=True))
        self._spool_count += 1

    def _unspool(self, key: str) -> None:
        try:
            self._marker_path(key).unlink()
        except OSError:
            return
        self._spool_count = max(0, self._spool_count - 1)

    def spooled_keys(self) -> List[str]:
        """Keys whose sole copy is the local tier (eviction-exempt)."""
        return [key for _, key in self._spool_markers()]

    def flush(self) -> Dict[str, int]:
        """Replay spooled writes to the remote; stops at the first
        transport failure (the remote is still down — try again later).

        Returns ``{"flushed": n, "remaining": m}``.
        """
        flushed = 0
        for path, key in self._spool_markers():
            data = self.local.get(key)
            if data is None:
                # The sole copy is gone (a crash between the local write
                # and the marker removal of a delete).  Nothing to flush.
                resilience_warn("tier-spool-lost",
                                "spooled blob missing from the local tier",
                                key=key)
                self._unspool(key)
                continue
            try:
                self.remote.put(key, data)
            except _UNREACHABLE:
                break
            self._unspool(key)
            flushed += 1
            process_registry().inc("repro_store_tier_flushed_total")
        return {"flushed": flushed, "remaining": self._spool_count}

    def _maybe_flush(self) -> None:
        if self._spool_count:
            self.flush()

    # -- local installs + budget ---------------------------------------------

    def _measure_local(self) -> int:
        return sum((self.local.stat(key) or BlobStat(0, 0.0)).size
                   for key in self.local.list())

    def _install_local(self, key: str, data: bytes) -> None:
        self.local.put(key, data)
        if self.budget_bytes:
            self._local_bytes += len(data)
            self._enforce_budget()

    def _enforce_budget(self) -> None:
        if not self.budget_bytes or self._local_bytes <= self.budget_bytes:
            return
        from repro.resilience.doctor import prune_store_to_size

        check = prune_store_to_size(
            self.local, self.budget_bytes,
            f"tier local {self.local_dir}",
            exempt=set(self.spooled_keys()))
        evicted = getattr(check, "evicted", 0)
        if evicted:
            process_registry().inc("repro_store_tier_evicted_total",
                                   evicted)
        self._local_bytes = self._measure_local()

    # -- blob data -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        data = self.local.get(key)
        if data is not None:
            self._hit("local")
            return data
        self._maybe_flush()
        try:
            data = self.remote.get(key)
        except _UNREACHABLE:
            data = None
        if data is None:
            self._miss()
            return None
        self._install_local(key, data)  # re-warm
        self._hit("remote")
        return data

    def put(self, key: str, data: Union[str, bytes]) -> None:
        payload = data.encode("utf-8") if isinstance(data, str) else data
        # Marker before budget enforcement: the in-flight blob is the sole
        # copy until the remote acknowledges, so it must already be
        # spool-exempt when eviction runs.
        self.local.put(key, payload)
        self._spool(key)
        if self.budget_bytes:
            self._local_bytes += len(payload)
            self._enforce_budget()
        self._maybe_flush_others(key)
        try:
            self.remote.put(key, payload)
        except _UNREACHABLE:
            process_registry().inc("repro_store_tier_spooled_total")
            return  # the local tier serves it; flush() replays later
        self._unspool(key)

    def _maybe_flush_others(self, key: str) -> None:
        # A reconnect is usually noticed by the next put; replay older
        # spooled writes first so the backlog drains in arrival order.
        if self._spool_count > 1:
            self.flush()

    def put_blob(self, key: str, writer: Callable) -> None:
        buffer = io.BytesIO()
        writer(buffer)
        self.put(key, buffer.getvalue())

    def delete(self, key: str) -> bool:
        self._unspool(key)
        removed = self.local.delete(key)
        try:
            removed = self.remote.delete(key) or removed
        except _UNREACHABLE:
            pass
        if self.budget_bytes:
            self._local_bytes = self._measure_local()
        return removed

    def stat(self, key: str) -> Optional[BlobStat]:
        stat = self.local.stat(key)
        if stat is not None:
            return stat
        self._maybe_flush()
        try:
            return self.remote.stat(key)
        except _UNREACHABLE:
            return None

    def list(self, prefix: str = "") -> List[str]:
        keys = set(self.local.list(prefix))
        self._maybe_flush()
        try:
            keys.update(self.remote.list(prefix))
        except _UNREACHABLE:
            pass  # degraded listing: the local tier's view
        return sorted(keys)

    # -- local fast path -----------------------------------------------------

    def local_path(self, key: str) -> Optional[Path]:
        """The local tier's path, re-warming from the remote on a miss.

        ``TraceCache`` mmaps through this and treats an unreadable path
        as a cache miss — returning the remote's bytes here (installed
        locally first) is what makes a cold worker re-warm instead of
        re-simulating.
        """
        path = self.local.local_path(key)
        if path.is_file():
            self._hit("local")
            return path
        self._maybe_flush()
        try:
            data = self.remote.get(key)
        except _UNREACHABLE:
            data = None
        if data is None:
            self._miss()
            return None
        self._install_local(key, data)
        self._hit("remote")
        return path

    # -- integrity / quarantine (the local tier; the remote heals it) --------

    def quarantine(self, key: str, reason: str) -> Optional[str]:
        # Only the local copy was judged — the damaged bytes came from
        # the local tier, and the next read re-warms from the remote.
        self._unspool(key)
        return self.local.quarantine(key, reason)

    def quarantine_inventory(self, namespace: str) -> Dict:
        return self.local.quarantine_inventory(namespace)

    def orphans(self, namespace: str) -> List[str]:
        return self.local.orphans(namespace)

    def remove_orphan(self, namespace: str, name: str) -> bool:
        return self.local.remove_orphan(namespace, name)

    def structural_check(self, namespace: str, fix: bool = False) -> List[str]:
        return self.local.structural_check(namespace, fix=fix)

    # -- garbage collection --------------------------------------------------

    def gc_log(self, namespace: str, entry: Dict) -> None:
        self.local.gc_log(namespace, entry)

    def gc_manifest(self, namespace: str) -> List[Dict]:
        return self.local.gc_manifest(namespace)

    # -- health --------------------------------------------------------------

    def probe(self):
        ok, detail = self.remote.probe()
        spool = (f", {self._spool_count} spooled write(s) pending"
                 if self._spool_count else "")
        return ok, f"remote: {detail}{spool}"

    # -- identity ------------------------------------------------------------

    def url(self) -> str:
        base = self.remote.url()
        sep = "&" if "?" in base else "?"
        extra = f"local={urllib.parse.quote(str(self.local_dir), safe='')}"
        if self.budget_bytes:
            extra += f"&budget={self.budget_bytes}"
        return f"tiered+{base}{sep}{extra}"
