"""``repro.store``: the pluggable blob-storage substrate.

Every durable artifact the pipeline produces — serialized run results,
packed traces, derived-column sidecars — is a *blob* addressed by a
content-derived key (``results/<digest>.json``, ``traces/<digest>.bin``).
This package defines the one narrow interface the caches talk to
(:class:`BlobStore`) and its two backends:

* :class:`FsStore` — the on-disk layout the repository has always used,
  bit-compatible with existing ``REPRO_CACHE_DIR`` /
  ``REPRO_TRACE_CACHE_DIR`` trees (two-hex-char fan-out directories,
  ``quarantine/`` beside each root, crash-atomic fsync'd writes);
* :class:`HttpStore` — a client for the blob endpoints of a running
  ``repro serve`` instance, so one service is a whole fleet's shared
  warm cache with zero new dependencies (hardened with seeded retries,
  configurable timeouts, and a trip-open/half-open circuit breaker);
* :class:`TieredStore` — a local :class:`FsStore` write-through tier in
  front of any remote store, so workers keep serving (and spool their
  writes) while the coordinator is down and re-warm cheaply after.

Selection is by URL: ``file:///path`` (or a bare path) names an
:class:`FsStore`, ``http://host:port`` an :class:`HttpStore`, and
``tiered+http://host:port?local=DIR`` a :class:`TieredStore`.
:func:`configure_store` installs a process-wide choice (exported through
``REPRO_STORE`` so pool workers inherit it); :func:`get_store` is what
the caches consult.  See docs/distributed.md.
"""

from repro.store.base import (
    NAMESPACE_RESULTS,
    NAMESPACE_TRACES,
    BlobStat,
    BlobStore,
    StoreError,
    split_key,
    validate_key,
)
from repro.store.config import (
    configure_store,
    get_store,
    parse_store_url,
    store_url,
)
from repro.store.fs import FsStore, default_result_root, default_trace_root
from repro.store.http import HttpStore, StoreUnavailableError
from repro.store.tiered import TieredStore

__all__ = [
    "BlobStat",
    "BlobStore",
    "FsStore",
    "HttpStore",
    "NAMESPACE_RESULTS",
    "NAMESPACE_TRACES",
    "StoreError",
    "StoreUnavailableError",
    "TieredStore",
    "configure_store",
    "default_result_root",
    "default_trace_root",
    "get_store",
    "parse_store_url",
    "split_key",
    "store_url",
    "validate_key",
]
