"""The :class:`BlobStore` interface: what a storage backend must provide.

A *key* is ``<namespace>/<name>`` — the namespace groups one artifact
family (``results``, ``traces``), the name is a content-derived file
name whose first two hex characters drive the on-disk fan-out.  Keys
are the whole addressing model: backends never see :class:`RunSpec` or
trace recipes, and the caches never see paths or URLs.

The contract every backend honours (pinned by ``tests/store``):

* ``put`` is **atomic and durable** — a reader (local or remote,
  concurrent or after a crash) sees either the complete old bytes or
  the complete new bytes, never a prefix;
* ``get`` of an absent key is ``None``, not an exception — corruption
  is the *caller's* judgement (only the cache knows how a result or
  trace must parse), and :meth:`BlobStore.quarantine` is how the caller
  retires a blob it judged damaged, preserving the evidence;
* the integrity surface (``orphans`` / ``quarantine_inventory`` /
  ``structural_check`` / ``gc_log``) lets ``repro doctor`` audit and
  garbage-collect any backend identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.common.errors import ReproError

#: The artifact families the pipeline stores today.
NAMESPACE_RESULTS = "results"
NAMESPACE_TRACES = "traces"


class StoreError(ReproError):
    """A storage-backend failure (bad key, unreachable remote, ...)."""


@dataclass(frozen=True)
class BlobStat:
    """What ``stat`` reports about one blob."""

    size: int
    mtime: float


def validate_key(key: str) -> str:
    """Reject keys that could escape a backend's root; returns the key.

    Keys are ``namespace/name`` with both parts drawn from a tight
    filename alphabet — never absolute, never ``..``, never empty.
    """
    if not isinstance(key, str) or not key:
        raise StoreError(f"blob key must be a non-empty string, got {key!r}")
    parts = key.split("/")
    if len(parts) != 2:
        raise StoreError(
            f"blob key must be 'namespace/name', got {key!r}")
    for part in parts:
        if not part or part in (".", "..") or part.startswith("."):
            raise StoreError(f"invalid blob key component in {key!r}")
        if not all(ch.isalnum() or ch in "._-+" for ch in part):
            raise StoreError(f"invalid character in blob key {key!r}")
    return key


def split_key(key: str):
    """``(namespace, name)`` of a validated key."""
    namespace, _, name = validate_key(key).partition("/")
    return namespace, name


class BlobStore:
    """Abstract content-addressed blob storage (see module docstring)."""

    # -- blob data -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The blob's bytes, or ``None`` if absent."""
        raise NotImplementedError

    def put(self, key: str, data: Union[str, bytes]) -> None:
        """Atomically and durably install ``data`` at ``key``."""
        raise NotImplementedError

    def put_blob(self, key: str, writer: Callable) -> None:
        """Like :meth:`put` with a streaming writer ``writer(fh)`` that
        writes the payload to a binary file object."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove one blob; ``False`` if it was already absent."""
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        """Sorted payload keys starting with ``prefix`` (quarantined and
        temporary files are never listed)."""
        raise NotImplementedError

    def stat(self, key: str) -> Optional[BlobStat]:
        """Size and mtime of one blob, or ``None`` if absent."""
        raise NotImplementedError

    # -- local fast path -----------------------------------------------------

    def local_path(self, key: str):
        """The blob's filesystem path when the backend is local (enables
        mmap loads and in-place fault injection); ``None`` otherwise."""
        return None

    # -- health --------------------------------------------------------------

    def probe(self):
        """Cheap reachability check: ``(ok, detail)``.

        Local backends are trivially reachable; remote ones perform one
        unretried liveness round trip.  ``repro doctor`` puts the answer
        on its summary line instead of discovering unreachability as a
        traceback three audits in.
        """
        return True, "local store"

    # -- tiering -------------------------------------------------------------

    def spooled_keys(self) -> List[str]:
        """Keys accepted locally but not yet flushed to a backing tier.

        Only :class:`~repro.store.tiered.TieredStore` ever reports any;
        eviction (``doctor --prune-to-size`` and the tier budget) must
        treat these as un-evictable — they are the sole copy.
        """
        return []

    # -- integrity / quarantine (the doctor surface) -------------------------

    def quarantine(self, key: str, reason: str) -> Optional[str]:
        """Retire a blob the caller judged corrupt; never deletes it.

        Returns the name the blob was preserved under, or ``None`` if
        it could not be moved (the original stays put — losing evidence
        is worse than re-detecting corruption on the next read).
        """
        raise NotImplementedError

    def quarantine_inventory(self, namespace: str) -> Dict:
        """``{"files": [names], "manifest": [entries]}`` for one
        namespace's quarantine."""
        raise NotImplementedError

    def orphans(self, namespace: str) -> List[str]:
        """Leftover temporary-file names from interrupted writers."""
        raise NotImplementedError

    def remove_orphan(self, namespace: str, name: str) -> bool:
        """Delete one orphaned temp file reported by :meth:`orphans`."""
        raise NotImplementedError

    def structural_check(self, namespace: str, fix: bool = False) -> List[str]:
        """Backend-specific layout problems (e.g. a blob filed in the
        wrong fan-out directory).  With ``fix`` the backend quarantines
        the offenders; either way the problem lines are returned."""
        return []

    # -- garbage collection --------------------------------------------------

    def gc_log(self, namespace: str, entry: Dict) -> None:
        """Durably append one eviction record to the namespace's GC
        manifest (called *before* the delete)."""
        raise NotImplementedError

    def gc_manifest(self, namespace: str) -> List[Dict]:
        """Parsed GC manifest entries (empty when nothing was pruned)."""
        raise NotImplementedError

    # -- identity ------------------------------------------------------------

    def url(self) -> str:
        """The canonical URL that reconstructs this store
        (``file://...`` or ``http://...``)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.url()!r})"
