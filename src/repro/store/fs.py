"""``FsStore``: the filesystem blob store (today's cache layout, verbatim).

Bit-compatibility is the point: an ``FsStore`` pointed at an existing
``REPRO_CACHE_DIR`` tree serves and extends it unchanged —

* ``results/<digest>.json``  ->  ``<root>/<digest[:2]>/<digest>.json``
* ``traces/<digest>.bin``    ->  ``<trace root>/<digest[:2]>/<digest>.bin``
  (``$REPRO_TRACE_CACHE_DIR`` if set, else ``traces/`` under the root,
  exactly as before)

with the same crash-atomic fsync'd writes
(:func:`repro.resilience.storage.durable_replace`), the same
``quarantine/`` + ``MANIFEST.jsonl`` evidence trail, and the same
``GC_MANIFEST.jsonl`` eviction log ``repro doctor`` has always used.
Any other namespace maps to ``<root>/<namespace>/``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.resilience.storage import (
    QUARANTINE_DIRNAME,
    durable_replace,
    quarantine_dir,
    quarantine_file,
    read_quarantine_manifest,
)
from repro.store.base import (
    NAMESPACE_RESULTS,
    NAMESPACE_TRACES,
    BlobStat,
    BlobStore,
    split_key,
)

GC_MANIFEST_NAME = "GC_MANIFEST.jsonl"


def default_result_root() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


def default_trace_root(result_root: Optional[Path] = None) -> Path:
    """``$REPRO_TRACE_CACHE_DIR``, else ``traces/`` under the result root."""
    env = os.environ.get("REPRO_TRACE_CACHE_DIR", "")
    if env:
        return Path(env)
    root = result_root if result_root is not None else default_result_root()
    return Path(root) / "traces"


def _is_under(path: Path, ancestor: Path) -> bool:
    try:
        path.relative_to(ancestor)
    except ValueError:
        return False
    return True


class FsStore(BlobStore):
    """Blob storage over a local directory tree (see module docstring).

    ``root`` holds the ``results`` namespace (and any future ones);
    ``trace_root`` holds ``traces`` and defaults to the historical
    location so existing trees keep working.
    """

    def __init__(self, root=None, trace_root=None):
        self.root = Path(root) if root is not None else default_result_root()
        self.trace_root = (Path(trace_root) if trace_root is not None
                           else default_trace_root(self.root))

    # -- key -> path ---------------------------------------------------------

    def namespace_root(self, namespace: str) -> Path:
        if namespace == NAMESPACE_RESULTS:
            return self.root
        if namespace == NAMESPACE_TRACES:
            return self.trace_root
        return self.root / namespace

    def local_path(self, key: str) -> Path:
        namespace, name = split_key(key)
        return self.namespace_root(namespace) / name[:2] / name

    # -- blob data -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self.local_path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, data: Union[str, bytes]) -> None:
        durable_replace(self.local_path(key), data,
                        binary=isinstance(data, bytes))

    def put_blob(self, key: str, writer: Callable) -> None:
        durable_replace(self.local_path(key), writer, binary=True)

    def delete(self, key: str) -> bool:
        path = self.local_path(key)
        try:
            path.unlink()
        except OSError:
            return False
        try:
            path.parent.rmdir()  # only succeeds once the fan-out dir empties
        except OSError:
            pass
        return True

    def stat(self, key: str) -> Optional[BlobStat]:
        try:
            st = self.local_path(key).stat()
        except OSError:
            return None
        return BlobStat(size=st.st_size, mtime=st.st_mtime)

    def list(self, prefix: str = "") -> List[str]:
        keys: List[str] = []
        for namespace in self._namespaces(prefix):
            nsroot = self.namespace_root(namespace)
            if not nsroot.is_dir():
                continue
            skip = (self.trace_root if namespace == NAMESPACE_RESULTS
                    and _is_under(self.trace_root, self.root) else None)
            for child in sorted(nsroot.iterdir()):
                if not child.is_dir() or child.name == QUARANTINE_DIRNAME:
                    continue
                if skip is not None and _is_under(child, skip):
                    continue
                for path in sorted(child.iterdir()):
                    if not path.is_file() or path.name.endswith(".tmp"):
                        continue
                    key = f"{namespace}/{path.name}"
                    if key.startswith(prefix):
                        keys.append(key)
        return keys

    def _namespaces(self, prefix: str) -> List[str]:
        known = [NAMESPACE_RESULTS, NAMESPACE_TRACES]
        if not prefix:
            return known
        head = prefix.split("/", 1)[0]
        return [ns for ns in known if ns.startswith(head)]

    # -- integrity / quarantine ----------------------------------------------

    def quarantine(self, key: str, reason: str) -> Optional[str]:
        namespace, _ = split_key(key)
        moved = quarantine_file(self.namespace_root(namespace),
                                self.local_path(key), reason)
        return moved.name if moved is not None else None

    def quarantine_inventory(self, namespace: str) -> Dict:
        nsroot = self.namespace_root(namespace)
        qdir = quarantine_dir(nsroot)
        files = ([p.name for p in sorted(qdir.iterdir())
                  if p.is_file() and p.name != "MANIFEST.jsonl"]
                 if qdir.is_dir() else [])
        return {"files": files,
                "manifest": read_quarantine_manifest(nsroot)}

    def orphans(self, namespace: str) -> List[str]:
        nsroot = self.namespace_root(namespace)
        if not nsroot.is_dir():
            return []
        skip = (self.trace_root if namespace == NAMESPACE_RESULTS
                and _is_under(self.trace_root, nsroot) else None)
        found = []
        for path in nsroot.rglob("*.tmp"):
            if QUARANTINE_DIRNAME in path.parts:
                continue
            if skip is not None and _is_under(path, skip):
                continue
            found.append(str(path.relative_to(nsroot)))
        return sorted(found)

    def remove_orphan(self, namespace: str, name: str) -> bool:
        nsroot = self.namespace_root(namespace)
        path = (nsroot / name).resolve()
        if not _is_under(path, nsroot.resolve()) or not name.endswith(".tmp"):
            return False
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def structural_check(self, namespace: str, fix: bool = False) -> List[str]:
        """Blobs filed in a fan-out directory other than ``name[:2]``."""
        nsroot = self.namespace_root(namespace)
        problems: List[str] = []
        if not nsroot.is_dir():
            return problems
        skip = (self.trace_root if namespace == NAMESPACE_RESULTS
                and _is_under(self.trace_root, nsroot) else None)
        for child in sorted(nsroot.iterdir()):
            if not child.is_dir() or child.name == QUARANTINE_DIRNAME:
                continue
            if skip is not None and _is_under(child, skip):
                continue
            for path in sorted(child.iterdir()):
                if not path.is_file() or path.name.endswith(".tmp"):
                    continue
                if child.name == path.name[:2]:
                    continue
                problem = (f"{path.name}: fan-out directory does not match "
                           "digest prefix")
                if fix:
                    moved = quarantine_file(nsroot, path, problem)
                    problem += (" -> quarantined" if moved
                                else " (quarantine FAILED)")
                problems.append(problem)
        return problems

    # -- garbage collection --------------------------------------------------

    def gc_log(self, namespace: str, entry: Dict) -> None:
        manifest = self.namespace_root(namespace) / GC_MANIFEST_NAME
        manifest.parent.mkdir(parents=True, exist_ok=True)
        with open(manifest, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def gc_manifest(self, namespace: str) -> List[Dict]:
        entries: List[Dict] = []
        try:
            fh = open(self.namespace_root(namespace) / GC_MANIFEST_NAME,
                      encoding="utf-8")
        except OSError:
            return entries
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue  # torn tail from a crash mid-append
        return entries

    # -- identity ------------------------------------------------------------

    def url(self) -> str:
        return f"file://{self.root}"
