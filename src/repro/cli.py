"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      the 28 bundled workload profiles with their paper metadata
``run``       simulate one workload under one protocol, print the summary
``compare``   one workload under all four protocols, side by side
``report``    regenerate the full evaluation (all tables and figures)
``bench``     time cold/warm sweeps + the hot path; write BENCH_protozoa.json
``verify``    the paper's random protocol tester with full checking
``check``     bounded-exhaustive model checking + differential verification
``trace``     dump a workload's synthetic trace to a file (replayable)
``replay``    run a saved trace file under a chosen protocol
``events``    trace per-transaction coherence events (repro.obs) and
              dump/filter/summarize them
``chaos``     run a sweep under an injected fault plan (repro.resilience)
              and assert results stay bit-identical to a fault-free run
``doctor``    audit result/trace cache integrity (checksums, format
              versions, orphaned temp files, quarantine inventory) and
              optionally GC entries older than ``--prune-older-than``
``serve``     run the multi-tenant sweep service: HTTP/JSON-RPC front
              end + durable job queue over the engine (docs/service.md)
``submit``    submit a sweep to a running service (optionally wait for
              and save the result matrix)
``jobs``      list/inspect/cancel jobs on a running service

Every subcommand shares one option vocabulary (``--jobs``, ``--seed``,
``--protocol``, ``--store``, ``--trace-dir``) via a common parent
parser, so flags mean the same thing everywhere.  ``report`` and
``bench`` run through the parallel experiment engine: ``REPRO_JOBS``
sizes the worker pool and ``--store`` / ``REPRO_STORE`` names the blob
store holding the result and trace caches — ``file:///path`` (or a bare
path) for a local tree, ``http://host:port`` for a running ``repro
serve`` shared by a fleet (docs/distributed.md).  The older
``REPRO_CACHE_DIR`` / ``REPRO_TRACE_CACHE_DIR`` variables and
``--trace-dir`` remain as deprecated aliases locating the default
``file://`` store.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.params import (
    L1Organization,
    PredictorKind,
    ProtocolKind,
    SystemConfig,
)
from repro.system.machine import simulate
from repro.trace.workloads import WORKLOADS, build_streams


def _protocol(name: str) -> ProtocolKind:
    from repro.api import parse_protocol

    try:
        return parse_protocol(name)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _config(args, protocol: ProtocolKind) -> SystemConfig:
    return SystemConfig(
        protocol=protocol,
        cores=args.cores,
        predictor=PredictorKind(args.predictor),
        l1_organization=L1Organization(args.substrate),
        three_hop=args.three_hop,
    )


def _common_parent() -> argparse.ArgumentParser:
    """The option vocabulary every subcommand shares.

    One parent parser keeps ``--jobs/--seed/--protocol/--trace-dir``
    spelled, typed, and documented identically across subcommands;
    per-command defaults come from ``set_defaults`` on the subparser
    (e.g. ``run`` defaults ``--protocol`` to ``mw``, ``verify`` to all).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=0,
                        help="worker processes for engine-backed work "
                             "(overrides REPRO_JOBS; default: REPRO_JOBS "
                             "or all cores)")
    parent.add_argument("--seed", type=int, default=0,
                        help="trace-generation seed (default 0)")
    parent.add_argument("--protocol", default="",
                        help="protocol: mesi, sw, sw+mr, mw "
                             "(commands choose their own default)")
    parent.add_argument("--store", default="",
                        help="blob store for result/trace caches: "
                             "file:///path, a bare path, http://host:port "
                             "of a running 'repro serve' (?timeout=SECONDS "
                             "accepted), or tiered+http://host:port?local=DIR"
                             "[&budget=BYTES] for an outage-tolerant local "
                             "tier (overrides REPRO_STORE; supersedes the "
                             "deprecated REPRO_CACHE_DIR/"
                             "REPRO_TRACE_CACHE_DIR)")
    parent.add_argument("--trace-dir", default="",
                        help="packed trace cache directory "
                             "(overrides REPRO_TRACE_CACHE_DIR; deprecated "
                             "in favour of --store)")
    parent.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="batched packed-trace execution (--no-batch "
                             "forces the scalar issue loop; default: "
                             "$REPRO_BATCH, on when unset)")
    return parent


def _apply_common(args) -> Optional[int]:
    """Resolve the shared flags into process state.

    ``--jobs`` and ``--trace-dir`` are exported through the environment so
    every engine this process creates — and every pool worker it forks —
    agrees on the worker count and trace cache location.  Returns the
    explicit job count, if one was given.
    """
    if getattr(args, "store", ""):
        from repro.store import StoreError, configure_store

        try:
            # Exported as REPRO_STORE so engines and pool workers agree.
            configure_store(args.store)
        except StoreError as exc:
            raise SystemExit(f"--store: {exc}")
    if getattr(args, "trace_dir", ""):
        os.environ["REPRO_TRACE_CACHE_DIR"] = args.trace_dir
    batch = getattr(args, "batch", None)
    if batch is not None:
        # Exported rather than threaded through call signatures so the
        # choice reaches every engine and forked pool worker identically.
        os.environ["REPRO_BATCH"] = "1" if batch else "0"
    jobs = getattr(args, "jobs", 0)
    if jobs and jobs > 0:
        os.environ["REPRO_JOBS"] = str(jobs)
        return jobs
    return None


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--scale", type=int, default=2000,
                        help="accesses per core (default 2000)")
    parser.add_argument("--predictor", default="pc-history",
                        choices=[p.value for p in PredictorKind])
    parser.add_argument("--substrate", default="amoeba",
                        choices=[o.value for o in L1Organization])
    parser.add_argument("--three-hop", action="store_true",
                        help="enable direct owner-to-requester forwarding")


def _print_summary(result) -> None:
    stats = result.stats
    split = result.traffic_split()
    print(f"workload:        {result.name}")
    print(f"protocol:        {result.protocol_name}")
    print(f"instructions:    {stats.instructions}")
    print(f"accesses:        {stats.accesses} "
          f"({stats.reads} loads, {stats.writes} stores)")
    print(f"misses:          {stats.misses}  (MPKI {result.mpki():.2f})")
    print(f"invalidations:   {stats.invalidations_sent}  "
          f"(NACKs {stats.nacks}, ACK-S {stats.ack_s})")
    print(f"traffic:         {result.traffic_bytes()} B  "
          f"(used {split['used']}, unused {split['unused']}, "
          f"control {split['control']})")
    print(f"USED fraction:   {result.used_fraction():.1%}")
    print(f"flit-hops:       {result.flit_hops()}")
    print(f"exec cycles:     {result.exec_cycles()}")


def cmd_list(args) -> int:
    print(f"{'name':>18} {'suite':>10} {'paper-opt':>9} {'paper-USED%':>11} "
          f"{'false-sharing':>13}")
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        print(f"{name:>18} {spec.suite:>10} {spec.paper_optimal:>9} "
              f"{spec.paper_used_pct:>10}% "
              f"{'yes' if spec.falsely_shares else '':>13}")
    return 0


def cmd_run(args) -> int:
    from repro.trace._cache import packed_streams

    _apply_common(args)
    protocol = _protocol(args.protocol)
    # The packed trace cache makes repeat runs of the same recipe replay a
    # prebuilt columnar trace instead of re-driving the generators.
    streams = packed_streams(args.workload, cores=args.cores,
                             per_core=args.scale, seed=args.seed)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = simulate(streams, _config(args, protocol), name=args.workload)
        profiler.disable()
        _print_summary(result)
        print("\ntop-20 functions by cumulative time:")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        result = simulate(streams, _config(args, protocol), name=args.workload)
        _print_summary(result)
    return 0


def cmd_compare(args) -> int:
    print(f"{args.workload}: {args.cores} cores x {args.scale} accesses\n")
    print(f"{'protocol':>9} {'mpki':>8} {'traffic(B)':>11} {'used%':>7} "
          f"{'flit-hops':>10} {'exec':>10}")
    for protocol in ProtocolKind:
        streams = build_streams(args.workload, cores=args.cores,
                                per_core=args.scale, seed=args.seed)
        result = simulate(streams, _config(args, protocol), name=args.workload)
        print(f"{protocol.short_name:>9} {result.mpki():>8.2f} "
              f"{result.traffic_bytes():>11} "
              f"{100 * result.used_fraction():>6.1f}% "
              f"{result.flit_hops():>10} {result.exec_cycles():>10}")
    return 0


def _resolve_journal(args) -> Optional["SweepJournal"]:
    """The sweep journal for ``--journal``/``--resume`` (None when unused).

    ``--resume`` without an explicit path uses the default journal beside
    the result cache; a journal is opened (and appended to) whenever
    either flag is given.
    """
    from repro.resilience.journal import SweepJournal

    path = getattr(args, "journal", "")
    if not path and getattr(args, "resume", False):
        from repro.experiments._engine import default_cache_dir

        path = str(default_cache_dir() / "journal.jsonl")
    if not path:
        return None
    journal = SweepJournal(path)
    if getattr(args, "resume", False) and len(journal):
        print(f"resuming: {len(journal)} run(s) already journaled at {path}",
              file=sys.stderr)
    return journal


def cmd_report(args) -> int:
    from repro.experiments._engine import ExperimentEngine
    from repro.experiments.report import write_report
    from repro.experiments.runner import (
        ExperimentSettings,
        ResultMatrix,
        default_settings,
    )

    from repro.resilience.lease import LeaseBoard, lease_dir_for

    jobs = _apply_common(args)
    settings = ExperimentSettings(cores=args.cores, per_core=args.scale,
                                  seed=args.seed,
                                  workloads=default_settings().workloads)
    journal = _resolve_journal(args)
    # A journal makes the sweep shareable: concurrent `repro report
    # --journal <same path>` processes lease specs from a claim
    # directory beside the journal and divide the matrix between them
    # (docs/distributed.md).  Single-process runs pay one tiny claim
    # file per spec for the same bytes.
    lease = (LeaseBoard(lease_dir_for(journal.path))
             if journal is not None else None)
    engine = ExperimentEngine(jobs=jobs, journal=journal) if jobs \
        else ExperimentEngine(journal=journal)
    engine.lease = lease
    try:
        matrix = ResultMatrix(settings, engine=engine)
        if args.out:
            with open(args.out, "w") as fh:
                write_report(matrix, out=fh)
            print(f"report written to {args.out}")
        else:
            write_report(matrix)
        if lease is not None:
            print(f"sweep shared via {journal.path}: "
                  f"{engine.executed} run(s) computed here, "
                  f"{engine.absorbed} absorbed from other workers, "
                  f"{lease.takeovers} lease takeover(s)",
                  file=sys.stderr)
    finally:
        if lease is not None:
            lease.release_all()
        engine.close()
        if journal is not None:
            journal.close()
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.bench import render, run_bench

    jobs = _apply_common(args)
    report = run_bench(quick=args.quick, jobs=jobs,
                       out_path=args.out,
                       record_baseline=args.record_baseline,
                       journal_path=args.journal or None,
                       resume=args.resume)
    print(render(report))
    print(f"\nbench report written to {args.out}")
    if args.assert_warm:
        sweep = report["sweep"]
        if not sweep["warm_all_hits"]:
            print("FAIL: warm sweep was not 100% cache hits "
                  f"({sweep['warm_cache_hits']} hits, "
                  f"{sweep['warm_simulated']} simulated)")
            return 1
        # With a real worker pool, fan-out losing to serial is a
        # regression (the PR-2 0.9x slip) — fail loudly.
        if (sweep["parallel_jobs"] > 1
                and sweep["parallel_speedup"] < args.min_parallel_speedup):
            print(f"FAIL: parallel cold sweep speedup "
                  f"{sweep['parallel_speedup']}x with "
                  f"{sweep['parallel_jobs']} jobs (required >= "
                  f"{args.min_parallel_speedup}x)")
            return 1
        obs = report.get("obs_overhead", {})
        if obs.get("disabled_is_noop") is False:
            print("FAIL: a run without REPRO_OBS still produced obs "
                  "artifacts (hooks are not zero-cost-off)")
            return 1
        if obs.get("counters_identical") is False:
            print("FAIL: enabling observability changed simulation "
                  "counters (tracing must be side-effect free)")
            return 1
    if args.assert_batch_identical:
        batch = report.get("batch", {})
        identical = batch.get("identical", {})
        wrong = sorted(name for name, ok in identical.items() if not ok)
        if not identical or wrong:
            print("FAIL: batched execution diverged from scalar for "
                  f"{', '.join(wrong) if wrong else 'every protocol'} "
                  "(counters must be bit-identical)")
            return 1
        batch_obs = report.get("obs_overhead", {}).get("batch_obs", {})
        wrong = sorted(name for name, ok
                       in batch_obs.get("identical", {}).items() if not ok)
        if wrong:
            print("FAIL: batched execution with observability diverged "
                  f"from the scalar obs path for {', '.join(wrong)} "
                  "(stats and metric dumps must be byte-identical)")
            return 1
    if args.assert_obs_overhead is not None:
        obs = report.get("obs_overhead", {})
        overhead = obs.get("overhead_pct")
        if overhead is None or overhead >= args.assert_obs_overhead:
            print(f"FAIL: enabled-observability overhead "
                  f"{overhead if overhead is not None else 'unmeasured'}% "
                  f"(required < {args.assert_obs_overhead}%)")
            return 1
        if obs.get("counters_identical") is False \
                or obs.get("disabled_is_noop") is False:
            print("FAIL: obs overhead asserted but the parity guarantees "
                  "do not hold (counters_identical/disabled_is_noop)")
            return 1
    return 0


def cmd_verify(args) -> int:
    from repro.verification.random_tester import RandomTester

    kinds = ([_protocol(args.protocol)] if args.protocol else list(ProtocolKind))
    for kind in kinds:
        config = SystemConfig(protocol=kind, cores=args.cores,
                              three_hop=args.three_hop,
                              l1_organization=L1Organization(args.substrate),
                              predictor=PredictorKind(args.predictor))
        for seed in range(args.seed, args.seed + args.seeds):
            tester = RandomTester(config, regions=args.regions, seed=seed,
                                  write_frac=args.write_frac,
                                  max_span_words=args.max_span,
                                  same_set=args.same_set,
                                  check_every=args.check_every)
            report = tester.run(args.accesses)
            print(f"{kind.short_name:>6} seed {seed}: OK  {report.coverage()}")
    return 0


def cmd_check(args) -> int:
    import sys as _sys

    from repro.modelcheck.runner import run_check

    if args.replay:
        return _replay_counterexample(args.replay)
    kinds = [_protocol(args.protocol)] if args.protocol else None
    report = run_check(kinds, cores=args.cores, regions=args.regions,
                       depth=args.depth, pressure_regions=args.pressure,
                       mode=args.mode, mutant_depth=args.mutant_depth)
    report.render(_sys.stdout)
    if args.save:
        traces = (report.shrunk
                  or [m.shrunk for m in report.mutant_results if m.shrunk])
        if traces:
            with open(args.save, "w") as fh:
                traces[0].save(fh)
            print(f"shrunk counterexample written to {args.save}")
    return 0 if report.ok else 1


def _replay_counterexample(path: str) -> int:
    """Re-run a saved shrunk trace and confirm the recorded failure fires."""
    from repro.common.errors import ReproError
    from repro.modelcheck.explorer import modelcheck_config
    from repro.modelcheck.mutants import build_mutant
    from repro.modelcheck.ops import format_trace, read_trace
    from repro.system.machine import build_protocol

    with open(path) as fh:
        meta, ops = read_trace(fh)
    name = meta.get("protocol", "mesi")
    try:
        kind = ProtocolKind(name)  # traces record the full enum value
    except ValueError:
        kind = _protocol(name)
    config = modelcheck_config(kind, cores=int(meta.get("cores", "2")))
    mutant = meta.get("mutant", "")
    protocol = build_mutant(mutant, config) if mutant else build_protocol(config)
    source = f"{kind.value} + mutant {mutant}" if mutant else kind.value
    print(f"replaying {len(ops)} ops on {source}:")
    print(format_trace(ops))
    try:
        for op in ops:
            op.apply(protocol)
            protocol.check_all_invariants()
        protocol.check_all_invariants()
    except ReproError as exc:
        print(f"reproduced: {type(exc).__name__}: {exc}")
        return 0
    print("trace completed without a violation — nothing reproduced")
    return 1


def cmd_inspect(args) -> int:
    from repro.trace.analysis import profile_workload

    print(f"{'workload':>18} {'wr%':>5} {'regions':>8} {'density':>8} "
          f"{'private':>8} {'rd-shr':>7} {'true-shr':>9} {'false-shr':>10}")
    names = [args.workload] if args.workload else sorted(WORKLOADS)
    for name in names:
        p = profile_workload(name, cores=args.cores, per_core=args.scale,
                             seed=args.seed)
        s = p.summary()
        print(f"{name:>18} {100 * s['write_frac']:>4.0f}% {s['regions']:>8} "
              f"{s['density_words']:>8.2f} {s['private']:>8.2f} "
              f"{s['read_shared']:>7.2f} {s['true_shared']:>9.2f} "
              f"{s['false_shared']:>10.2f}")
    return 0


def cmd_trace(args) -> int:
    from repro.trace.io import write_trace

    streams = build_streams(args.workload, cores=args.cores,
                            per_core=args.scale, seed=args.seed)
    with open(args.out, "w") as fh:
        count = write_trace(streams, fh)
    print(f"{count} records ({args.cores} cores) written to {args.out}")
    return 0


def cmd_replay(args) -> int:
    from repro.trace.io import read_trace

    with open(args.trace) as fh:
        streams = read_trace(fh)
    protocol = _protocol(args.protocol)
    config = _config(args, protocol)
    if len(streams) > config.cores:
        raise SystemExit(f"trace has {len(streams)} cores; pass --cores")
    result = simulate(streams, config, name=args.trace)
    _print_summary(result)
    return 0


def cmd_events(args) -> int:
    """Observe one run and dump/filter/summarize its transaction events."""
    import json

    from repro.obs import ObsConfig
    from repro.obs.events import summarize_jsonl
    from repro.trace._cache import packed_streams

    if args.input:
        with open(args.input, encoding="utf-8") as fh:
            summary = summarize_jsonl(fh)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    _apply_common(args)
    protocol = _protocol(args.protocol)
    obs = ObsConfig(enabled=True, ring_size=args.ring,
                    sample_every=args.sample, span_size=args.span)
    streams = packed_streams(args.workload, cores=args.cores,
                             per_core=args.scale, seed=args.seed)
    # Scalar loop, always: this command's product is the per-transaction
    # record stream, which the batch engine deliberately does not emit.
    result = simulate(streams, _config(args, protocol), name=args.workload,
                      obs=obs, batch=False)
    events = result.obs.events
    if args.summary:
        summary = events.summary()
        summary["phase_seconds"] = result.phase_seconds or {}
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    records = events.filtered(
        core=args.core, op=args.op.upper() if args.op else None,
        misses_only=args.misses_only,
        limit=args.limit if args.limit > 0 else None)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            count = events.dump_jsonl(fh, records)
        print(f"{count} events written to {args.out}")
    else:
        events.dump_jsonl(sys.stdout, records)
    return 0


def cmd_chaos(args) -> int:
    """Run a sweep under injected faults; require bit-identical results."""
    from repro.resilience.chaos import render as render_chaos
    from repro.resilience.chaos import run_chaos

    store = getattr(args, "store", "")
    if store:
        # Validate eagerly for an actionable error, but do NOT
        # configure_store: exporting REPRO_STORE would leak the remote
        # into the fault-free baseline phase, which must stay hermetic.
        # run_chaos applies the URL to the faulted phase only.
        from repro.store import StoreError, parse_store_url

        try:
            parse_store_url(store)
        except StoreError as exc:
            raise SystemExit(f"--store: {exc}")
        args.store = ""
    _apply_common(args)
    workloads = ([w.strip() for w in args.workloads.split(",") if w.strip()]
                 if args.workloads else None)
    jobs = args.jobs if args.jobs and args.jobs > 0 else None
    report = run_chaos(
        faults=args.faults,
        seed=args.seed,
        workloads=workloads or ("kmeans", "histogram"),
        cores=args.cores,
        per_core=args.scale,
        jobs=jobs,
        retries=args.retries,
        timeout_s=args.timeout if args.timeout > 0 else None,
        keep=args.keep,
        out=args.out,
        store=store,
    )
    print(render_chaos(report))
    return 0 if report["ok"] else 1


def _parse_size(text: str) -> int:
    """``BYTES`` with an optional K/M/G/T suffix (decimal, e.g. 500M)."""
    raw = text.strip()
    scale = 1
    suffixes = {"K": 10 ** 3, "M": 10 ** 6, "G": 10 ** 9, "T": 10 ** 12}
    if raw and raw[-1].upper() in suffixes:
        scale = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(float(raw) * scale)
    except ValueError:
        raise ValueError(f"bad size {text!r} (use BYTES or e.g. 500M)")
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return value


def cmd_doctor(args) -> int:
    """Audit cache/trace-store integrity; exit nonzero on problems."""
    from pathlib import Path

    from repro.resilience.doctor import run_doctor

    _apply_common(args)
    store = None
    if args.store:
        # Audit through the store interface — same checks, any backend,
        # including a remote `repro serve` (--store http://host:port).
        from repro.store import get_store

        store = get_store()
    try:
        budget = _parse_size(args.prune_to_size) if args.prune_to_size else None
    except ValueError as exc:
        raise SystemExit(f"--prune-to-size: {exc}")
    report = run_doctor(
        result_root=Path(args.cache_dir) if args.cache_dir else None,
        trace_root=Path(args.trace_dir) if args.trace_dir else None,
        fix=args.fix,
        prune_older_than_days=(args.prune_older_than
                               if args.prune_older_than > 0 else None),
        store=store,
        prune_to_size_bytes=budget,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the sweep service until interrupted."""
    from repro.service.app import serve

    jobs = _apply_common(args)
    return serve(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir or None,
        jobs=jobs,
        default_ttl_s=args.ttl if args.ttl > 0 else None,
        quiet=not args.verbose,
    )


def _submit_specs(args) -> List[dict]:
    """The workload x protocol grid of spec payloads a submit describes."""
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    protocols = [p.strip() for p in (args.protocol or "mesi,sw,sw+mr,mw")
                 .split(",") if p.strip()]
    specs = []
    for workload in workloads:
        for name in protocols:
            spec = {
                "workload": workload,
                "protocol": _protocol(name).value,
                "cores": args.cores,
                "per_core": args.scale,
                "seed": args.seed,
            }
            if args.block_bytes > 0:
                spec["block_bytes"] = args.block_bytes
            specs.append(spec)
    return specs


def cmd_submit(args) -> int:
    """Submit a sweep to a running service; optionally wait for results."""
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    specs = _submit_specs(args)
    submitted = client.submit_sweep(
        specs, priority=args.priority,
        ttl_s=args.ttl if args.ttl > 0 else None)
    job_id = submitted["job_id"]
    how = ("served from cache" if submitted["cached"]
           else "deduplicated onto an in-flight job" if submitted["deduped"]
           else "queued")
    print(f"job {job_id}: {submitted['state']} "
          f"({submitted['total']} specs, {how})")
    if not args.wait and not submitted["cached"]:
        return 0
    status = client.wait(job_id, timeout_s=args.timeout, poll_s=args.poll)
    print(f"job {job_id}: done — {status['completed']}/{status['total']} "
          f"specs, {status['executed']} executed, "
          f"{status['cache_hits']} cache hits")
    if args.out:
        payload = client.job_result(job_id)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        print(f"result matrix written to {args.out}")
    return 0


def cmd_jobs(args) -> int:
    """List, inspect, or cancel jobs on a running service."""
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.cancel:
        record = client.cancel(args.cancel)
        print(f"job {record['id']}: {record['state']}")
        return 0
    if args.result:
        payload = client.job_result(args.result)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            print(f"result matrix written to {args.out}")
        else:
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        return 0
    if args.job:
        print(json.dumps(client.job_status(args.job), indent=2,
                         sort_keys=True))
        return 0
    jobs = client.list_jobs(state=args.state or None, limit=args.limit)
    print(f"{'id':>16} {'state':>9} {'prio':>4} {'specs':>5} {'done':>5} "
          f"{'hits':>5} {'exec':>5}")
    for job in jobs:
        print(f"{job['id']:>16} {job['state']:>9} {job['priority']:>4} "
              f"{job['total']:>5} {job['completed']:>5} "
              f"{job['cache_hits']:>5} {job['executed']:>5}")
    if not jobs:
        print("(no jobs)")
    return 0


def _add_journal_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--journal", default="",
                        help="record completed runs to this JSONL sweep "
                             "journal (crash-safe; see docs/resilience.md)")
    parser.add_argument("--resume", action="store_true",
                        help="load the journal first and replay only "
                             "uncompleted runs (default journal: "
                             "<cache-dir>/journal.jsonl)")


def build_parser() -> argparse.ArgumentParser:
    from repro._version import package_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Protozoa: adaptive granularity cache coherence (ISCA'13) "
                    "— reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list bundled workloads",
                       parents=[_common_parent()])
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="simulate one workload/protocol",
                       parents=[_common_parent()])
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top-20 functions "
                        "by cumulative time")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_run, protocol="mw")

    p = sub.add_parser("compare", help="one workload under all protocols",
                       parents=[_common_parent()])
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    _add_machine_args(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("report", help="regenerate every table/figure",
                       parents=[_common_parent()])
    p.add_argument("--out", default="")
    _add_journal_args(p)
    _add_machine_args(p)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("bench",
                       help="time cold/warm sweeps and the transaction hot "
                            "path; write BENCH_protozoa.json",
                       parents=[_common_parent()])
    p.add_argument("--quick", action="store_true",
                   help="small matrix for CI smoke runs")
    p.add_argument("--out", default="BENCH_protozoa.json")
    p.add_argument("--assert-warm", action="store_true",
                   help="exit nonzero unless the warm sweep was 100%% cache "
                        "hits, (with >1 job) the parallel cold sweep met "
                        "--min-parallel-speedup, and disabled observability "
                        "was a no-op")
    p.add_argument("--min-parallel-speedup", type=float, default=1.0,
                   help="parallel-vs-serial cold sweep speedup --assert-warm "
                        "requires when jobs > 1 (default 1.0)")
    p.add_argument("--assert-batch-identical", action="store_true",
                   help="exit nonzero unless batched and scalar execution "
                        "produced bit-identical counters for every protocol "
                        "(with and without observability attached)")
    p.add_argument("--assert-obs-overhead", type=float, default=None,
                   metavar="PCT",
                   help="exit nonzero unless the measured enabled-vs-"
                        "disabled observability overhead is below PCT "
                        "percent (and the parity guarantees hold)")
    p.add_argument("--record-baseline", action="store_true",
                   help="re-record benchmarks/baseline_protozoa.json from this "
                        "machine's microbenchmark")
    _add_journal_args(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("verify", help="run the random protocol tester",
                       parents=[_common_parent()])
    p.add_argument("--accesses", type=int, default=5000)
    p.add_argument("--regions", type=int, default=8)
    p.add_argument("--same-set", action="store_true",
                   help="force capacity churn (all regions in one L1 set)")
    p.add_argument("--seeds", type=int, default=1,
                   help="sweep this many seeds starting at --seed (default 1)")
    p.add_argument("--write-frac", type=float, default=0.45)
    p.add_argument("--max-span", type=int, default=4,
                   help="largest access span in words (default 4)")
    p.add_argument("--check-every", type=int, default=8,
                   help="invariant-check every N accesses (default 8)")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("check",
                       help="bounded model checking + differential verification",
                       parents=[_common_parent()])
    p.add_argument("--cores", type=int, default=2)
    p.add_argument("--regions", type=int, default=1)
    p.add_argument("--depth", type=int, default=6,
                   help="exhaustive interleaving depth (default 6)")
    p.add_argument("--pressure", type=int, default=1,
                   help="extra read-only regions forcing L1 evictions")
    p.add_argument("--mode", default="all",
                   choices=["all", "explore", "diff", "mutants"])
    p.add_argument("--mutant-depth", type=int, default=4,
                   help="exploration depth for the mutation audit (default 4)")
    p.add_argument("--save", default="",
                   help="write the first shrunk counterexample to this file")
    p.add_argument("--replay", default="",
                   help="replay a saved counterexample trace instead of checking")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("inspect", help="profile workloads' sharing/locality",
                       parents=[_common_parent()])
    p.add_argument("--workload", default="", choices=[""] + sorted(WORKLOADS))
    _add_machine_args(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("trace", help="dump a workload trace to a file",
                       parents=[_common_parent()])
    p.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    p.add_argument("--out", required=True)
    _add_machine_args(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("replay", help="replay a saved trace file",
                       parents=[_common_parent()])
    p.add_argument("--trace", required=True)
    _add_machine_args(p)
    p.set_defaults(fn=cmd_replay, protocol="mw")

    p = sub.add_parser("chaos",
                       help="sweep under an injected fault plan and assert "
                            "bit-identical results (repro.resilience)",
                       parents=[_common_parent()])
    p.add_argument("--faults", default="",
                   help="REPRO_FAULTS-grammar fault plan (default: one of "
                        "every fault kind; see docs/resilience.md)")
    p.add_argument("--workloads", default="",
                   help="comma-separated workload subset "
                        "(default kmeans,histogram)")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--scale", type=int, default=300,
                   help="accesses per core (default 300: chaos runs the "
                        "matrix twice)")
    p.add_argument("--retries", type=int, default=3,
                   help="parallel retry rounds before degrading to serial")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-wait stall deadline in seconds (0: no deadline)")
    p.add_argument("--keep", action="store_true",
                   help="keep the scratch directory (caches, journal, "
                        "quarantine) for inspection")
    p.add_argument("--out", default="",
                   help="write the JSON chaos report here")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("doctor",
                       help="audit result/trace cache integrity "
                            "(entries, temp orphans, quarantine)",
                       parents=[_common_parent()])
    p.add_argument("--cache-dir", default="",
                   help="result cache root to audit "
                        "(default REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--fix", action="store_true",
                   help="remove orphaned temp files and quarantine corrupt "
                        "entries (payloads are never deleted)")
    p.add_argument("--prune-older-than", type=float, default=0.0,
                   metavar="DAYS",
                   help="garbage-collect result/trace cache entries whose "
                        "last write is older than DAYS days (logged to the "
                        "cache's GC manifest; quarantine is never touched)")
    p.add_argument("--prune-to-size", default="", metavar="BYTES",
                   help="evict least-recently-written entries until the "
                        "store fits BYTES (K/M/G/T suffixes accepted); "
                        "manifest-logged before deletion, never touches "
                        "quarantine or spooled unflushed tiered writes")
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser("serve",
                       help="run the sweep service (HTTP/JSON-RPC + durable "
                            "job queue over the experiment engine)",
                       parents=[_common_parent()])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8673,
                   help="TCP port (0 picks an ephemeral port; default 8673)")
    p.add_argument("--state-dir", default="",
                   help="queue/journal/result state directory (default "
                        "REPRO_SERVICE_DIR or <cache-dir>/service)")
    p.add_argument("--ttl", type=float, default=0.0,
                   help="default queued-job TTL in seconds "
                        "(0: the built-in 24h)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a workload x protocol sweep to a "
                            "running service",
                       parents=[_common_parent()])
    p.add_argument("--url", default="http://127.0.0.1:8673",
                   help="service endpoint (default http://127.0.0.1:8673)")
    p.add_argument("--workloads", required=True,
                   help="comma-separated workload names")
    p.add_argument("--cores", type=int, default=16)
    p.add_argument("--scale", type=int, default=2000,
                   help="accesses per core (default 2000)")
    p.add_argument("--block-bytes", type=int, default=0,
                   help="override the MESI block size (default: config)")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority (higher dispatches first)")
    p.add_argument("--ttl", type=float, default=0.0,
                   help="job TTL in seconds (0: service default)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job completes")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait deadline in seconds (default 600)")
    p.add_argument("--poll", type=float, default=0.2,
                   help="--wait poll interval in seconds (default 0.2)")
    p.add_argument("--out", default="",
                   help="write the completed result matrix (JSON) here")
    p.set_defaults(fn=cmd_submit,
                   protocol="")  # empty: all four protocols

    p = sub.add_parser("jobs",
                       help="list, inspect, or cancel jobs on a running "
                            "service",
                       parents=[_common_parent()])
    p.add_argument("--url", default="http://127.0.0.1:8673",
                   help="service endpoint (default http://127.0.0.1:8673)")
    p.add_argument("--state", default="",
                   help="only jobs in this state (queued/running/done/"
                        "failed/cancelled/expired)")
    p.add_argument("--limit", type=int, default=0,
                   help="show at most N jobs, newest first (default: all)")
    p.add_argument("--job", default="", help="print one job's full status")
    p.add_argument("--result", default="",
                   help="print (or --out: save) one job's result matrix")
    p.add_argument("--cancel", default="", help="cancel a queued job")
    p.add_argument("--out", default="",
                   help="write --result output here instead of stdout")
    p.set_defaults(fn=cmd_jobs)

    p = sub.add_parser("events",
                       help="trace per-transaction coherence events and "
                            "dump/filter/summarize them",
                       parents=[_common_parent()])
    p.add_argument("--workload", default="kmeans", choices=sorted(WORKLOADS))
    p.add_argument("--ring", type=int, default=4096,
                   help="event ring-buffer capacity (default 4096; oldest "
                        "events are overwritten beyond it)")
    p.add_argument("--sample", type=int, default=1,
                   help="keep 1-in-N transactions (default 1: all)")
    p.add_argument("--span", type=int, default=1,
                   help="admit sampled transactions in contiguous spans of "
                        "K (default 1: plain every-Nth sampling); kept "
                        "bursts make message sequences readable in context")
    p.add_argument("--core", type=int, default=None,
                   help="only events issued by this core")
    p.add_argument("--op", default=None, choices=["r", "w", "R", "W"],
                   help="only reads (r) or writes (w)")
    p.add_argument("--misses-only", action="store_true",
                   help="drop L1 hits from the dump")
    p.add_argument("--limit", type=int, default=0,
                   help="emit at most N events (default: all retained)")
    p.add_argument("--out", default="",
                   help="write JSONL here instead of stdout")
    p.add_argument("--summary", action="store_true",
                   help="print an aggregate summary instead of events")
    p.add_argument("--input", default="",
                   help="summarize an existing JSONL dump instead of running")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_events, protocol="mw")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
