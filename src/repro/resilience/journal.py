"""The sweep journal: crash-safe record of completed run specs.

One JSONL line per completed :class:`~repro.experiments._engine.RunSpec`
(its digest plus the human-readable payload), appended with
flush+fsync the moment the result lands.  If the sweeping process is
killed — SIGKILL included — the journal survives with at worst one torn
final line, which the loader tolerates; re-running with ``--resume``
loads the completed set so only uncompleted specs replay (their results
are also in the result cache, so the resumed sweep serves them as
hits and the report comes out identical).

The journal is *append-only* and idempotent: recording an
already-recorded digest is a no-op, so resumed sweeps never duplicate
lines.

Several worker processes may append to one journal concurrently (the
multi-host sweep mode in :mod:`repro.experiments._engine` pairs the
journal with a :class:`~repro.resilience.lease.LeaseBoard`): each line
is a single small O_APPEND write, so lines from different workers never
interleave, and :meth:`SweepJournal.refresh` picks up teammates' newly
appended completions by re-reading only the bytes past the last offset
this process consumed — whole lines only, so a torn tail is simply left
for the next refresh.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Set


class SweepJournal:
    """Append-only JSONL journal of completed spec digests."""

    def __init__(self, path):
        self.path = Path(path)
        self._completed: Set[str] = set()
        self._fh = None
        self._offset = 0       # bytes of the file already consumed
        self.recorded = 0      # lines appended by this process
        self.resumed = 0       # digests loaded from a pre-existing file
        self._consume_new()
        self.resumed = len(self._completed)

    def _consume_new(self) -> int:
        """Absorb complete lines appended past our offset; returns how
        many digests were new to this process."""
        try:
            fh = open(self.path, "rb")
        except OSError:
            return 0
        fresh = 0
        with fh:
            fh.seek(self._offset)
            data = fh.read()
        end = data.rfind(b"\n") + 1
        if end == 0:
            return 0  # nothing but a torn tail; retry next refresh
        for line in data[:end].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
                digest = entry["digest"]
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                continue  # damaged line from a killed writer
            if digest not in self._completed:
                self._completed.add(digest)
                fresh += 1
        self._offset += end
        return fresh

    def refresh(self) -> int:
        """Pick up completions other processes appended since the last
        read; returns the number of newly visible digests."""
        return self._consume_new()

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._completed)

    def __contains__(self, digest: str) -> bool:
        return digest in self._completed

    def completed(self) -> FrozenSet[str]:
        return frozenset(self._completed)

    # -- recording -----------------------------------------------------------

    def record(self, digest: str, payload: Optional[Dict] = None) -> bool:
        """Durably append one completion; no-op if already journaled."""
        if digest in self._completed:
            return False
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        entry = {"digest": digest}
        if payload is not None:
            entry["spec"] = payload
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._completed.add(digest)
        self.recorded += 1
        return True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SweepJournal({str(self.path)!r}, completed={len(self)}, "
                f"recorded={self.recorded})")
