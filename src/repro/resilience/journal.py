"""The sweep journal: crash-safe record of completed run specs.

One JSONL line per completed :class:`~repro.experiments._engine.RunSpec`
(its digest plus the human-readable payload), appended with
flush+fsync the moment the result lands.  If the sweeping process is
killed — SIGKILL included — the journal survives with at worst one torn
final line, which the loader tolerates; re-running with ``--resume``
loads the completed set so only uncompleted specs replay (their results
are also in the result cache, so the resumed sweep serves them as
hits and the report comes out identical).

The journal is *append-only* and idempotent: recording an
already-recorded digest is a no-op, so resumed sweeps never duplicate
lines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Set


class SweepJournal:
    """Append-only JSONL journal of completed spec digests."""

    def __init__(self, path):
        self.path = Path(path)
        self._completed: Set[str] = set()
        self._fh = None
        self.recorded = 0      # lines appended by this process
        self.resumed = 0       # digests loaded from a pre-existing file
        self._load()

    def _load(self) -> None:
        try:
            fh = open(self.path, encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    digest = entry["digest"]
                except (ValueError, KeyError, TypeError):
                    continue  # torn final line from a killed writer
                self._completed.add(digest)
        self.resumed = len(self._completed)

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._completed)

    def __contains__(self, digest: str) -> bool:
        return digest in self._completed

    def completed(self) -> FrozenSet[str]:
        return frozenset(self._completed)

    # -- recording -----------------------------------------------------------

    def record(self, digest: str, payload: Optional[Dict] = None) -> bool:
        """Durably append one completion; no-op if already journaled."""
        if digest in self._completed:
            return False
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        entry = {"digest": digest}
        if payload is not None:
            entry["spec"] = payload
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._completed.add(digest)
        self.recorded += 1
        return True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SweepJournal({str(self.path)!r}, completed={len(self)}, "
                f"recorded={self.recorded})")
