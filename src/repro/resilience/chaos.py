"""``repro chaos``: prove the pipeline survives injected faults.

The chaos harness runs the same (workload x protocol) sweep twice into
scratch caches:

1. **fault-free** — ``REPRO_FAULTS`` cleared, the reference matrix;
2. **under a fault plan** — worker kills, transient worker exceptions,
   task stalls, and result/trace blob corruption armed via
   ``REPRO_FAULTS`` (budgets shared across workers through
   ``REPRO_FAULTS_DIR``), with the engine's retry/rebuild/degrade
   machinery doing the surviving.  The faulted sweep runs two passes:
   the cold pass exercises the worker-side faults, the warm pass reads
   the now-populated caches so the corruption faults fire and the
   quarantine->rebuild path runs.

It then asserts the faulted matrix serializes **byte-identical** to the
fault-free one, and audits the faulted caches with the doctor checks so
any corrupt blob that escaped quarantine ("a quarantine leak") fails
the run.  Retry, rebuild, degradation, quarantine, and journal counters
are reported from the engine's ``MetricsRegistry`` and the process-wide
resilience registry.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import process_registry
from repro.resilience.faults import (
    FaultPlan,
    get_injector,
    reset_injector,
)
from repro.resilience.journal import SweepJournal
from repro.resilience.retry import RetryPolicy

#: The default plan: every fault kind the catalogue defines (well past
#: the >=3 kinds ``repro chaos`` is asked to prove survivable).  The
#: network sites are inert unless the sweep talks to a remote store
#: (``run_chaos(store="http://...")`` / ``repro chaos --store``).
#: The network sites are spread (``every=``) so one round trip's retry
#: chain can never eat the whole fault budget back-to-back — the client
#: policy allows 2 retries, so 3 stacked failures would be unsurvivable
#: by construction rather than a real coordinator flap.
DEFAULT_FAULTS = ("worker-kill:n=1;worker-exc:n=2;task-stall:n=1:ms=100;"
                  "cache-corrupt:n=2;trace-corrupt:n=1;"
                  "store-get-error:n=2:every=3;store-put-stall:n=1:ms=50;"
                  "store-conn-refused:n=1:every=5")

CHAOS_WORKLOADS = ("kmeans", "histogram")


def matrix_json(results) -> str:
    """The canonical byte form of a sweep: digest-keyed, sorted, compact."""
    entries = {spec.digest(): result.to_dict()
               for spec, result in results.items()}
    return json.dumps(entries, sort_keys=True, separators=(",", ":"))


def _engine_counters(engine) -> Dict[str, int]:
    merged = dict(engine.metrics.counters())
    for key, value in process_registry().counters().items():
        merged[key] = merged.get(key, 0) + value
    return {key: value for key, value in sorted(merged.items())
            if key.startswith(("repro_engine_", "repro_resilience_"))}


def run_chaos(faults: str = "",
              seed: int = 0,
              workloads: Sequence[str] = CHAOS_WORKLOADS,
              cores: int = 8,
              per_core: int = 300,
              jobs: Optional[int] = None,
              retries: int = 3,
              timeout_s: Optional[float] = None,
              keep: bool = False,
              out: str = "",
              store: str = "") -> Dict:
    """Run the chaos experiment; returns the report dict (``ok`` key).

    With ``store`` set to a store URL (``http://...`` or
    ``tiered+http://...?local=DIR``), the *faulted* sweep's result cache
    runs against that backend, so the network fault sites
    (``store-get-error`` / ``store-put-stall`` / ``store-conn-refused``)
    fire on real round trips while the baseline stays hermetic in the
    scratch tree — proving the report byte-reproduces through a flapping
    coordinator.
    """
    from repro.experiments._engine import (
        ExperimentEngine,
        ResultCache,
        default_jobs,
    )
    from repro.experiments.bench import matrix_specs
    from repro.resilience.doctor import (
        check_result_cache,
        check_result_store,
        check_trace_cache,
    )
    from repro.store import FsStore, parse_store_url

    plan = FaultPlan.parse(faults or DEFAULT_FAULTS).with_seed(seed)
    # Worker-side faults need actual workers.
    jobs = max(2, default_jobs() if jobs is None else jobs)
    specs = matrix_specs(list(workloads), cores=cores, per_core=per_core,
                         seed=seed)

    scratch = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    saved = {name: os.environ.get(name)
             for name in ("REPRO_FAULTS", "REPRO_FAULTS_DIR",
                          "REPRO_TRACE_CACHE_DIR", "REPRO_OBS",
                          "REPRO_STORE_RETRIES", "REPRO_STORE_TIMEOUT",
                          "REPRO_RETRY_SEED")}
    os.environ["REPRO_TRACE_CACHE_DIR"] = str(scratch / "traces")
    os.environ.pop("REPRO_FAULTS", None)
    os.environ.pop("REPRO_FAULTS_DIR", None)
    # Ambient observability would attach wall-clock phase timings to every
    # serialized result and break the byte-identity comparison.
    os.environ.pop("REPRO_OBS", None)
    # Ambient store tuning would change how many injected network faults
    # one round trip can absorb; the rehearsal runs the stock policy.
    os.environ.pop("REPRO_STORE_RETRIES", None)
    os.environ.pop("REPRO_STORE_TIMEOUT", None)
    os.environ.pop("REPRO_RETRY_SEED", None)
    reset_injector()
    try:
        # Phase 1: the fault-free reference sweep.
        with ExperimentEngine(
                jobs=jobs,
                cache=ResultCache(store=FsStore(scratch / "baseline"),
                                  enabled=True)) as engine:
            baseline = matrix_json(engine.run_many(specs))

        # Phase 2: the same sweep under the armed fault plan.
        budget_dir = scratch / "budget"
        os.environ["REPRO_FAULTS"] = plan.to_env()
        os.environ["REPRO_FAULTS_DIR"] = str(budget_dir)
        reset_injector()
        journal = SweepJournal(scratch / "journal.jsonl")
        policy = RetryPolicy(max_retries=retries, backoff_base_s=0.01,
                             timeout_s=timeout_s, seed=seed)
        faulted_store = (parse_store_url(store) if store
                         else FsStore(scratch / "faulted"))
        faulted_cache = ResultCache(store=faulted_store, enabled=True)
        with ExperimentEngine(jobs=jobs, cache=faulted_cache,
                              retry=policy, journal=journal) as engine:
            engine.run_many(specs)          # cold: worker faults fire
            results = engine.run_many(specs)  # warm: corruption faults fire
            counters = _engine_counters(engine)
            degraded = engine.degraded
            pool_rebuilds = engine.pool_rebuilds
            quarantined = faulted_cache.quarantined
        faulted = matrix_json(results)
        journal.close()

        injector = get_injector()
        fired = ({site: injector.tokens_claimed(site)
                  for site in plan.sites} if injector is not None else {})

        # Phase 3: leak audit — every surviving cache entry must be intact
        # (corruption belongs in quarantine, not in the fan-out dirs).
        # An explicit store is audited through the interface (for a
        # tiered store that is its local tier — the side the faulted
        # sweep actually read from).
        audit = ((check_result_store(faulted_store) if store
                  else check_result_cache(scratch / "faulted"))
                 + check_trace_cache(scratch / "traces"))
        leaks: List[str] = [line for check in audit if not check.ok
                            for line in check.details]
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reset_injector()
        if not keep:
            shutil.rmtree(scratch, ignore_errors=True)

    report = {
        "ok": baseline == faulted and not leaks,
        "identical": baseline == faulted,
        "fault_plan": plan.to_env(),
        "store": store,
        "seed": seed,
        "jobs": jobs,
        "cells": len(specs),
        "matrix_bytes": len(baseline),
        "fired": fired,
        "counters": counters,
        "result_blobs_quarantined": quarantined,
        "pool_rebuilds": pool_rebuilds,
        "degraded_to_serial": degraded,
        "quarantine_leaks": leaks,
        "journal": {
            "path": str(scratch / "journal.jsonl") if keep else "",
            "completed": len(journal),
            "recorded": journal.recorded,
        },
        "scratch": str(scratch) if keep else "",
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def render(report: Dict) -> str:
    lines = [
        f"chaos sweep: {report['cells']} cells, {report['jobs']} jobs, "
        f"seed {report['seed']}",
        f"fault plan:  {report['fault_plan']}",
    ]
    if report.get("store"):
        lines.append(f"store:       {report['store']}")
    lines += [
        f"faults fired: " + (", ".join(
            f"{site}={count}" for site, count in sorted(report["fired"].items()))
            or "none"),
    ]
    for key, value in report["counters"].items():
        lines.append(f"  {key} = {value}")
    lines.append(
        f"recovery:    {report['pool_rebuilds']} pool rebuild(s), "
        f"{report['result_blobs_quarantined']} blob(s) quarantined, "
        f"degraded={'yes' if report['degraded_to_serial'] else 'no'}")
    lines.append(
        f"journal:     {report['journal']['completed']} completed spec(s) "
        f"recorded")
    lines.append(
        f"matrix:      {report['matrix_bytes']} bytes, "
        f"bit-identical={'YES' if report['identical'] else 'NO'}")
    if report["quarantine_leaks"]:
        lines.append("quarantine leaks:")
        lines.extend(f"  {leak}" for leak in report["quarantine_leaks"])
    else:
        lines.append("quarantine:  zero leaks (every corrupt blob contained)")
    lines.append(f"chaos: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
