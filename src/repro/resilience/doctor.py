"""``repro doctor``: cache/trace-store integrity audit.

Walks the result cache and the packed trace cache and verifies what the
hot paths assume:

* every ``.json`` result entry parses back into a ``RunResult`` and
  lives in the fan-out directory matching its digest;
* every ``.bin`` packed trace passes the full format check
  (:func:`repro.trace.packed.verify_file`) and its format version is
  current;
* no orphaned ``*.tmp`` files linger from interrupted writers;
* the ``quarantine/`` directories are inventoried (manifest entries vs
  actual files), so quarantined corruption is visible, not forgotten.

Read-only by default; ``--fix`` deletes orphaned temp files and moves
corrupt entries into quarantine (never plain deletion of a payload).
The process exits nonzero when any check fails, which makes the command
usable as a CI/cron health probe.

The audit has two equivalent front doors:

* the historical **path-based** functions (``check_result_cache(root)``,
  ``check_trace_cache(root)``, ``prune_cache(root, ...)``) that walk a
  local directory tree directly;
* the **store-based** functions (``check_result_store(store)``,
  ``check_trace_store(store)``, ``prune_store(store, ...)``) that audit
  through the :class:`repro.store.BlobStore` interface — so ``repro
  doctor --store http://host:port`` inspects, quarantines, and prunes a
  remote shared store with exactly the same checks as a local one.

``--prune-older-than DAYS`` adds garbage collection: cache entries whose
last write is older than the cutoff are evicted so a long-running
service's cache directory stays bounded.  Every eviction is logged to
the cache's ``GC_MANIFEST.jsonl`` (path, mtime, age) *before* the
unlink, so the history of what GC removed survives; the ``quarantine/``
directory is never pruned — quarantined blobs are evidence, and only a
human deletes evidence.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

GC_MANIFEST_NAME = "GC_MANIFEST.jsonl"

from repro.resilience.log import warn as resilience_warn
from repro.resilience.storage import (
    QUARANTINE_DIRNAME,
    quarantine_dir,
    quarantine_file,
    read_quarantine_manifest,
)


@dataclass
class CheckResult:
    """One audit section: a verdict plus its supporting detail lines."""

    name: str
    ok: bool = True
    details: List[str] = field(default_factory=list)

    def fail(self, line: str) -> None:
        self.ok = False
        self.details.append(line)

    def note(self, line: str) -> None:
        self.details.append(line)


@dataclass
class DoctorReport:
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            lines.append(f"[{'PASS' if check.ok else 'FAIL'}] {check.name}")
            lines.extend(f"    {line}" for line in check.details)
        lines.append("")
        probe = next((check for check in self.checks
                      if check.name.endswith(": connectivity")), None)
        tail = ""
        if probe is not None:
            tail = (" (store reachable)" if probe.ok
                    else " (store UNREACHABLE)")
        lines.append("doctor: "
                     f"{'all checks passed' if self.ok else 'PROBLEMS FOUND'}"
                     f"{tail}")
        return "\n".join(lines)


def _payload_files(root: Path, suffix: str) -> List[Path]:
    """Cache entries under the two-hex-char fan-out dirs (not quarantine)."""
    files: List[Path] = []
    if not root.is_dir():
        return files
    for child in sorted(root.iterdir()):
        if not child.is_dir() or child.name == QUARANTINE_DIRNAME:
            continue
        files.extend(sorted(child.glob(f"*{suffix}")))
    return files


def _tmp_files(root: Path, exclude: Optional[Path] = None) -> List[Path]:
    if not root.is_dir():
        return []
    found = (p for p in root.rglob("*.tmp")
             if QUARANTINE_DIRNAME not in p.parts)
    if exclude is not None:
        found = (p for p in found if not _is_under(p, exclude))
    return sorted(found)


def _is_under(path: Path, ancestor: Path) -> bool:
    try:
        path.relative_to(ancestor)
    except ValueError:
        return False
    return True


def _check_orphans(root: Path, label: str, fix: bool,
                   exclude: Optional[Path] = None) -> CheckResult:
    check = CheckResult(f"{label}: orphaned temp files")
    orphans = _tmp_files(root, exclude)
    if not orphans:
        check.note("none")
        return check
    for orphan in orphans:
        if fix:
            try:
                orphan.unlink()
                check.note(f"removed {orphan}")
            except OSError as exc:
                check.fail(f"could not remove {orphan}: {exc}")
        else:
            check.fail(f"{orphan} (interrupted writer; --fix removes it)")
    return check


def _check_quarantine(root: Path, label: str) -> CheckResult:
    check = CheckResult(f"{label}: quarantine inventory")
    qdir = quarantine_dir(root)
    entries = read_quarantine_manifest(root)
    files = ([p for p in sorted(qdir.iterdir())
              if p.is_file() and p.name != "MANIFEST.jsonl"]
             if qdir.is_dir() else [])
    if not files and not entries:
        check.note("empty")
        return check
    check.note(f"{len(files)} quarantined blob(s), "
               f"{len(entries)} manifest entr(ies)")
    manifest_names = {entry.get("file") for entry in entries}
    for path in files:
        reason = next((entry.get("reason", "?") for entry in entries
                       if entry.get("file") == path.name), None)
        if reason is None:
            check.note(f"{path.name}: no manifest entry")
        else:
            check.note(f"{path.name}: {reason}")
    for name in sorted(manifest_names - {p.name for p in files}):
        if name:
            check.note(f"{name}: listed in manifest but blob is gone")
    return check


def check_result_cache(root: Path, fix: bool = False,
                       exclude: Optional[Path] = None) -> List[CheckResult]:
    from repro.system.results import RunResult

    label = f"result cache {root}"
    entries = CheckResult(f"{label}: entry integrity")
    files = _payload_files(root, ".json")
    if not root.is_dir():
        entries.note("directory absent (nothing cached yet)")
        return [entries]
    good = 0
    for path in files:
        problem = None
        if path.parent.name != path.name[:2]:
            problem = "fan-out directory does not match digest prefix"
        else:
            try:
                with open(path) as fh:
                    RunResult.from_dict(json.load(fh))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                problem = f"{type(exc).__name__}: {exc}"
        if problem is None:
            good += 1
            continue
        if fix:
            moved = quarantine_file(root, path, problem)
            entries.note(f"{path.name}: {problem} -> quarantined"
                         if moved else f"{path.name}: {problem} "
                                       "(quarantine FAILED)")
            if moved is None:
                entries.ok = False
        else:
            entries.fail(f"{path.name}: {problem}")
    entries.note(f"{good}/{len(files)} entries verified")
    return [entries,
            _check_orphans(root, label, fix, exclude=exclude),
            _check_quarantine(root, label)]


def check_trace_cache(root: Path, fix: bool = False) -> List[CheckResult]:
    from repro.trace.packed import verify_file

    label = f"trace cache {root}"
    entries = CheckResult(f"{label}: packed-trace integrity")
    if not root.is_dir():
        entries.note("directory absent (nothing cached yet)")
        return [entries]
    files = _payload_files(root, ".bin")
    good = 0
    for path in files:
        if path.parent.name != path.name[:2]:
            ok, reason = False, "fan-out directory does not match digest prefix"
        else:
            ok, reason = verify_file(path)
        if ok:
            good += 1
            continue
        if fix:
            moved = quarantine_file(root, path, reason)
            entries.note(f"{path.name}: {reason} -> quarantined"
                         if moved else f"{path.name}: {reason} "
                                       "(quarantine FAILED)")
            if moved is None:
                entries.ok = False
        else:
            entries.fail(f"{path.name}: {reason}")
    entries.note(f"{good}/{len(files)} traces verified")
    return [entries,
            _check_orphans(root, label, fix),
            _check_quarantine(root, label)]


def _gc_log(root: Path, entry: dict) -> None:
    """Durably append one eviction record to the cache's GC manifest."""
    manifest = root / GC_MANIFEST_NAME
    manifest.parent.mkdir(parents=True, exist_ok=True)
    with open(manifest, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def read_gc_manifest(root: Path) -> List[dict]:
    """Parsed GC manifest entries (tolerating a torn final line)."""
    entries: List[dict] = []
    try:
        with open(Path(root) / GC_MANIFEST_NAME, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        pass
    return entries


def prune_cache(root: Path, suffix: str, older_than_days: float,
                label: str, now: Optional[float] = None) -> CheckResult:
    """Evict cache entries whose last write predates the cutoff.

    Only payload files in the fan-out directories are candidates —
    ``quarantine/`` is never touched, and each eviction is manifest-
    logged before the unlink.  Emptied fan-out directories are removed
    (best-effort) so a pruned cache does not accumulate husks.
    """
    check = CheckResult(
        f"{label}: GC (older than {older_than_days:g} day(s))")
    now = time.time() if now is None else now
    cutoff = now - older_than_days * 86400.0
    root = Path(root)
    if not root.is_dir():
        check.note("directory absent (nothing to prune)")
        return check
    pruned = kept = 0
    freed = 0
    for path in _payload_files(root, suffix):
        try:
            stat = path.stat()
        except OSError:
            continue  # a concurrent writer/GC got there first
        if stat.st_mtime >= cutoff:
            kept += 1
            continue
        entry = {
            "file": str(path.relative_to(root)),
            "bytes": stat.st_size,
            "mtime": stat.st_mtime,
            "age_days": round((now - stat.st_mtime) / 86400.0, 3),
            "pruned_at": now,
            "pid": os.getpid(),
        }
        _gc_log(root, entry)
        try:
            path.unlink()
        except OSError as exc:
            check.fail(f"could not evict {path.name}: {exc}")
            continue
        pruned += 1
        freed += stat.st_size
        try:
            path.parent.rmdir()  # only succeeds once the fan-out dir empties
        except OSError:
            pass
    check.note(f"{pruned} entr(ies) evicted ({freed} B freed), {kept} kept")
    if pruned:
        check.note(f"evictions logged to {root / GC_MANIFEST_NAME}")
    return check


# -- store-based audit (any BlobStore backend) -------------------------------

def _check_store_orphans(store, namespace: str, label: str,
                         fix: bool) -> CheckResult:
    check = CheckResult(f"{label}: orphaned temp files")
    orphans = store.orphans(namespace)
    if not orphans:
        check.note("none")
        return check
    for name in orphans:
        if fix:
            if store.remove_orphan(namespace, name):
                check.note(f"removed {name}")
            else:
                check.fail(f"could not remove {name}")
        else:
            check.fail(f"{name} (interrupted writer; --fix removes it)")
    return check


def _check_store_quarantine(store, namespace: str, label: str) -> CheckResult:
    check = CheckResult(f"{label}: quarantine inventory")
    inventory = store.quarantine_inventory(namespace)
    files = inventory.get("files", [])
    entries = inventory.get("manifest", [])
    if not files and not entries:
        check.note("empty")
        return check
    check.note(f"{len(files)} quarantined blob(s), "
               f"{len(entries)} manifest entr(ies)")
    for name in files:
        reason = next((entry.get("reason", "?") for entry in entries
                       if entry.get("file") == name), None)
        check.note(f"{name}: no manifest entry" if reason is None
                   else f"{name}: {reason}")
    for name in sorted({entry.get("file") for entry in entries} - set(files)):
        if name:
            check.note(f"{name}: listed in manifest but blob is gone")
    return check


def _check_store_layout(store, namespace: str, label: str,
                        fix: bool) -> CheckResult:
    check = CheckResult(f"{label}: layout")
    problems = store.structural_check(namespace, fix=fix)
    if not problems:
        check.note("clean")
        return check
    for problem in problems:
        if fix:
            check.note(problem)
            if "FAILED" in problem:
                check.ok = False
        else:
            check.fail(problem)
    return check


def _check_store_entries(store, namespace: str, suffix: str, label: str,
                         title: str, fix: bool, parse) -> CheckResult:
    """Shared entry-integrity walk: every payload blob must ``parse``.

    ``parse(key, raw_or_path)`` raises on damage; it receives the local
    path when the backend has one (mmap/verify fast path) and the raw
    bytes otherwise.
    """
    check = CheckResult(f"{label}: {title}")
    keys = [k for k in store.list(f"{namespace}/") if k.endswith(suffix)]
    good = 0
    for key in keys:
        name = key.split("/", 1)[1]
        problem = None
        path = store.local_path(key)
        try:
            if path is not None:
                parse(key, path)
            else:
                raw = store.get(key)
                if raw is None:
                    continue  # evicted between list and read
                parse(key, raw)
        except Exception as exc:  # noqa: BLE001 — any damage quarantines
            problem = (str(exc) if isinstance(exc, _VerifyFailure)
                       else f"{type(exc).__name__}: {exc}")
        if problem is None:
            good += 1
            continue
        if fix:
            moved = store.quarantine(key, problem)
            check.note(f"{name}: {problem} -> quarantined"
                       if moved else f"{name}: {problem} (quarantine FAILED)")
            if moved is None:
                check.ok = False
        else:
            check.fail(f"{name}: {problem}")
    check.note(f"{good}/{len(keys)} entries verified")
    return check


class _VerifyFailure(Exception):
    """Carries a verify_file reason without exception-name prefixing."""


def check_result_store(store, fix: bool = False) -> List[CheckResult]:
    """The result-cache audit, through the store interface."""
    from repro.system.results import RunResult

    def parse(key, src):
        raw = src.read_bytes() if isinstance(src, Path) else src
        RunResult.from_dict(json.loads(raw.decode("utf-8")))

    label = f"result store {store.url()}"
    return [
        _check_store_entries(store, "results", ".json", label,
                             "entry integrity", fix, parse),
        _check_store_layout(store, "results", label, fix),
        _check_store_orphans(store, "results", label, fix),
        _check_store_quarantine(store, "results", label),
    ]


def check_trace_store(store, fix: bool = False) -> List[CheckResult]:
    """The packed-trace audit, through the store interface."""
    from repro.trace.packed import PackedTrace, verify_file

    def parse(key, src):
        if isinstance(src, Path):
            ok, reason = verify_file(src)
            if not ok:
                raise _VerifyFailure(reason)
        else:
            PackedTrace.loads(src)

    label = f"trace store {store.url()}"
    return [
        _check_store_entries(store, "traces", ".bin", label,
                             "packed-trace integrity", fix, parse),
        _check_store_layout(store, "traces", label, fix),
        _check_store_orphans(store, "traces", label, fix),
        _check_store_quarantine(store, "traces", label),
    ]


def prune_store(store, namespace: str, suffix: str, older_than_days: float,
                label: str, now: Optional[float] = None) -> CheckResult:
    """:func:`prune_cache` through the store interface.

    Same contract: only payload blobs are candidates, quarantine is
    untouchable, and every eviction lands in the namespace's GC
    manifest *before* the delete.
    """
    check = CheckResult(
        f"{label}: GC (older than {older_than_days:g} day(s))")
    now = time.time() if now is None else now
    cutoff = now - older_than_days * 86400.0
    pruned = kept = freed = 0
    for key in store.list(f"{namespace}/"):
        if not key.endswith(suffix):
            continue
        stat = store.stat(key)
        if stat is None:
            continue  # a concurrent writer/GC got there first
        if stat.mtime >= cutoff:
            kept += 1
            continue
        name = key.split("/", 1)[1]
        store.gc_log(namespace, {
            "file": f"{name[:2]}/{name}",
            "bytes": stat.size,
            "mtime": stat.mtime,
            "age_days": round((now - stat.mtime) / 86400.0, 3),
            "pruned_at": now,
            "pid": os.getpid(),
        })
        if not store.delete(key):
            check.fail(f"could not evict {name}")
            continue
        pruned += 1
        freed += stat.size
    check.note(f"{pruned} entr(ies) evicted ({freed} B freed), {kept} kept")
    if pruned:
        check.note(f"evictions logged to the {namespace} GC manifest")
    return check


def prune_store_to_size(store, budget_bytes: int, label: str,
                        now: Optional[float] = None,
                        exempt=None) -> CheckResult:
    """Evict least-recently-written blobs until the store fits a budget.

    The ordering guarantees (docs/resilience.md):

    * every eviction is **manifest-logged before the delete** — the GC
      manifest names what size pressure removed even if the process
      dies mid-prune;
    * **quarantine is never touched** — quarantined blobs are invisible
      to ``list`` and their bytes do not count against the budget;
    * **spooled unflushed writes are never evicted** — ``exempt``
      defaults to :meth:`repro.store.BlobStore.spooled_keys`, the keys
      whose only copy is this store (a ``TieredStore`` local tier with
      its remote down).  Their bytes *do* count against the budget —
      they occupy real disk — so a spool backlog can legitimately make
      the budget unreachable, which is reported as a failure rather
      than "solved" by deleting sole copies.

    The returned check carries ``evicted`` / ``freed_bytes`` attributes
    for programmatic callers (the ``TieredStore`` budget).
    """
    check = CheckResult(f"{label}: GC (size budget {budget_bytes} B)")
    now = time.time() if now is None else now
    exempt = set(store.spooled_keys() if exempt is None else exempt)
    total = 0
    candidates = []
    exempt_bytes = 0
    for key in store.list():
        stat = store.stat(key)
        if stat is None:
            continue  # a concurrent writer/GC got there first
        total += stat.size
        if key in exempt:
            exempt_bytes += stat.size
            continue
        candidates.append((stat.mtime, key, stat.size))
    evicted = freed = 0
    if total > budget_bytes:
        candidates.sort()  # oldest write first: LRU by mtime
        for mtime, key, size in candidates:
            if total - freed <= budget_bytes:
                break
            namespace, name = key.split("/", 1)
            store.gc_log(namespace, {
                "file": f"{name[:2]}/{name}",
                "bytes": size,
                "mtime": mtime,
                "age_days": round((now - mtime) / 86400.0, 3),
                "pruned_at": now,
                "pid": os.getpid(),
                "reason": "size-budget",
                "budget_bytes": budget_bytes,
            })
            if not store.delete(key):
                check.fail(f"could not evict {name}")
                continue
            evicted += 1
            freed += size
    remaining = total - freed
    check.note(f"{evicted} entr(ies) evicted ({freed} B freed), "
               f"{remaining} B remain of {budget_bytes} B budget")
    if exempt:
        check.note(f"{len(exempt)} spooled unflushed write(s) exempt "
                   f"({exempt_bytes} B)")
    if evicted:
        check.note("evictions logged to the GC manifest")
    if remaining > budget_bytes:
        check.fail("budget not met: remaining bytes are spooled writes "
                   "or in-flight entries; flush the spool and re-prune")
    check.evicted = evicted
    check.freed_bytes = freed
    return check


def probe_store(store) -> CheckResult:
    """One connectivity check, first in every ``--store`` report.

    An unreachable remote fails this single check with an actionable
    message instead of surfacing as a traceback (or as N confusing
    empty audits) further down.
    """
    check = CheckResult(f"store {store.url()}: connectivity")
    try:
        ok, detail = store.probe()
    except Exception as exc:  # noqa: BLE001 — a probe reports, not raises
        ok, detail = False, f"{type(exc).__name__}: {exc}"
    if ok:
        check.note(detail)
    else:
        check.fail(f"unreachable: {detail}")
        check.fail("is `repro serve` running there?  Check the --store "
                   "URL (host, port) and any ?timeout= / "
                   "REPRO_STORE_TIMEOUT setting.")
    return check


def run_store_doctor(store, fix: bool = False,
                     prune_older_than_days: Optional[float] = None,
                     prune_to_size_bytes: Optional[int] = None
                     ) -> DoctorReport:
    """Audit one blob store (local or remote) — the ``--store`` path."""
    report = DoctorReport()
    connectivity = probe_store(store)
    report.checks.append(connectivity)
    if not connectivity.ok:
        # Nothing below can succeed against an unreachable remote;
        # stop with the one actionable failure instead of a traceback.
        resilience_warn("doctor-store-unreachable",
                        "store unreachable; audit skipped",
                        url=store.url())
        return report
    if prune_older_than_days is not None:
        report.checks.append(prune_store(
            store, "results", ".json", prune_older_than_days,
            f"result store {store.url()}"))
        report.checks.append(prune_store(
            store, "traces", ".bin", prune_older_than_days,
            f"trace store {store.url()}"))
    if prune_to_size_bytes is not None:
        # A size budget bounds *disk*, so for a tiered store the target
        # is the local tier (the remote keeps its copies); the tier's
        # spooled keys stay exempt because the local copy is the sole one.
        target = getattr(store, "local", None)
        if target is not None and hasattr(store, "spooled_keys"):
            report.checks.append(prune_store_to_size(
                target, prune_to_size_bytes,
                f"store {store.url()} local tier",
                exempt=set(store.spooled_keys())))
        else:
            report.checks.append(prune_store_to_size(
                store, prune_to_size_bytes, f"store {store.url()}"))
    report.checks.extend(check_result_store(store, fix=fix))
    report.checks.extend(check_trace_store(store, fix=fix))
    if not report.ok:
        resilience_warn("doctor-problems",
                        "store integrity audit found problems",
                        failed=sum(1 for c in report.checks if not c.ok))
    return report


def run_doctor(result_root: Optional[Path] = None,
               trace_root: Optional[Path] = None,
               fix: bool = False,
               prune_older_than_days: Optional[float] = None,
               store=None,
               prune_to_size_bytes: Optional[int] = None) -> DoctorReport:
    """Audit both caches; defaults to the live environment-derived roots.

    With ``prune_older_than_days`` set, garbage-collect entries older
    than the cutoff first (manifest-logged), then audit what remains;
    ``prune_to_size_bytes`` does the same under a byte budget (LRU).
    With ``store`` set (a :class:`repro.store.BlobStore`), audit through
    the store interface instead of walking paths — identical checks,
    any backend.
    """
    if store is not None:
        return run_store_doctor(store, fix=fix,
                                prune_older_than_days=prune_older_than_days,
                                prune_to_size_bytes=prune_to_size_bytes)
    from repro.experiments._engine import default_cache_dir
    from repro.trace._cache import trace_cache_dir

    result_root = Path(result_root) if result_root else default_cache_dir()
    trace_root = Path(trace_root) if trace_root else trace_cache_dir()
    report = DoctorReport()
    if prune_to_size_bytes is not None:
        # Size pruning is inherently cross-namespace (one budget for the
        # whole tree), so it always goes through the store interface; an
        # FsStore over these roots is bit-compatible with them.
        from repro.store.fs import FsStore

        report.checks.append(prune_store_to_size(
            FsStore(result_root, trace_root=trace_root),
            prune_to_size_bytes, f"cache {result_root}"))
    if prune_older_than_days is not None:
        report.checks.append(prune_cache(
            result_root, ".json", prune_older_than_days,
            f"result cache {result_root}"))
        report.checks.append(prune_cache(
            trace_root, ".bin", prune_older_than_days,
            f"trace cache {trace_root}"))
    # The default trace cache nests under the result cache root; keep its
    # files out of the result-cache orphan scan so nothing double-reports.
    report.checks.extend(check_result_cache(result_root, fix=fix,
                                            exclude=trace_root))
    report.checks.extend(check_trace_cache(trace_root, fix=fix))
    if not report.ok:
        resilience_warn("doctor-problems",
                        "cache integrity audit found problems",
                        failed=sum(1 for c in report.checks if not c.ok))
    return report
