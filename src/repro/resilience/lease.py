"""Work-division leases: O_EXCL claim files with TTL'd takeover.

Many ``repro report --journal`` processes pointed at the same journal
divide one sweep matrix between them with no coordinator process — the
filesystem *is* the coordinator, exactly like the fault-token budgets in
:mod:`repro.resilience.faults`:

* **claim** — one ``<digest>.lease`` file per run spec, created with
  ``O_CREAT | O_EXCL``; the atomicity of that open is the whole mutual
  exclusion story, so exactly one racing worker wins each spec;
* **release** — the winner computes the spec, publishes the result to
  the shared store, journals the completion (in that order — a journal
  line *implies* the blob is fetchable), then unlinks its lease;
* **takeover** — a SIGKILL'd worker leaves its lease behind.  Any
  worker finding a lease older than the TTL (``REPRO_LEASE_TTL``,
  default 300 s; long-running holders refresh their mtime via
  :meth:`LeaseBoard.heartbeat`) renames it aside — ``os.replace`` of an
  existing path succeeds for exactly one racer — and claims afresh.

A takeover of a *live* but slow holder is safe, just wasteful: runs are
deterministic and blob writes atomic, so both workers publish identical
bytes.  The guarantee the tests pin is claim-exactly-once per race and
byte-identical final matrices, not zero duplicate work.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Dict, Optional, Set

#: Default seconds before an unrefreshed lease is presumed dead.
DEFAULT_TTL_S = 300.0


def default_lease_ttl() -> float:
    env = os.environ.get("REPRO_LEASE_TTL", "")
    if env:
        try:
            return max(0.0, float(env))
        except ValueError:
            pass
    return DEFAULT_TTL_S


def lease_dir_for(journal_path) -> Path:
    """The lease directory paired with one sweep journal."""
    return Path(str(journal_path) + ".leases")


class LeaseBoard:
    """One directory of per-digest claim files (see module docstring)."""

    def __init__(self, root, ttl_s: Optional[float] = None,
                 owner: Optional[str] = None, poll_s: float = 0.05):
        self.root = Path(root)
        self.ttl_s = default_lease_ttl() if ttl_s is None else ttl_s
        self.owner = owner if owner else (
            f"{socket.gethostname()}:{os.getpid()}:{time.monotonic_ns()}")
        self.poll_s = poll_s
        self.claims = 0
        self.takeovers = 0
        self._seq = 0
        self._held: Set[str] = set()

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.lease"

    # -- claiming ------------------------------------------------------------

    def try_claim(self, digest: str) -> bool:
        """One arrival: claim the digest if free or expired; never blocks."""
        if self._create(self.path_for(digest)):
            self._won(digest)
            return True
        return self._try_takeover(digest)

    def _create(self, path: Path) -> bool:
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        payload = json.dumps({"owner": self.owner, "pid": os.getpid(),
                              "claimed_at": time.time()}, sort_keys=True)
        os.write(fd, payload.encode("utf-8"))
        os.fsync(fd)
        os.close(fd)
        return True

    def _try_takeover(self, digest: str) -> bool:
        """Reclaim an expired lease; exactly one racer can succeed."""
        path = self.path_for(digest)
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # Released between our O_EXCL failure and here: one clean retry.
            if self._create(path):
                self._won(digest)
                return True
            return False
        if self.ttl_s <= 0 or age <= self.ttl_s:
            return False
        # Move the dead lease aside: os.replace of an existing file
        # succeeds for exactly one concurrent racer (the losers get
        # FileNotFoundError), which makes the takeover single-winner.
        self._seq += 1
        grave = path.with_name(f"{path.name}.dead.{os.getpid()}.{self._seq}")
        try:
            os.replace(path, grave)
        except OSError:
            return False
        try:
            os.unlink(grave)
        except OSError:
            pass
        self.takeovers += 1
        if self._create(path):
            self._won(digest)
            return True
        return False  # a third worker slipped in after our replace

    def _won(self, digest: str) -> None:
        self.claims += 1
        self._held.add(digest)

    # -- holding -------------------------------------------------------------

    def heartbeat(self, digest: str) -> None:
        """Refresh a held lease's mtime so slow runs outlive the TTL."""
        if digest not in self._held:
            return
        try:
            os.utime(self.path_for(digest))
        except OSError:
            pass  # taken over; the duplicate run still publishes same bytes

    def owner_of(self, digest: str) -> Optional[Dict]:
        """The parsed claim payload, or ``None`` when unleased/unreadable."""
        try:
            raw = self.path_for(digest).read_bytes()
            return json.loads(raw.decode("utf-8"))
        except (OSError, ValueError):
            return None

    # -- releasing -----------------------------------------------------------

    def release(self, digest: str) -> bool:
        """Drop a held lease — only if it is still ours (a TTL takeover
        may have replaced it while we computed; never unlink the new
        holder's claim)."""
        self._held.discard(digest)
        record = self.owner_of(digest)
        if record is None or record.get("owner") != self.owner:
            return False
        try:
            os.unlink(self.path_for(digest))
        except OSError:
            return False
        return True

    def release_all(self) -> None:
        for digest in list(self._held):
            self.release(digest)

    def __repr__(self) -> str:
        return (f"LeaseBoard({str(self.root)!r}, ttl_s={self.ttl_s}, "
                f"claims={self.claims}, takeovers={self.takeovers})")
