"""``repro.resilience``: fault injection and resilient execution.

The experiment pipeline (engine, result cache, trace cache) must survive
the failures a long sweep on real hardware actually sees — a worker
process dying mid-chunk, a transient exception, a blob half-written by a
crash, a task stalling past its deadline — and still converge to
bit-identical results.  This package supplies both halves of that
guarantee:

* **fault injection** — :class:`~repro.resilience.faults.FaultPlan` /
  :class:`~repro.resilience.faults.FaultInjector`, a deterministic,
  seeded perturbation layer armed via ``REPRO_FAULTS`` that fires at
  well-defined sites inside the engine and caches (see
  docs/resilience.md for the grammar and fault-site catalogue);
* **recovery machinery** — :class:`~repro.resilience.retry.RetryPolicy`
  (per-task deadlines, bounded retries with a seeded exponential
  backoff schedule), automatic worker-pool rebuilds with graceful
  degradation to serial execution, corrupt-blob quarantine
  (:mod:`~repro.resilience.storage` — never silent deletion), and the
  :class:`~repro.resilience.journal.SweepJournal` that lets an
  interrupted sweep resume where it stopped (``--resume``);
* **operator tooling** — ``repro chaos``
  (:mod:`~repro.resilience.chaos`: run a sweep under a fault plan and
  assert the final matrix is bit-identical to a fault-free run) and
  ``repro doctor`` (:mod:`~repro.resilience.doctor`: cache/trace-dir
  integrity audit).

Every counter the machinery bumps lands in the process-wide
:func:`repro.obs.metrics.process_registry` or the engine's own
``MetricsRegistry``, so retries, rebuilds, degradations, and quarantines
are all visible through the existing observability surface.
"""

from repro.resilience.faults import (
    SITE_CACHE_CORRUPT,
    SITE_TASK_STALL,
    SITE_TRACE_CORRUPT,
    SITE_WORKER_EXC,
    SITE_WORKER_KILL,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TransientFault,
    get_injector,
    reset_injector,
)
from repro.resilience.journal import SweepJournal
from repro.resilience.lease import LeaseBoard, default_lease_ttl, lease_dir_for
from repro.resilience.retry import RetryPolicy
from repro.resilience.storage import (
    durable_replace,
    quarantine_dir,
    quarantine_file,
    read_quarantine_manifest,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LeaseBoard",
    "RetryPolicy",
    "SITE_CACHE_CORRUPT",
    "SITE_TASK_STALL",
    "SITE_TRACE_CORRUPT",
    "SITE_WORKER_EXC",
    "SITE_WORKER_KILL",
    "SweepJournal",
    "TransientFault",
    "default_lease_ttl",
    "durable_replace",
    "get_injector",
    "lease_dir_for",
    "quarantine_dir",
    "quarantine_file",
    "read_quarantine_manifest",
    "reset_injector",
]
