"""Deterministic, seeded fault injection for the experiment pipeline.

A **fault plan** names a set of injection *sites* and how often each
fires; an **injector** is the armed plan, consulted from the production
code at each site.  With ``REPRO_FAULTS`` unset (the default)
:func:`get_injector` returns ``None`` and every site costs one
environment lookup — the recovery machinery it exercises stays
completely cold.

Grammar (the value of ``REPRO_FAULTS``)::

    REPRO_FAULTS = clause (";" clause)*
    clause       = "seed=" INT | site (":" key "=" INT)*
    site         = "worker-kill" | "worker-exc" | "task-stall"
                 | "cache-corrupt" | "trace-corrupt"
                 | "store-get-error" | "store-put-stall"
                 | "store-conn-refused"
    key          = "n" (budget, default 1) | "every" (default 1)
                 | "ms" (stall milliseconds, default 50)
                 | "mode" (corruption: 0 garbage / 1 truncate, default 0)

Example: ``worker-kill:n=1;worker-exc:n=2:every=2;cache-corrupt:n=2``.

Sites
-----
``worker-kill``
    ``os._exit`` inside a pool worker at chunk start — the parent sees a
    ``BrokenProcessPool`` and must rebuild the pool.
``worker-exc``
    Raise :class:`TransientFault` inside the worker chunk — the parent
    sees a failed future and must retry the chunk.
``task-stall``
    Sleep ``ms`` milliseconds inside the worker chunk — with a per-task
    deadline armed the parent sees a stall and must re-dispatch.
``cache-corrupt`` / ``trace-corrupt``
    Overwrite (or truncate) an existing result/trace blob immediately
    before the cache reads it — the read path must detect, quarantine,
    and rebuild.
``store-get-error`` / ``store-put-stall`` / ``store-conn-refused``
    Network faults at the blob-store boundary.  A remote fetch raises a
    transport error, a remote publish stalls ``ms`` milliseconds before
    hitting the wire, or any store round trip dies as if the coordinator
    refused the connection.  :class:`repro.store.HttpStore` consults
    them client-side and the service's ``/blob`` endpoints consult them
    server-side, so either end of a flapping coordinator can be
    rehearsed — the retry/backoff/spool machinery must absorb all three
    (``repro chaos`` pins byte-identical results).

Determinism
-----------
Each site keeps an *arrival counter*; a site fires when the counter
matches a schedule derived from ``sha256(seed, site)`` (every
``every``-th arrival, phase-shifted by the seed) **and** budget remains.
Budgets are per-process by default; pointing ``REPRO_FAULTS_DIR`` at a
shared directory makes them global across pool workers and worker
restarts (each firing atomically claims one token file, so a replacement
worker does not re-fire a spent fault).  Which worker observes a fault
still depends on scheduling — the guarantee ``repro chaos`` enforces is
that the *final results* are bit-identical, not the interleaving.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

SITE_WORKER_KILL = "worker-kill"
SITE_WORKER_EXC = "worker-exc"
SITE_TASK_STALL = "task-stall"
SITE_CACHE_CORRUPT = "cache-corrupt"
SITE_TRACE_CORRUPT = "trace-corrupt"
SITE_STORE_GET_ERROR = "store-get-error"
SITE_STORE_PUT_STALL = "store-put-stall"
SITE_STORE_CONN_REFUSED = "store-conn-refused"

#: Every site the production code consults, with a one-line description
#: (the fault-site catalogue rendered by ``repro doctor --help`` / docs).
FAULT_SITES: Dict[str, str] = {
    SITE_WORKER_KILL: "kill a pool worker process at chunk start",
    SITE_WORKER_EXC: "raise a transient exception inside a worker chunk",
    SITE_TASK_STALL: "stall a worker chunk past its deadline (ms=...)",
    SITE_CACHE_CORRUPT: "corrupt a ResultCache blob just before it is read",
    SITE_TRACE_CORRUPT: "corrupt a packed TraceCache blob just before it is read",
    SITE_STORE_GET_ERROR: "fail a remote blob fetch with a transport error",
    SITE_STORE_PUT_STALL: "stall a remote blob publish (ms=...) before the wire",
    SITE_STORE_CONN_REFUSED: "refuse the connection on a store round trip",
}

#: The network-fault subset (sites that fire at the blob-store boundary).
NETWORK_FAULT_SITES = (SITE_STORE_GET_ERROR, SITE_STORE_PUT_STALL,
                       SITE_STORE_CONN_REFUSED)

#: Exit status a killed worker dies with (distinctive in core-dump logs).
KILL_EXIT_CODE = 23

MODE_GARBAGE = 0
MODE_TRUNCATE = 1

_GARBAGE = b"\xde\xad\xbe\xef" * 16


class TransientFault(RuntimeError):
    """The injected worker exception (picklable across the pool boundary)."""


class InjectedStoreFault(OSError):
    """The injected store transport error.

    An ``OSError`` on purpose: it travels the exact same retry path as a
    real socket failure (``urllib``'s ``URLError`` is an ``OSError``
    too), so the production recovery code cannot tell rehearsal from the
    real thing.
    """


class FaultPlanError(ValueError):
    """``REPRO_FAULTS`` could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One site's firing rule: budget, cadence, and site parameters."""

    site: str
    count: int = 1      # total firings allowed (the budget)
    every: int = 1      # fire on every Nth arrival at the site
    ms: int = 50        # task-stall only: sleep this many milliseconds
    mode: int = MODE_GARBAGE  # corruption sites: garbage vs truncate

    def clause(self) -> str:
        parts = [self.site]
        defaults = FaultSpec(self.site)
        for key in ("count", "every", "ms", "mode"):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                parts.append(f"{'n' if key == 'count' else key}={value}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules (the parsed ``REPRO_FAULTS``)."""

    seed: int = 0
    sites: Dict[str, FaultSpec] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        seed = 0
        sites: Dict[str, FaultSpec] = {}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[5:])
                except ValueError:
                    raise FaultPlanError(f"bad seed clause {clause!r}")
                continue
            head, _, rest = clause.partition(":")
            if head not in FAULT_SITES:
                raise FaultPlanError(
                    f"unknown fault site {head!r} "
                    f"(choose from {sorted(FAULT_SITES)})")
            spec = FaultSpec(site=head)
            for part in rest.split(":") if rest else ():
                key, _, value = part.partition("=")
                try:
                    number = int(value)
                except ValueError:
                    raise FaultPlanError(f"bad parameter {part!r} in {clause!r}")
                if key == "n":
                    spec = replace(spec, count=max(0, number))
                elif key == "every":
                    spec = replace(spec, every=max(1, number))
                elif key == "ms":
                    spec = replace(spec, ms=max(0, number))
                elif key == "mode":
                    spec = replace(spec, mode=number)
                else:
                    raise FaultPlanError(f"unknown parameter {key!r} in {clause!r}")
            sites[head] = spec
        return cls(seed=seed, sites=sites)

    def to_env(self) -> str:
        """The canonical ``REPRO_FAULTS`` serialization of this plan."""
        clauses = []
        if self.seed:
            clauses.append(f"seed={self.seed}")
        clauses.extend(self.sites[site].clause() for site in sorted(self.sites))
        return ";".join(clauses)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


def corrupt_file(path, mode: int = MODE_GARBAGE) -> bool:
    """Deterministically damage an existing blob in place.

    ``MODE_GARBAGE`` stamps a recognizable byte pattern over the file
    head (magic/JSON both die); ``MODE_TRUNCATE`` cuts the file in half.
    Returns ``False`` (leaving the file alone) if it does not exist.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if mode == MODE_TRUNCATE:
        with open(path, "r+b") as fh:
            fh.truncate(max(0, size // 2))
        return True
    with open(path, "r+b") as fh:
        fh.write(_GARBAGE[:max(1, min(len(_GARBAGE), size))])
    return True


class FaultInjector:
    """An armed :class:`FaultPlan`, consulted at each injection site."""

    def __init__(self, plan: FaultPlan, budget_dir: Optional[Path] = None):
        self.plan = plan
        self.budget_dir = Path(budget_dir) if budget_dir else None
        self._arrivals: Dict[str, int] = {}
        self._local_fired: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}  # firings observed in this process

    # -- the seeded schedule -------------------------------------------------

    def _offset(self, site: str, every: int) -> int:
        digest = hashlib.sha256(f"{self.plan.seed}:{site}".encode()).digest()
        return digest[0] % every

    def schedule(self, site: str, arrivals: int) -> Tuple[int, ...]:
        """Which of the next ``arrivals`` arrivals fire (ignoring budget).

        Pure function of (seed, site, spec) — the determinism tests pin
        same-seed schedules as identical and different seeds as allowed
        to differ.
        """
        spec = self.plan.sites.get(site)
        if spec is None:
            return ()
        offset = self._offset(site, spec.every)
        return tuple(i for i in range(arrivals) if i % spec.every == offset)

    # -- firing decisions ----------------------------------------------------

    def should_fire(self, site: str) -> bool:
        """Count one arrival at ``site``; decide (and claim budget) if it fires."""
        spec = self.plan.sites.get(site)
        if spec is None or spec.count <= 0:
            return False
        arrival = self._arrivals.get(site, 0)
        self._arrivals[site] = arrival + 1
        if arrival % spec.every != self._offset(site, spec.every):
            return False
        if not self._claim(site, spec.count):
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    def _claim(self, site: str, budget: int) -> bool:
        if self.budget_dir is None:
            used = self._local_fired.get(site, 0)
            if used >= budget:
                return False
            self._local_fired[site] = used + 1
            return True
        # Shared budget: atomically claim one token file.  O_EXCL makes
        # each token single-claim across every process sharing the dir.
        self.budget_dir.mkdir(parents=True, exist_ok=True)
        for index in range(budget):
            token = self.budget_dir / f"{site}.{index}"
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(fd, f"{os.getpid()}\n".encode())
            os.close(fd)
            return True
        return False

    def tokens_claimed(self, site: str) -> int:
        """Global firings of ``site`` so far (needs a shared budget dir)."""
        if self.budget_dir is None:
            return self._local_fired.get(site, 0)
        spec = self.plan.sites.get(site)
        if spec is None:
            return 0
        return sum((self.budget_dir / f"{site}.{i}").exists()
                   for i in range(spec.count))

    # -- site helpers (called from production code) --------------------------

    def on_worker_chunk(self) -> None:
        """The worker-side sites, consulted at every chunk start."""
        if self.should_fire(SITE_WORKER_KILL):
            os._exit(KILL_EXIT_CODE)
        if self.should_fire(SITE_WORKER_EXC):
            raise TransientFault("injected transient worker fault")
        if self.should_fire(SITE_TASK_STALL):
            time.sleep(self.plan.sites[SITE_TASK_STALL].ms / 1000.0)

    def on_store_op(self, op: str) -> None:
        """The network-fault sites, consulted per store round trip.

        ``op`` is the store operation about to hit the wire (``"get"``,
        ``"put"``, ``"stat"``, ``"rpc"``, ...).  ``store-conn-refused``
        arrives on every op; the get/put-specific sites only count
        arrivals of their own op, so a plan like ``store-get-error:n=2``
        fires on the 2nd-arriving *fetch*, not whatever request happens
        to come 2nd overall.
        """
        if op == "get" and self.should_fire(SITE_STORE_GET_ERROR):
            raise InjectedStoreFault("injected store get error")
        if op == "put" and self.should_fire(SITE_STORE_PUT_STALL):
            time.sleep(self.plan.sites[SITE_STORE_PUT_STALL].ms / 1000.0)
        if self.should_fire(SITE_STORE_CONN_REFUSED):
            raise InjectedStoreFault("injected connection refused")

    def maybe_corrupt(self, site: str, path) -> bool:
        """Damage ``path`` if the site fires; arrivals only count when the
        blob actually exists (a missing file is not an opportunity)."""
        spec = self.plan.sites.get(site)
        if spec is None or not os.path.exists(path):
            return False
        if not self.should_fire(site):
            return False
        return corrupt_file(path, spec.mode)


# -- process-wide arming -----------------------------------------------------

_CACHED: Tuple[Optional[Tuple[str, str]], Optional[FaultInjector]] = (None, None)


def get_injector() -> Optional[FaultInjector]:
    """The armed injector, or ``None`` when ``REPRO_FAULTS`` is unset.

    The injector is cached per ``(REPRO_FAULTS, REPRO_FAULTS_DIR)`` value
    so arrival counters persist across calls; changing either variable
    mid-process re-arms from scratch.  The unarmed fast path is a single
    environment lookup.
    """
    global _CACHED
    text = os.environ.get("REPRO_FAULTS", "")
    if not text:
        return None
    budget = os.environ.get("REPRO_FAULTS_DIR", "")
    key = (text, budget)
    if _CACHED[0] == key:
        return _CACHED[1]
    injector = FaultInjector(FaultPlan.parse(text),
                             Path(budget) if budget else None)
    _CACHED = (key, injector)
    return injector


def reset_injector() -> None:
    """Drop the cached injector (tests; chaos between phases)."""
    global _CACHED
    _CACHED = (None, None)
