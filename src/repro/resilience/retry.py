"""Retry policy: per-task deadlines and seeded exponential backoff.

The engine retries failed or stalled work in rounds; between rounds it
sleeps a backoff drawn from a *deterministic* schedule — exponential in
the attempt number, jittered by a hash of ``(seed, attempt)`` rather
than a live RNG, so two runs with the same seed wait exactly the same
amounts (``repro chaos`` depends on this for reproducible timings, and
the determinism tests pin it).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine recovers: deadlines, retries, backoff, degradation."""

    #: Parallel retry rounds before degrading to serial execution.
    max_retries: int = 3
    #: First-retry backoff; doubles every further attempt.
    backoff_base_s: float = 0.05
    #: Ceiling on any single backoff sleep.
    backoff_cap_s: float = 2.0
    #: Per-wait deadline: if *no* chunk completes within this window the
    #: outstanding tasks count as stalled and are re-dispatched.  ``None``
    #: (the default) waits forever — exactly the pre-resilience behaviour.
    timeout_s: Optional[float] = None
    #: Worker-pool rebuilds tolerated before degrading to serial.
    max_pool_rebuilds: int = 2
    #: Seeds the backoff jitter (and nothing else).
    seed: int = 0

    def backoff(self, attempt: int) -> float:
        """Deterministic backoff before retry round ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** (attempt - 1)))
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode()).digest()
        jitter = 0.5 + digest[0] / 510.0  # [0.5, 1.0]: never waits longer
        return base * jitter

    def schedule(self) -> List[float]:
        """Every backoff this policy would sleep, in order."""
        return [self.backoff(a) for a in range(1, self.max_retries + 1)]

    @classmethod
    def from_env(cls, env=None) -> "RetryPolicy":
        """``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT`` /
        ``REPRO_BACKOFF_BASE`` / ``REPRO_RETRY_SEED`` overrides."""
        env = os.environ if env is None else env
        kwargs = {}
        raw = env.get("REPRO_MAX_RETRIES", "")
        if raw:
            kwargs["max_retries"] = max(0, int(raw))
        raw = env.get("REPRO_TASK_TIMEOUT", "")
        if raw:
            timeout = float(raw)
            kwargs["timeout_s"] = timeout if timeout > 0 else None
        raw = env.get("REPRO_BACKOFF_BASE", "")
        if raw:
            kwargs["backoff_base_s"] = max(0.0, float(raw))
        raw = env.get("REPRO_RETRY_SEED", "")
        if raw:
            kwargs["seed"] = int(raw)
        return cls(**kwargs)
