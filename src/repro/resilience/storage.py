"""Durable writes and corrupt-blob quarantine for the on-disk caches.

Two invariants the result and trace caches lean on:

* **A mid-write kill can never leave a half-written blob.**
  :func:`durable_replace` writes through a same-directory temp file,
  fsyncs the data before the atomic rename, and fsyncs the directory
  after it — so after a crash either the old bytes or the new bytes are
  on disk, never a prefix.
* **Corruption is never silently destroyed.** A blob that exists but
  fails to parse moves into ``quarantine/`` beside the cache root (with
  a manifest line recording where it came from and why) instead of
  being deleted or overwritten in place, so the evidence survives for
  ``repro doctor`` and post-mortems.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

QUARANTINE_DIRNAME = "quarantine"
MANIFEST_NAME = "MANIFEST.jsonl"


def fsync_directory(path) -> None:
    """Persist a directory entry (rename durability); best-effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(path: Path, data, binary: bool = False) -> None:
    """Atomically and durably install ``data`` at ``path``.

    Temp file in the *same directory* (rename must not cross a
    filesystem), fsync of the file before ``os.replace``, fsync of the
    directory after — the sequence that makes the write crash-atomic.
    ``data`` is ``str`` (text mode) or ``bytes``/a writer callable
    (binary mode).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb" if binary else "w") as fh:
            if callable(data):
                data(fh)
            else:
                fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic on POSIX
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def quarantine_dir(root) -> Path:
    """``quarantine/`` beside a cache root (not inside its fan-out dirs)."""
    return Path(root) / QUARANTINE_DIRNAME


def quarantine_file(root, path, reason: str) -> Optional[Path]:
    """Move a corrupt blob into the cache's quarantine, never deleting it.

    Returns the quarantined path, or ``None`` if the move failed (the
    original file is then left exactly where it was — losing evidence is
    worse than leaving a corrupt entry that the next read re-detects).
    A manifest line records source, destination, and reason.
    """
    path = Path(path)
    qdir = quarantine_dir(root)
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = qdir / f"{path.name}.{suffix}"
        os.replace(path, target)
    except OSError:
        return None
    entry = {"file": target.name, "from": str(path), "reason": reason,
             "pid": os.getpid()}
    try:
        with open(qdir / MANIFEST_NAME, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
    except OSError:
        pass  # the quarantined blob itself is the record of last resort
    return target


def read_quarantine_manifest(root) -> List[Dict]:
    """Parsed manifest entries (tolerating a torn final line)."""
    manifest = quarantine_dir(root) / MANIFEST_NAME
    entries: List[Dict] = []
    try:
        with open(manifest, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue  # torn tail from a crash mid-append
    except OSError:
        pass
    return entries
