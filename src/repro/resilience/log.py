"""Resilience warnings, surfaced through ``repro.obs`` instead of lost.

Cache-layer recoveries (a corrupt trace rebuilt, a result blob
quarantined) used to be invisible: the exception was swallowed and the
rebuild went unrecorded, so a "rebuild storm" — every read corrupting
and rebuilding — looked exactly like a healthy cache.  Every recovery
now:

* bumps ``repro_resilience_warnings_total{event=...}`` (plus any extra
  labels) on the process-wide
  :func:`repro.obs.metrics.process_registry`, where ``repro chaos`` /
  ``repro doctor`` and the engine read it back;
* appends a structured record to a small in-process ring
  (:func:`recent_events`) for diagnostics;
* emits a ``logging`` warning on the ``repro.resilience`` logger, so
  operators see it on stderr without any opt-in.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Deque, Dict, List

from repro.obs.metrics import process_registry

WARNING_COUNTER = "repro_resilience_warnings_total"

logger = logging.getLogger("repro.resilience")

_EVENTS: Deque[Dict] = deque(maxlen=256)


def warn(event: str, message: str = "", **labels) -> None:
    """Record one recovery event: counter + structured record + log line."""
    # Unbounded-cardinality fields (paths, error text) stay out of the
    # counter's label set; the structured record keeps them.
    process_registry().inc(WARNING_COUNTER, event=event,
                           **{k: v for k, v in labels.items()
                              if k not in ("path", "error", "quarantined")})
    record = {"event": event, "message": message, **labels}
    _EVENTS.append(record)
    detail = " ".join(f"{k}={v}" for k, v in labels.items())
    logger.warning("%s: %s%s", event, message, f" ({detail})" if detail else "")


def recent_events() -> List[Dict]:
    """The last 256 recovery events recorded in this process."""
    return list(_EVENTS)


def clear_events() -> None:
    _EVENTS.clear()
