"""Protozoa-SW+MR and Protozoa-MW: adaptive coherence granularity.

Both protocols keep the fixed-granularity directory but make probed L1s
*overlap-aware*: an incoming request carries its word range, and a sharer
whose sub-blocks do not intersect it answers ACK-S ("invalidation
acknowledged, keep tracking me") and keeps its data — this is what kills
the false-sharing ping-pong.

* **Protozoa-SW+MR** tracks one writer (log P extra directory bits) plus a
  reader vector: multiple readers coexist with one non-overlapping writer.
  A new writer *revokes* the old one entirely (it writes back and becomes a
  reader of its non-overlapping data), so subsequent readers need not ping
  it — the control-traffic trade-off of Section 3.5.
* **Protozoa-MW** doubles the directory entry into full reader and writer
  vectors: multiple disjoint writers coexist, implementing SWMR effectively
  at word granularity.  The directory does not know *which* words each
  sharer holds, so write misses probe every tracked sharer; non-overlapping
  ones stay put and answer ACK-S — extra control messages (but no data)
  exactly as the paper reports for apache/rev-index/radix.
"""

from __future__ import annotations

from typing import List

from repro.coherence.directory import DirectoryEntry
from repro.coherence.messages import MsgType
from repro.coherence.protocol_base import CoherenceProtocol
from repro.common.errors import ProtocolError
from repro.common.params import ProtocolKind
from repro.common.wordrange import WordRange
from repro.memory.block import LineState


class _OverlapAwareProtocol(CoherenceProtocol):
    """Shared machinery: overlap-aware probe legs and membership refresh."""

    def _refresh(self, entry: DirectoryEntry, target: int, region: int) -> None:
        """Re-derive the target's directory membership from its cache.

        Hardware encodes this in the reply type (ACK vs ACK-S vs
        WBACK-LAST); the model just inspects the cache the reply would
        summarize.
        """
        blocks = self.l1s[target].blocks_of(region)
        if not blocks:
            entry.drop(target)
            return
        if any(b.state in (LineState.M, LineState.E) for b in blocks):
            entry.writers.add(target)
            entry.readers.discard(target)
        else:
            entry.writers.discard(target)
            entry.readers.add(target)

    def _probe_overlap_read(self, target: int, region: int, req: WordRange,
                            home: int, entry: DirectoryEntry) -> int:
        """GETS probe of a (potential) writer: downgrade overlapping M/E.

        Overlapping dirty sub-blocks are written back (full contents) and
        kept as clean shared copies; non-overlapping data is untouched.
        """
        l1 = self.l1s[target]
        target_node = self.topology.core_node(target)
        request_lat = self._send(MsgType.FWD_GETS, home, target_node)
        blocks = l1.blocks_of(region)
        if not blocks:
            reply_lat = self._send(MsgType.NACK, target_node, home)
            entry.drop(target)
            return self._probe_leg_latency(home, target, 0, request_lat, reply_lat)
        conflicting = [
            b for b in blocks
            if b.range.overlaps(req) and b.state in (LineState.M, LineState.E)
        ]
        self.mshrs[target].note_multi_block(from_cpu=False, blocks=len(conflicting))
        payload, used = self._writeback_blocks(target, conflicting)
        for block in conflicting:
            block.dirty_mask = 0
            block.state = LineState.S
        if payload:
            self._note_supplier_snoop_latency(
                target,
                request_lat + self.config.l1.hit_latency + max(len(conflicting) - 1, 0))
            reply_lat = self._send(MsgType.WBACK, target_node, home, payload, used)
            self.stats.writebacks += 1
        else:
            reply_lat = self._send(MsgType.ACK_S, target_node, home)
        self._refresh(entry, target, region)
        return self._probe_leg_latency(
            home, target, len(conflicting), request_lat, reply_lat
        )

    def _probe_overlap_write(self, target: int, region: int, req: WordRange,
                             home: int, entry: DirectoryEntry,
                             as_writer: bool) -> int:
        """GETX probe: invalidate only the target's *overlapping* sub-blocks."""
        l1 = self.l1s[target]
        target_node = self.topology.core_node(target)
        mtype = MsgType.FWD_GETX if as_writer else MsgType.INV
        request_lat = self._send(mtype, home, target_node)
        blocks = l1.blocks_of(region)
        if not blocks:
            reply_lat = self._send(MsgType.NACK, target_node, home)
            entry.drop(target)
            return self._probe_leg_latency(home, target, 0, request_lat, reply_lat)
        overlapping = [b for b in blocks if b.range.overlaps(req)]
        self.mshrs[target].note_multi_block(from_cpu=False, blocks=len(overlapping))
        payload, used = self._writeback_blocks(target, overlapping)
        for block in overlapping:
            l1.remove(block)
            self._retire_block(target, block, invalidated=True)
        remaining = len(blocks) - len(overlapping)
        if payload:
            self._note_supplier_snoop_latency(
                target,
                request_lat + self.config.l1.hit_latency + max(len(overlapping) - 1, 0))
            reply_lat = self._send(MsgType.WBACK, target_node, home, payload, used)
            self.stats.writebacks += 1
        elif remaining:
            reply_lat = self._send(MsgType.ACK_S, target_node, home)
        else:
            reply_lat = self._send(MsgType.ACK, target_node, home)
        self._refresh(entry, target, region)
        return self._probe_leg_latency(
            home, target, max(len(overlapping), 1), request_lat, reply_lat
        )


class ProtozoaMWProtocol(_OverlapAwareProtocol):
    """Multiple non-overlapping writers per region (word-granularity SWMR)."""

    kind = ProtocolKind.PROTOZOA_MW

    def _probe(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry, home: int) -> List[int]:
        legs: List[int] = []
        obs = self._obs
        if not is_write:
            # Readers coexist freely; only (potential) writers are probed.
            for target in sorted(entry.writers - {core}):
                if obs is not None:
                    self._obs_action("probe_read", target)
                legs.append(self._probe_overlap_read(target, region, req, home, entry))
            return legs
        for target in sorted(entry.sharers() - {core}):
            if obs is not None:
                self._obs_action("probe_write", target)
            legs.append(
                self._probe_overlap_write(
                    target, region, req, home, entry, as_writer=target in entry.writers
                )
            )
        return legs

    def _grant(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry) -> LineState:
        if is_write:
            entry.writers.add(core)
            entry.readers.discard(core)
            return LineState.M
        if not entry.sharers() - {core}:
            # Exclusive grant: track as a (potential) writer so a silent
            # E->M upgrade is still probed by later requests.
            entry.writers.add(core)
            entry.readers.discard(core)
            return LineState.E
        if core not in entry.writers:
            entry.readers.add(core)
        return LineState.S


class ProtozoaSWMRProtocol(_OverlapAwareProtocol):
    """One writer coexisting with non-overlapping readers (Section 3.5)."""

    kind = ProtocolKind.PROTOZOA_SW_MR

    def _revoke_writer(self, target: int, region: int, req: WordRange,
                       home: int, entry: DirectoryEntry) -> int:
        """A new writer appears: the old writer loses write permission.

        All its dirty sub-blocks are written back; overlapping sub-blocks
        are invalidated; non-overlapping ones are downgraded to S and kept
        (the downgraded writer "remains a sharer").
        """
        l1 = self.l1s[target]
        target_node = self.topology.core_node(target)
        request_lat = self._send(MsgType.FWD_GETX, home, target_node)
        blocks = l1.blocks_of(region)
        if not blocks:
            reply_lat = self._send(MsgType.NACK, target_node, home)
            entry.drop(target)
            return self._probe_leg_latency(home, target, 0, request_lat, reply_lat)
        dirty_blocks = [b for b in blocks if b.dirty]
        self.mshrs[target].note_multi_block(from_cpu=False, blocks=len(blocks))
        payload, used = self._writeback_blocks(target, dirty_blocks)
        remaining = 0
        for block in blocks:
            if block.range.overlaps(req):
                l1.remove(block)
                self._retire_block(target, block, invalidated=True)
            else:
                block.dirty_mask = 0
                block.state = LineState.S
                remaining += 1
        if payload:
            self._note_supplier_snoop_latency(
                target, request_lat + self.config.l1.hit_latency + len(blocks) - 1)
            reply_lat = self._send(MsgType.WBACK, target_node, home, payload, used)
            self.stats.writebacks += 1
        elif remaining:
            reply_lat = self._send(MsgType.ACK_S, target_node, home)
        else:
            reply_lat = self._send(MsgType.ACK, target_node, home)
        entry.writers.discard(target)
        if remaining:
            entry.readers.add(target)
        else:
            entry.drop(target)
        return self._probe_leg_latency(home, target, len(blocks), request_lat, reply_lat)

    def _probe(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry, home: int) -> List[int]:
        if len(entry.writers) > 1:
            raise ProtocolError(f"SW+MR tracked multiple writers for R{region}")
        legs: List[int] = []
        obs = self._obs
        writer = entry.sole_owner()
        if not is_write:
            if writer is not None and writer != core:
                if obs is not None:
                    self._obs_action("probe_read", writer)
                legs.append(self._probe_overlap_read(writer, region, req, home, entry))
            return legs
        if writer is not None and writer != core:
            if obs is not None:
                self._obs_action("revoke_writer", writer)
            legs.append(self._revoke_writer(writer, region, req, home, entry))
        for target in sorted(entry.readers - {core}):
            if obs is not None:
                self._obs_action("probe_write", target)
            legs.append(
                self._probe_overlap_write(target, region, req, home, entry, as_writer=False)
            )
        return legs

    def _grant(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry) -> LineState:
        if is_write:
            entry.writers = {core}
            entry.readers.discard(core)
            return LineState.M
        if entry.sole_owner() == core:
            return LineState.S if entry.readers - {core} else LineState.E
        if not entry.sharers() - {core}:
            # Exclusive grant is tracked as the writer (silent E->M).
            entry.writers = {core}
            entry.readers.discard(core)
            return LineState.E
        entry.readers.add(core)
        return LineState.S
