"""Run-time coherence invariant checking (the paper's Section 3.6).

The paper argues correctness as: (i) with fixed-granularity predictions,
Protozoa's transitions match MESI's; (ii) Protozoa-SW implements the
Single-Writer-or-Multiple-Readers (SWMR) invariant at REGION granularity;
(iii) Protozoa-MW (and SW+MR) implement SWMR effectively at *word*
granularity.  This module turns those statements into executable checks,
run after every transaction when ``SystemConfig.check_invariants`` is set
and exercised heavily by the random tester.

Checked per region:

* word-granularity SWMR — a word covered by any M/E block at one core is
  covered by no block at any other core (for MESI/Protozoa-SW the stronger
  region-granularity form: a region with a writer has no other sharers);
* the directory is a *superset* of true sharers (clean drops are silent,
  so strict equality is not required), writers/readers sets respect each
  protocol's arity, and every dirty word belongs to a directory writer;
* structural cache integrity (no overlapping blocks, budgets respected).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import InvariantViolation
from repro.common.params import ProtocolKind
from repro.memory.block import LineState

if TYPE_CHECKING:  # pragma: no cover
    from repro.coherence.protocol_base import CoherenceProtocol


def check_region(protocol: "CoherenceProtocol", region: int) -> None:
    """Assert all coherence invariants for one region."""
    kind = protocol.config.protocol
    words = protocol.config.words_per_region
    entry = protocol.directory.peek(region)
    readers = entry.readers if entry else set()
    writers = entry.writers if entry else set()

    write_holder = [None] * words  # core with M/E coverage per word
    read_holders = [set() for _ in range(words)]
    cores_with_blocks = set()
    cores_with_excl = set()

    for core, l1 in enumerate(protocol.l1s):
        for block in l1.blocks_of(region):
            cores_with_blocks.add(core)
            if block.state in (LineState.M, LineState.E):
                cores_with_excl.add(core)
            for word in block.range.words():
                if block.state in (LineState.M, LineState.E):
                    if write_holder[word] is not None:
                        raise InvariantViolation(
                            f"R{region}:{word} writable at cores "
                            f"{write_holder[word]} and {core}"
                        )
                    write_holder[word] = core
                read_holders[word].add(core)

    # Word-granularity SWMR: a writable word has exactly one holder.
    for word in range(words):
        holder = write_holder[word]
        if holder is not None and read_holders[word] != {holder}:
            raise InvariantViolation(
                f"R{region}:{word} writable at {holder} but cached at "
                f"{sorted(read_holders[word])}"
            )

    # Region-granularity SWMR for the single-writer protocols.
    if kind in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_SW):
        if cores_with_excl and cores_with_blocks != cores_with_excl:
            raise InvariantViolation(
                f"R{region}: region-level SWMR broken — exclusive at "
                f"{sorted(cores_with_excl)}, cached at {sorted(cores_with_blocks)}"
            )
        if len(cores_with_excl) > 1:
            raise InvariantViolation(
                f"R{region}: multiple exclusive holders {sorted(cores_with_excl)}"
            )

    # Directory superset: every caching core must be tracked.
    untracked = cores_with_blocks - (readers | writers)
    if untracked:
        raise InvariantViolation(
            f"R{region}: cores {sorted(untracked)} cache blocks but are "
            f"untracked (readers={sorted(readers)}, writers={sorted(writers)})"
        )

    # Every exclusive holder must be tracked as a writer.
    missing = cores_with_excl - writers
    if missing:
        raise InvariantViolation(
            f"R{region}: exclusive holders {sorted(missing)} not in writers "
            f"{sorted(writers)}"
        )

    # Writer-arity per protocol.
    if kind is not ProtocolKind.PROTOZOA_MW and len(writers) > 1:
        raise InvariantViolation(
            f"R{region}: {kind.value} tracked multiple writers {sorted(writers)}"
        )
    # Single-writer protocols never track a writer alongside other sharers.
    if kind in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_SW) and writers:
        others = (readers | writers) - writers
        if others:
            raise InvariantViolation(
                f"R{region}: {kind.value} tracks writer {sorted(writers)} with "
                f"other sharers {sorted(others)}"
            )

    # Structural integrity of every L1 (cheap for the touched sets).
    for l1 in protocol.l1s:
        l1.check_integrity()
