"""Coherence message vocabulary and byte-size rules.

All control messages are 8 bytes (the paper's base-protocol metadata size).
Data-carrying messages add 8 bytes per payload word on top of an 8-byte
header; the header is accounted as control ("message and data identifiers",
paper Section 4.1), the payload as data.

Message types follow the paper: the Protozoa additions over MESI are the
``WBACK_LAST`` (LAST PUTX) notification and the non-overlapping
acknowledgment ``ACK_S`` (Table 3).
"""

from __future__ import annotations

import enum

from repro.common.params import CONTROL_MESSAGE_BYTES
from repro.common.addresses import WORD_BYTES


class MsgCategory(enum.Enum):
    """Control-traffic buckets of Figure 10 (+ data headers)."""

    REQ = "req"  # GETS / GETX / UPGRADE
    FWD = "fwd"  # forwarded requests / downgrades from the directory
    INV = "inv"  # invalidations
    ACK = "ack"  # ACK and ACK-S responses
    NACK = "nack"  # stale-sharer negative acknowledgments
    HDR = "hdr"  # headers of data-carrying messages (DATA / WBACK)


class MsgType(enum.Enum):
    """Every message the four protocols exchange."""

    GETS = ("GETS", MsgCategory.REQ, False)
    GETX = ("GETX", MsgCategory.REQ, False)
    UPGRADE = ("UPGRADE", MsgCategory.REQ, False)
    FWD_GETS = ("Fwd-GETS", MsgCategory.FWD, False)
    FWD_GETX = ("Fwd-GETX", MsgCategory.FWD, False)
    INV = ("INV", MsgCategory.INV, False)
    ACK = ("ACK", MsgCategory.ACK, False)
    ACK_S = ("ACK-S", MsgCategory.ACK, False)
    NACK = ("NACK", MsgCategory.NACK, False)
    DATA = ("DATA", MsgCategory.HDR, True)
    WBACK = ("WBACK", MsgCategory.HDR, True)
    WBACK_LAST = ("WBACK-LAST", MsgCategory.HDR, True)
    MEM_READ = ("MemRead", MsgCategory.REQ, False)  # home tile -> memory ctrl
    MEM_DATA = ("MemData", MsgCategory.HDR, True)  # memory ctrl -> home tile
    MEM_WRITE = ("MemWrite", MsgCategory.HDR, True)  # L2 eviction to memory

    def __init__(self, label: str, category: MsgCategory, carries_data: bool):
        self.label = label
        self.category = category
        self.carries_data = carries_data

    def size_bytes(self, payload_words: int = 0) -> int:
        """Total on-wire bytes for this message."""
        if payload_words and not self.carries_data:
            raise ValueError(f"{self.label} cannot carry data")
        return CONTROL_MESSAGE_BYTES + payload_words * WORD_BYTES

    @property
    def control_bytes(self) -> int:
        return CONTROL_MESSAGE_BYTES
