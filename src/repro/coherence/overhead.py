"""Coherence metadata storage model (paper Section 3.6).

Quantifies each protocol's directory/metadata cost, reproducing the
paper's complexity claims as numbers:

* MESI and Protozoa-SW: one P-bit sharer vector per directory entry
  (identical size — Protozoa-SW re-uses the MESI structure);
* Protozoa-SW+MR: one P-bit vector plus ceil(log2 P) bits to name the
  single writer;
* Protozoa-MW: two P-bit vectors (readers and writers separately);
* control messages stay at 8 bytes for every protocol (Table 3 notes "no
  change to the size of control metadata is required").

The in-cache directory collocates one entry per L2 region, so total
directory storage scales with L2 capacity / region size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.params import ProtocolKind, SystemConfig


@dataclass(frozen=True)
class DirectoryOverhead:
    """Metadata sizing for one configuration."""

    protocol: ProtocolKind
    cores: int
    entries: int
    bits_per_entry: int

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry

    @property
    def total_bytes(self) -> int:
        return (self.total_bits + 7) // 8

    def overhead_vs_l2(self, l2_bytes: int) -> float:
        """Directory bytes as a fraction of the L2 data array."""
        return self.total_bytes / float(l2_bytes)


def entry_bits(protocol: ProtocolKind, cores: int) -> int:
    """Directory entry size in bits for ``cores`` sharers."""
    vector = cores
    if protocol in (ProtocolKind.MESI, ProtocolKind.PROTOZOA_SW):
        return vector
    if protocol is ProtocolKind.PROTOZOA_SW_MR:
        return vector + max(math.ceil(math.log2(cores)), 1)
    if protocol is ProtocolKind.PROTOZOA_MW:
        return 2 * vector
    raise ValueError(f"unknown protocol {protocol}")


def directory_overhead(config: SystemConfig) -> DirectoryOverhead:
    """Directory sizing for a machine configuration (in-cache directory)."""
    entries = config.l2.capacity_bytes // config.region_bytes
    return DirectoryOverhead(
        protocol=config.protocol,
        cores=config.cores,
        entries=entries,
        bits_per_entry=entry_bits(config.protocol, config.cores),
    )


def overhead_table(cores: int = 16) -> str:
    """Render the Section 3.6 comparison for all four protocols."""
    lines = [f"{'protocol':>10} {'entry bits':>11} {'vs MESI':>8}"]
    base = entry_bits(ProtocolKind.MESI, cores)
    for protocol in ProtocolKind:
        bits = entry_bits(protocol, cores)
        lines.append(f"{protocol.short_name:>10} {bits:>11} {bits / base:>8.2f}")
    return "\n".join(lines)
