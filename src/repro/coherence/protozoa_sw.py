"""Protozoa-SW: adaptive storage/communication, fixed coherence granularity.

The L1s are Amoeba caches holding variable-granularity sub-blocks; data
messages carry only the predicted/requested words.  Coherence is still
enforced at REGION granularity with a single writer: when any core writes
any word of a region, every other sharer of the region is invalidated
entirely (which is what leaves false sharing intact — the protocol's
deliberate limitation that SW+MR and MW lift).

The paper's add-ons over MESI (Section 3.3) appear here naturally:

* *Additional GETXs from the owner* — the directory checks whether a write
  request comes from the tracked owner and simply returns the data.
* *Multiple writebacks from the owner* — handled by the engine's
  WBACK/WBACK-LAST split: the directory keeps tracking a sharer until the
  final block of the region leaves its cache.
* Multi-block snoops use the CHECK/GATHER/WRITEBACK sequence: one gathered
  writeback message per coherence operation, regardless of how many
  sub-blocks the target held.
"""

from __future__ import annotations

from typing import List

from repro.coherence.directory import DirectoryEntry
from repro.coherence.messages import MsgType
from repro.coherence.protocol_base import CoherenceProtocol
from repro.common.errors import ProtocolError
from repro.common.params import ProtocolKind
from repro.common.wordrange import WordRange
from repro.memory.block import LineState


class ProtozoaSWProtocol(CoherenceProtocol):
    """Single-writer Protozoa: variable data movement, region coherence."""

    kind = ProtocolKind.PROTOZOA_SW

    def _probe(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry, home: int) -> List[int]:
        if len(entry.writers) > 1:
            raise ProtocolError(f"Protozoa-SW tracked multiple owners for R{region}")
        legs: List[int] = []
        obs = self._obs
        owner = entry.sole_owner()
        if not is_write:
            if owner is not None and owner != core:
                if obs is not None:
                    self._obs_action("downgrade", owner)
                legs.append(self._downgrade_region_at(owner, region, home))
            return legs
        if owner == core:
            # Additional GETX from the owner: serve data, probe nobody.
            if obs is not None:
                self._obs_action("owner_getx", core)
            return legs
        for target in sorted(entry.sharers() - {core}):
            mtype = MsgType.FWD_GETX if target in entry.writers else MsgType.INV
            if obs is not None:
                self._obs_action("invalidate", target)
            legs.append(self._invalidate_region_at(target, region, home, mtype))
        return legs

    def _grant(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry) -> LineState:
        if is_write:
            entry.readers.discard(core)
            if entry.readers:
                raise ProtocolError(
                    f"R{region}: readers {sorted(entry.readers)} survive a GETX"
                )
            entry.writers = {core}
            return LineState.M
        if entry.sole_owner() == core:
            # Owner read-missing on further words of its own region: it
            # remains the exclusive region owner.
            return LineState.E
        if not entry.sharers() - {core}:
            entry.readers.discard(core)
            entry.writers = {core}
            return LineState.E
        entry.readers.add(core)
        return LineState.S
