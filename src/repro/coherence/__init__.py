"""Coherence protocols: MESI baseline and the Protozoa family."""

from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.messages import MsgCategory, MsgType
from repro.coherence.mesi import MESIProtocol
from repro.coherence.protozoa_sw import ProtozoaSWProtocol
from repro.coherence.protozoa_multi import ProtozoaMWProtocol, ProtozoaSWMRProtocol
from repro.coherence.protocol_base import CoherenceProtocol
from repro.coherence.snapshot import ProtocolSnapshot, canonical_key, restore, snapshot

__all__ = [
    "CoherenceProtocol",
    "ProtocolSnapshot",
    "canonical_key",
    "restore",
    "snapshot",
    "Directory",
    "DirectoryEntry",
    "MESIProtocol",
    "MsgCategory",
    "MsgType",
    "ProtozoaMWProtocol",
    "ProtozoaSWMRProtocol",
    "ProtozoaSWProtocol",
]
