"""The shared coherence-transaction engine.

All four protocols (MESI, Protozoa-SW, Protozoa-SW+MR, Protozoa-MW) run on
this engine.  Every memory access is one *atomic transaction*: the directory
activates a single coherence operation per REGION at a time (as in the
paper), and the engine serializes transactions globally, emitting the full
explicit message chain — request, forwarded probes/invalidations, writeback
and acknowledgment replies, and the data response — with per-message byte
sizes routed over the mesh.  Latency is the critical path through the chain;
parallel probes contribute their slowest leg.

Subclasses implement two hooks:

* :meth:`_probe` — the directory's forward phase for a miss: which sharers
  are probed, what each L1 invalidates/downgrades/writes back, and how the
  directory entry is updated for the probed cores.
* :meth:`_grant` — the directory's final bookkeeping for the requester and
  the L1 state granted for the incoming block.

Everything else — request/DATA legs, L2/memory fetch, variable-granularity
install with block merging, capacity evictions with WBACK/WBACK-LAST
semantics, used/unused word classification, golden-value verification —
is shared here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.messages import MsgType
from repro.common.addresses import AddressMap
from repro.common.errors import InvariantViolation, ProtocolError, SimulationError
from repro.common.params import L1Organization, ProtocolKind, SystemConfig
from repro.common.wordrange import WordRange, popcount
from repro.interconnect.accounting import NetworkAccountant
from repro.interconnect.mesh import MeshTopology
from repro.memory.amoeba_cache import AmoebaCache
from repro.memory.backing import L2Store
from repro.memory.block import Block, LineState
from repro.memory.fixed_cache import FixedCache
from repro.memory.mshr import MSHRFile
from repro.memory.sector_cache import SectorCache
from repro.memory.predictor import SpatialPredictor, make_predictor
from repro.obs.events import F_ACTIONS, F_GRANTED, F_MSGS
from repro.stats.counters import RunStats

_STATE_RANK = {LineState.S: 0, LineState.E: 1, LineState.M: 2}


class CoherenceProtocol:
    """Base engine; see module docstring."""

    kind: ProtocolKind = ProtocolKind.MESI

    # Every directory-side action any engine reports, in sorted order.
    # attach_obs preassigns one scratch counter slot per kind so the
    # per-action cost is a list index add (see _obs_action).
    ACTION_KINDS = ("downgrade", "invalidate", "owner_getx",
                    "probe_read", "probe_write", "revoke_writer")

    def __init__(self, config: SystemConfig, stats: Optional[RunStats] = None):
        self.config = config
        self.amap = AddressMap(config.region_bytes)
        self.topology = MeshTopology(config.network)
        self.net = NetworkAccountant(self.topology)
        self.stats = stats if stats is not None else RunStats(config.cores)
        self.directory = Directory()
        capacity_regions = config.l2.capacity_bytes // config.region_bytes
        self.l2 = L2Store(config.words_per_region, capacity_regions)
        self.l2.recall_hook = self._recall_region
        self.l1s = [self._make_l1() for _ in range(config.cores)]
        self.mshrs = [MSHRFile() for _ in range(config.cores)]
        self.predictors: List[Optional[SpatialPredictor]] = [
            make_predictor(config.predictor) if config.protocol.adaptive_storage else None
            for _ in range(config.cores)
        ]
        self._golden: Dict[int, List[int]] = {}
        self._seq = 0
        # Per-access invariants hoisted out of the transaction loop: these
        # never change after construction, and attribute chains through the
        # frozen config dataclasses are measurably expensive per access.
        self._hit_latency = config.l1.hit_latency
        self._check_invariants = config.check_invariants
        self._check_values = config.check_values
        # (core, words-mask) per dirty supplier of the current transaction;
        # consumed by the 3-hop forwarding decision.
        self._txn_suppliers: List[Tuple[int, int]] = []
        # Optional observer called for every message as
        # (MsgType, src_node, dst_node, payload_words); used by the
        # walkthrough example and the protocol scenario tests.
        self.trace_hook = None
        # Observability (repro.obs): None when disabled, which keeps every
        # hook in the transaction loop at one attribute load + None test.
        # ``_obs_events`` aliases the session's event trace and
        # ``_obs_scratch`` the flat scratch-counter slot list so the hot
        # path never chases two attributes; slot indices (hit/miss by op,
        # action by kind) are assigned once in attach_obs.
        self._obs = None
        self._obs_events = None
        self._obs_scratch = None
        self._sc_hit = (0, 0)    # (read, write) — indexed by is_write
        self._sc_miss = (0, 0)
        self._sc_action: Dict[str, int] = {}
        # Batch execution (repro.system.batch): called as
        # (core, region, victim_or_None) before this engine reads the
        # dirty/touched masks of blocks the batch runner may still hold
        # deferred hit bits for — evictions and L2 recalls reach regions
        # the runner did not synchronize around the current scalar call.
        self.batch_hook = None

    def attach_obs(self, obs) -> None:
        """Wire an :class:`repro.obs.Observability` session into this engine.

        Everything expensive happens here, once, so the per-event cost
        stays off the hot path:

        * the event trace needs no wiring at all — :meth:`_access` and
          :meth:`_send` emit to it inline, gated on an *open record*, so
          sampled-out transactions never pay a Python call per message
          (``trace_hook`` stays a purely user-facing hook);
        * the metrics registry hands out *scratch* counter slots — hit,
          miss, and directory-action counts become plain list-index adds,
          folded into labeled series on any registry read — and *bound*
          histograms for the network accountant, whose value-indexed
          count lists are installed directly on the accountant and
          incremented inline per transfer (no closure call),
          preallocated to the topology's maximum hop count and the
          widest message's flit count.

        Detach by passing ``None`` (scratch slots and the accountant's
        histogram lists are released; ``trace_hook`` is untouched).
        """
        self._obs = obs
        self._obs_events = obs.events if obs is not None else None
        net = self.net
        if obs is None:
            self._obs_scratch = None
            self._sc_action = {}
            net.obs_hop_counts = net.obs_flit_counts = None
            net.obs_hop_hist = net.obs_flit_hist = None
            return
        if obs.metrics is not None:
            scratch = obs.metrics.counter_scratch()
            self._sc_hit = (
                scratch.slot("repro_txn_total", op="read", outcome="hit"),
                scratch.slot("repro_txn_total", op="write", outcome="hit"),
            )
            self._sc_miss = (
                scratch.slot("repro_txn_total", op="read", outcome="miss"),
                scratch.slot("repro_txn_total", op="write", outcome="miss"),
            )
            self._sc_action = {
                kind: scratch.slot("repro_actions_total", kind=kind)
                for kind in self.ACTION_KINDS
            }
            self._obs_scratch = scratch.slots
            hops = obs.metrics.bound_histogram(
                "repro_message_hops", max_value=self.topology.max_hops)
            flits = obs.metrics.bound_histogram(
                "repro_message_flits",
                max_value=net.max_flits(
                    MsgType.WBACK.size_bytes(self.config.words_per_region)))
            net.obs_hop_counts = hops.counts
            net.obs_flit_counts = flits.counts
            net.obs_hop_hist = hops
            net.obs_flit_hist = flits

    def _obs_action(self, kind: str, target: int) -> None:
        """Report one directory-side action (scratch counter + event ring).

        Engines call this only after an ``is not None`` test on
        ``self._obs``, so the disabled path never pays the call.
        """
        sc = self._obs_scratch
        if sc is not None:
            sc[self._sc_action[kind]] += 1
        events = self._obs_events
        if events is not None:
            rec = events._open
            if rec is not None:
                rec[F_ACTIONS].append([kind, target])

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_l1(self):
        geom = self.config.l1
        if not self.config.protocol.adaptive_storage:
            return FixedCache(geom.fixed_sets(self.config.block_bytes), geom.fixed_ways)
        if self.config.l1_organization is L1Organization.SECTOR:
            return SectorCache(geom.fixed_sets(self.config.region_bytes),
                               geom.fixed_ways, self.config.words_per_region)
        return AmoebaCache(geom.sets, geom.set_bytes, geom.tag_bytes)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def read(self, core: int, addr: int, size: int = 8, pc: int = 0) -> int:
        """Simulate a load; returns its latency in cycles."""
        return self._access(core, False, addr, size, pc)

    def write(self, core: int, addr: int, size: int = 8, pc: int = 0) -> int:
        """Simulate a store; returns its latency in cycles."""
        return self._access(core, True, addr, size, pc)

    def flush(self) -> None:
        """End-of-run: drain every L1 and classify fetched words.

        Dirty blocks are patched into the L2 (data must survive the
        drain); no messages are charged — the run is over and the paper's
        traffic metrics cover steady-state execution only.
        """
        for core, l1 in enumerate(self.l1s):
            for block in list(l1):
                if block.dirty:
                    self.l2.ensure_present(block.region)
                    self.l2.patch(block.region, block.range, list(block.data))
                self._retire_block(core, block, invalidated=False)
                l1.remove(block)
                self.directory.entry(block.region).drop(core)

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    def _access(self, core: int, is_write: bool, addr: int, size: int, pc: int) -> int:
        if not 0 <= core < self.config.cores:
            raise SimulationError(f"core {core} out of range")
        region, rng = self.amap.access_range(addr, size)
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        l1 = self.l1s[core]
        mask = rng.mask
        # Coverage scan: one pass over the region's resident blocks.  Blocks
        # that miss ``rng`` contribute no bits inside ``mask``, so filtering
        # for overlap first is pure overhead.
        covered_r = 0
        covered_w = 0
        for block in l1.blocks_of(region):
            state = block.state
            if state is LineState.S:
                covered_r |= block.range.mask
            elif state is LineState.M or state is LineState.E:
                bmask = block.range.mask
                covered_r |= bmask
                covered_w |= bmask
        if mask & ~(covered_w if is_write else covered_r) == 0:
            if is_write:
                stats.write_hits += 1
                self._do_write(core, region, rng)
            else:
                stats.read_hits += 1
                self._do_read(core, region, rng)
            # Hits send no messages, so the whole observability cost is
            # one scratch add and one sealed-record call at the end.
            sc = self._obs_scratch
            if sc is not None:
                sc[self._sc_hit[is_write]] += 1
            obs_events = self._obs_events
            if obs_events is not None:
                # Sampled-out fast path, inlined from EventTrace.hit():
                # at the env-default 1-in-8 rate most hits need only the
                # hit counter (seen/sampled_out are derived), and the
                # call into hit() is the bulk of their cost.  Keep in
                # lockstep with _admit().
                skip = obs_events._skip_left
                if skip and not obs_events._admit_left:
                    obs_events._skip_left = skip - 1
                    obs_events.hits += 1
                else:
                    obs_events.hit(core, is_write, addr, size, pc,
                                   self._hit_latency)
            return self._hit_latency

        # Miss path: open the record first so messages/actions/grant
        # emitted while serving the miss attach to it.
        obs_events = self._obs_events
        if obs_events is not None:
            # Sampled-out fast path, inlined (see the hit path above);
            # the miss itself is counted after _miss below.
            skip = obs_events._skip_left
            if skip and not obs_events._admit_left:
                obs_events._skip_left = skip - 1
                obs_events._open = None
            else:
                obs_events.begin(core, is_write, addr, size, pc)
        latency = self._miss(core, is_write, region, rng, pc, covered_r & mask)
        if is_write:
            self._do_write(core, region, rng)
        else:
            self._do_read(core, region, rng)
        if self._check_invariants:
            self.check_region_invariants(region)
        sc = self._obs_scratch
        if sc is not None:
            sc[self._sc_miss[is_write]] += 1
        if obs_events is not None:
            if obs_events._open is None:
                obs_events.misses += 1
            else:
                obs_events.end(latency, hit=False)
        return latency

    # -- batch-execution hooks (repro.system.batch) ---------------------

    def coverage_masks(self, core: int, region: int) -> Tuple[int, int]:
        """(covered_r, covered_w) of one (core, region) — the hit test's
        inputs, exactly as :meth:`_access` computes them."""
        covered_r = 0
        covered_w = 0
        for block in self.l1s[core].blocks_of(region):
            state = block.state
            if state is LineState.S:
                covered_r |= block.range.mask
            elif state is LineState.M or state is LineState.E:
                bmask = block.range.mask
                covered_r |= bmask
                covered_w |= bmask
        return covered_r, covered_w

    def apply_deferred_hits(self, core: int, region: int, amask: int,
                            wmask: int, extra: Optional[Block] = None) -> int:
        """Land deferred hit bits on (core, region)'s blocks.

        Replays what :meth:`_do_read`/:meth:`_do_write` would have done for
        a union of hits: OR ``amask`` into touched masks, ``wmask`` into
        dirty masks, silent E->M on every block receiving a written word.
        ``extra`` is a block already pulled out of the cache (an eviction
        victim) that must still receive its share.  Returns the union of
        the covered words so the caller can keep any residue pending (a
        multi-block eviction surfaces victims one at a time).
        """
        blocks = self.l1s[core].blocks_of(region)
        if extra is not None:
            blocks.append(extra)
        landed = 0
        for block in blocks:
            bmask = block.range.mask
            landed |= bmask
            touched = amask & bmask
            if touched:
                block.touched_mask |= touched
            written = wmask & bmask
            if written:
                block.dirty_mask |= written
                if block.state is LineState.E:
                    block.state = LineState.M
        return landed

    def _miss(self, core: int, is_write: bool, region: int, rng: WordRange,
              pc: int, covered_readable: int) -> int:
        mshr = self.mshrs[core]
        mshr.allocate(region)
        try:
            req = self._request_range(core, region, rng, is_write, pc)
            if not req.covers(rng):
                req = req.span(rng)
            # The new block will merge with every resident block it
            # overlaps, so coherence permission must be acquired for the
            # whole merged span (iterate to a fixpoint: spanning can pull
            # in further blocks).  If any merged-in block is writable, the
            # merged block stays M, so the request must be exclusive even
            # for a load (read-for-ownership merge).
            l1 = self.l1s[core]
            while True:
                wider = req
                for block in l1.overlapping(region, req):
                    wider = wider.span(block.range)
                if wider == req:
                    break
                req = wider
            exclusive = is_write or any(
                b.state.writable for b in l1.overlapping(region, req)
            )
            payload_mask = req.to_mask() & ~self._readable_mask(core, region, req)
            upgrade = is_write and payload_mask == 0
            if upgrade:
                self.stats.upgrade_misses += 1
            elif is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
            latency, granted = self._serve_miss(core, region, req, exclusive, pc, payload_mask)
            values = self.l2.read(region, req)
            self._install(core, region, req, values, granted, pc, rng.start,
                          payload_mask, exclusive)
            self.stats.miss_latency_total += latency
            self.stats.miss_latency.record(latency)
            return self.config.l1.hit_latency + latency
        finally:
            mshr.release(region)

    def _readable_mask(self, core: int, region: int, req: WordRange) -> int:
        have = 0
        for block in self.l1s[core].overlapping(region, req):
            if block.state.readable:
                have |= block.range.to_mask()
        return have & req.to_mask()

    def _request_range(self, core: int, region: int, rng: WordRange,
                       is_write: bool, pc: int) -> WordRange:
        """Storage/communication granularity for this miss."""
        predictor = self.predictors[core]
        if predictor is None:
            return self.amap.full_range()
        predicted = predictor.predict(pc, region, rng, is_write, self.config.words_per_region)
        return predicted.span(rng)

    # ------------------------------------------------------------------
    # Directory-side transaction skeleton
    # ------------------------------------------------------------------

    def _serve_miss(self, core: int, region: int, req: WordRange, is_write: bool,
                    pc: int, payload_mask: int) -> Tuple[int, LineState]:
        home = self.topology.home_node(region)
        core_node = self.topology.core_node(core)
        entry = self.directory.lookup(region)
        upgrade = is_write and payload_mask == 0
        req_type = MsgType.UPGRADE if upgrade else (MsgType.GETX if is_write else MsgType.GETS)
        latency = self._send(req_type, core_node, home)
        latency += self._l2_fetch(region, home)
        self._txn_suppliers = []
        legs = self._probe(core, region, req, is_write, entry, home)
        granted = self._grant(core, region, req, is_write, entry)
        obs_events = self._obs_events
        if obs_events is not None:
            rec = obs_events._open
            if rec is not None:
                rec[F_GRANTED] = granted.name
        payload_words = popcount(payload_mask)
        supplier = self._three_hop_supplier(payload_mask) if payload_words else None
        if supplier is not None:
            # 3-hop: the single dirty owner forwards the data directly; the
            # home shrinks its reply to a completion ACK.  The requester
            # finishes when the direct data arrives AND every probe has
            # drained at the home (writebacks/ACKs), whichever is later.
            sup_core, _, snoop_lat = supplier
            supplier_node = self.topology.core_node(sup_core)
            direct = snoop_lat + self._send(MsgType.DATA, supplier_node,
                                            core_node, payload_words)
            completion = max(legs) + self.config.l2.hit_latency if legs else 0
            self._send(MsgType.ACK, home, core_node)  # overlapped completion
            latency += max(direct, completion)
        else:
            if legs:
                latency += max(legs) + self.config.l2.hit_latency
            if payload_words:
                latency += self._send(MsgType.DATA, home, core_node, payload_words)
            else:
                latency += self._send(MsgType.ACK, home, core_node)
        return latency, granted

    def _three_hop_supplier(self, payload_mask: int):
        """The forwarding supplier entry when 3-hop applies, else None.

        Eligible only when exactly one probed core supplied dirty data and
        its writeback covers every payload word — the paper's fallback rule
        for requests that do not (or only partially) overlap the owner.
        """
        if not self.config.three_hop or len(self._txn_suppliers) != 1:
            return None
        entry = self._txn_suppliers[0]
        if payload_mask & ~entry[1]:
            return None
        return entry

    def _probe(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry, home: int) -> List[int]:
        """Forward phase: probe remote sharers.  Returns leg latencies."""
        raise NotImplementedError

    def _grant(self, core: int, region: int, req: WordRange, is_write: bool,
               entry: DirectoryEntry) -> LineState:
        """Requester-side directory update; returns the granted L1 state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared legs
    # ------------------------------------------------------------------

    def _send(self, mtype: MsgType, src_node: int, dst_node: int,
              payload_words: int = 0, used_payload_words: int = 0,
              at_l1: bool = True) -> int:
        """Record one message; returns its network latency."""
        size = mtype.size_bytes(payload_words)
        latency = self.net.transfer(src_node, dst_node, size)
        if self.trace_hook is not None:
            self.trace_hook(mtype, src_node, dst_node, payload_words)
        obs_events = self._obs_events
        if obs_events is not None:
            # Inline EventTrace.message(): transactions whose record was
            # sampled out pay one attribute load + None test per message
            # instead of a Python call.
            rec = obs_events._open
            if rec is not None:
                rec[F_MSGS].append(
                    [mtype.label, src_node, dst_node, payload_words])
        if at_l1:
            self.stats.control_bytes(mtype.category, mtype.control_bytes)
            if payload_words and mtype in (MsgType.WBACK, MsgType.WBACK_LAST):
                self.stats.data_words(used_payload_words, payload_words - used_payload_words)
        if mtype in (MsgType.INV, MsgType.FWD_GETX):
            self.stats.invalidations_sent += 1
        elif mtype is MsgType.NACK:
            self.stats.nacks += 1
        elif mtype is MsgType.ACK_S:
            self.stats.ack_s += 1
        return latency

    def _l2_fetch(self, region: int, home: int) -> int:
        """L2 bank access, fetching the region from memory when absent."""
        latency = self.config.l2.hit_latency
        if not self.l2.present(region):
            mem = self.topology.memory_node(home)
            latency += self._send(MsgType.MEM_READ, home, mem, at_l1=False)
            latency += self.config.memory_latency
            latency += self._send(
                MsgType.MEM_DATA, mem, home, self.config.words_per_region, at_l1=False
            )
            self.l2.ensure_present(region)
            latency += self.config.l2.hit_latency
        else:
            self.l2.ensure_present(region)
        return latency

    def _probe_leg_latency(self, home: int, target: int, blocks: int,
                           request_lat: int, reply_lat: int) -> int:
        """Latency of one probe leg including multi-block gather cycles."""
        gather = max(blocks - 1, 0)
        return request_lat + self.config.l1.hit_latency + gather + reply_lat

    # -- remote-L1 snoop actions ----------------------------------------

    def _writeback_blocks(self, core: int, blocks: List[Block]) -> Tuple[int, int]:
        """Patch the dirty blocks' contents into the L2.

        Returns (payload_words, used_words) for the gathered WBACK message:
        the full contents of every dirty block are transmitted (paper
        Figure 4: the owner "writes back block including all words whether
        overlapping or not").  The words patched are recorded per supplier
        so the 3-hop path can decide whether one owner covered the request.
        """
        payload = 0
        used = 0
        mask = 0
        for block in blocks:
            if not block.dirty:
                continue
            self.l2.patch(block.region, block.range, list(block.data))
            payload += block.range.width
            used += popcount(block.touched_mask)
            mask |= block.range.to_mask()
        if payload:
            self._txn_suppliers.append([core, mask, 0])
        return payload, used

    def _note_supplier_snoop_latency(self, core: int, latency: int) -> None:
        """Record how long until a supplier could start forwarding (3-hop)."""
        for entry in self._txn_suppliers:
            if entry[0] == core:
                entry[2] = latency

    def _invalidate_region_at(self, target: int, region: int, home: int,
                              mtype: MsgType) -> int:
        """Invalidate *all* of ``target``'s blocks of ``region`` (MESI/SW).

        Sends ``mtype`` (INV or FWD_GETX), gathers a single writeback of all
        dirty blocks, retires everything, and updates the directory entry.
        Returns the leg latency.
        """
        l1 = self.l1s[target]
        target_node = self.topology.core_node(target)
        request_lat = self._send(mtype, home, target_node)
        blocks = l1.blocks_of(region)
        self.mshrs[target].note_multi_block(from_cpu=False, blocks=len(blocks))
        if not blocks:
            reply_lat = self._send(MsgType.NACK, target_node, home)
            self.directory.entry(region).drop(target)
            return self._probe_leg_latency(home, target, 0, request_lat, reply_lat)
        payload, used = self._writeback_blocks(target, blocks)
        for block in blocks:
            l1.remove(block)
            self._retire_block(target, block, invalidated=True)
        if payload:
            self._note_supplier_snoop_latency(
                target, request_lat + self.config.l1.hit_latency + len(blocks) - 1)
            reply_lat = self._send(MsgType.WBACK, target_node, home, payload, used)
            self.stats.writebacks += 1
        else:
            reply_lat = self._send(MsgType.ACK, target_node, home)
        self.directory.entry(region).drop(target)
        return self._probe_leg_latency(home, target, len(blocks), request_lat, reply_lat)

    def _downgrade_region_at(self, target: int, region: int, home: int) -> int:
        """Downgrade all of ``target``'s blocks of ``region`` to S (GETS path).

        Dirty blocks are written back (full contents) and kept as clean
        shared copies; the directory moves the core from writers to readers.
        A stale owner (all blocks silently dropped) draws a NACK.
        """
        l1 = self.l1s[target]
        target_node = self.topology.core_node(target)
        request_lat = self._send(MsgType.FWD_GETS, home, target_node)
        blocks = l1.blocks_of(region)
        self.mshrs[target].note_multi_block(from_cpu=False, blocks=len(blocks))
        entry = self.directory.entry(region)
        if not blocks:
            reply_lat = self._send(MsgType.NACK, target_node, home)
            entry.drop(target)
            return self._probe_leg_latency(home, target, 0, request_lat, reply_lat)
        payload, used = self._writeback_blocks(target, blocks)
        for block in blocks:
            block.dirty_mask = 0
            block.state = LineState.S
        if payload:
            self._note_supplier_snoop_latency(
                target, request_lat + self.config.l1.hit_latency + len(blocks) - 1)
            reply_lat = self._send(MsgType.WBACK, target_node, home, payload, used)
            self.stats.writebacks += 1
        else:
            reply_lat = self._send(MsgType.ACK, target_node, home)
        entry.writers.discard(target)
        entry.readers.add(target)
        return self._probe_leg_latency(home, target, len(blocks), request_lat, reply_lat)

    # ------------------------------------------------------------------
    # L1 install / merge / evict
    # ------------------------------------------------------------------

    def _install(self, core: int, region: int, req: WordRange, values: List[int],
                 granted: LineState, pc: int, miss_word: int, payload_mask: int,
                 is_write: bool) -> None:
        l1 = self.l1s[core]
        overlapping = l1.overlapping(region, req)
        self.mshrs[core].note_multi_block(from_cpu=True, blocks=len(overlapping) + 1)
        merged = req
        for block in overlapping:
            merged = merged.span(block.range)
        data: List[int] = []
        for word in merged.words():
            old = next((b for b in overlapping if b.range.contains(word)), None)
            if old is not None:
                data.append(old.value(word))
            else:
                data.append(values[word - req.start])
        state = LineState.M if is_write else granted
        touched = 0
        dirty = 0
        old_fetched = 0
        for block in overlapping:
            touched |= block.touched_mask
            dirty |= block.dirty_mask
            old_fetched |= block.fetched_mask
            if _STATE_RANK[block.state] > _STATE_RANK[state]:
                state = block.state
            l1.remove(block)
        # Words delivered again although previously fetched: classify now so
        # the byte totals match what was actually transmitted.
        refetched = payload_mask & old_fetched
        if refetched:
            used_now = popcount(refetched & touched)
            self.stats.data_words(used_now, popcount(refetched) - used_now)
        new_block = Block(region, merged, state, data, pc, miss_word)
        new_block.touched_mask = touched
        new_block.dirty_mask = dirty
        new_block.fetched_mask = old_fetched | payload_mask
        l1.insert(new_block, lambda victim: self._on_evict(core, victim, region))
        self.stats.record_install(merged.width)
        self.stats.fills += 1
        self.stats.fill_words += popcount(payload_mask)

    def _on_evict(self, core: int, victim: Block,
                  incoming_region: Optional[int] = None) -> None:
        """Capacity eviction: dirty blocks write back, clean ones drop silently.

        ``incoming_region`` is set when the eviction makes room for a block
        being installed: if the victim shares that region, the core is about
        to cache the region again, so the writeback must not be LAST (the
        directory keeps tracking the sharer).
        """
        if self.batch_hook is not None:
            # The victim left the cache before this hook ran; pass it so
            # deferred hit bits land on it before ``victim.dirty`` below.
            self.batch_hook(core, victim.region, victim)
        self.stats.evictions += 1
        region = victim.region
        if victim.dirty:
            home = self.topology.home_node(region)
            remaining = self.l1s[core].blocks_of(region)
            last = not remaining and region != incoming_region
            mtype = MsgType.WBACK_LAST if last else MsgType.WBACK
            used = popcount(victim.touched_mask)
            self._send(mtype, self.topology.core_node(core), home,
                       victim.range.width, used)
            self.l2.patch(region, victim.range, list(victim.data))
            self.stats.writebacks += 1
            if last:
                self.stats.writebacks_last += 1
                self.directory.entry(region).drop(core)
        self._retire_block(core, victim, invalidated=False)

    def _retire_block(self, core: int, block: Block, invalidated: bool) -> None:
        """A block leaves an L1: classify its fill words, train the predictor."""
        fetched = block.fetched_mask
        used = popcount(fetched & block.touched_mask)
        self.stats.data_words(used, popcount(fetched) - used)
        if invalidated:
            self.stats.inval_block_kills += 1
        predictor = self.predictors[core]
        if predictor is not None:
            predictor.train(block.miss_pc, block.miss_word, block.touched_mask,
                            fetched, self.config.words_per_region,
                            invalidated=invalidated)

    # ------------------------------------------------------------------
    # L2 capacity recall (inclusion)
    # ------------------------------------------------------------------

    def _recall_region(self, region: int) -> None:
        if self.batch_hook is not None:
            for target in range(self.config.cores):
                self.batch_hook(target, region, None)
        entry = self.directory.peek(region)
        home = self.topology.home_node(region)
        if entry is not None:
            for target in sorted(entry.sharers()):
                self._invalidate_region_at(target, region, home, MsgType.INV)
        if self.l2.is_dirty(region):
            mem = self.topology.memory_node(home)
            self._send(MsgType.MEM_WRITE, home, mem,
                       self.config.words_per_region, at_l1=False)
        self.directory.forget(region)

    # ------------------------------------------------------------------
    # Data movement with value checking
    # ------------------------------------------------------------------

    def _golden_region(self, region: int) -> List[int]:
        words = self._golden.get(region)
        if words is None:
            words = [0] * self.config.words_per_region
            self._golden[region] = words
        return words

    def _do_read(self, core: int, region: int, rng: WordRange) -> None:
        l1 = self.l1s[core]
        mask = rng.mask
        block = l1.peek(region, rng.start)
        if (block is not None and mask & ~block.range.mask == 0
                and block.state is not LineState.I):
            # Fast path: one resident block covers the whole access.
            if self._check_values:
                golden = self._golden_region(region)
                base = block.range.start
                data = block.data
                for word in range(rng.start, rng.end + 1):
                    if data[word - base] != golden[word]:
                        raise InvariantViolation(
                            f"core {core} read R{region}:{word} = "
                            f"{data[word - base]}, expected {golden[word]}"
                        )
            block.touched_mask |= mask
            return
        golden = self._golden_region(region) if self._check_values else None
        for word in rng.words():
            block = l1.peek(region, word)
            if block is None or not block.state.readable:
                raise ProtocolError(
                    f"core {core} read of R{region} word {word} not satisfied"
                )
            block.touch(WordRange(word, word))
            if golden is not None:
                got = block.value(word)
                if got != golden[word]:
                    raise InvariantViolation(
                        f"core {core} read R{region}:{word} = {got}, "
                        f"expected {golden[word]}"
                    )

    def _do_write(self, core: int, region: int, rng: WordRange) -> None:
        l1 = self.l1s[core]
        mask = rng.mask
        block = l1.peek(region, rng.start)
        if (block is not None and mask & ~block.range.mask == 0
                and (block.state is LineState.M or block.state is LineState.E)):
            # Fast path: one writable block covers the whole access.
            if block.state is LineState.E:
                block.state = LineState.M  # silent E->M upgrade
            golden = self._golden_region(region)
            base = block.range.start
            data = block.data
            seq = self._seq
            for word in range(rng.start, rng.end + 1):
                seq += 1
                data[word - base] = seq
                golden[word] = seq
            self._seq = seq
            block.dirty_mask |= mask
            block.touched_mask |= mask
            return
        golden = self._golden_region(region)
        for word in rng.words():
            block = l1.peek(region, word)
            if block is None or not block.state.writable:
                raise ProtocolError(
                    f"core {core} write of R{region} word {word} not permitted"
                )
            if block.state is LineState.E:
                block.state = LineState.M  # silent E->M upgrade
            self._seq += 1
            block.write(word, self._seq)
            golden[word] = self._seq

    # ------------------------------------------------------------------
    # Model-checking hooks (bounded exploration; repro.modelcheck)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        """Capture the complete mutable protocol state (BFS backtracking)."""
        from repro.coherence.snapshot import snapshot

        return snapshot(self)

    def restore_state(self, snap) -> None:
        """Rewind to a state captured by :meth:`snapshot_state`."""
        from repro.coherence.snapshot import restore

        restore(self, snap)

    def canonical_key(self) -> tuple:
        """Hashable abstract-state key; equal keys behave identically."""
        from repro.coherence.snapshot import canonical_key

        return canonical_key(self)

    # ------------------------------------------------------------------
    # Invariant checking (the paper's correctness section, as code)
    # ------------------------------------------------------------------

    def check_region_invariants(self, region: int) -> None:
        """SWMR + directory-superset checks for one region."""
        from repro.coherence.invariants import check_region

        check_region(self, region)

    def check_all_invariants(self) -> None:
        regions = set()
        for l1 in self.l1s:
            for block in l1:
                regions.add(block.region)
        for region in regions:
            self.check_region_invariants(region)
