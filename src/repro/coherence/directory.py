"""The in-cache coherence directory, indexed at REGION granularity.

All four protocols share this structure (a design point the paper stresses:
Protozoa re-uses the conventional fixed-granularity directory).  Per entry:

* ``readers`` — cores possibly caching some word of the region read-only;
* ``writers`` — cores possibly caching some word dirty.  MESI and
  Protozoa-SW keep at most one writer; Protozoa-SW+MR tracks the single
  writer with log(P) extra bits; Protozoa-MW doubles the sharer vector to a
  full reader vector + writer vector.

Because clean blocks may be dropped silently, the directory is a
*superset* of true sharers — probes of departed cores draw NACKs, exactly
the traffic the paper reports for rev-index et al.

The directory also collects the Figure 11 statistic: every lookup of an
entry in Owned state (>= 1 writer) is bucketed by its sharer census.
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class DirectoryEntry:
    """Sharer bookkeeping for one REGION."""

    __slots__ = ("readers", "writers")

    def __init__(self):
        self.readers: Set[int] = set()
        self.writers: Set[int] = set()

    @property
    def owned(self) -> bool:
        """At least one word of the region may be dirty in some L1."""
        return bool(self.writers)

    @property
    def unused(self) -> bool:
        return not self.readers and not self.writers

    def sharers(self) -> Set[int]:
        """Everyone the directory would probe on a write miss."""
        return self.readers | self.writers

    def sole_owner(self) -> Optional[int]:
        """The owner when exactly one writer is tracked, else None."""
        if len(self.writers) == 1:
            return next(iter(self.writers))
        return None

    def drop(self, core: int) -> None:
        self.readers.discard(core)
        self.writers.discard(core)

    def __repr__(self) -> str:
        return f"DirEntry(readers={sorted(self.readers)}, writers={sorted(self.writers)})"


class Directory:
    """Region -> entry map plus the Owned-state access histogram."""

    def __init__(self):
        self._entries: Dict[int, DirectoryEntry] = {}
        # Figure 11 buckets: accesses to entries in Owned state.
        self.owned_one_owner_only = 0
        self.owned_one_owner_with_sharers = 0
        self.owned_multi_owner = 0

    def entry(self, region: int) -> DirectoryEntry:
        """The entry for ``region``, creating an empty one on first touch."""
        entry = self._entries.get(region)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[region] = entry
        return entry

    def peek(self, region: int) -> Optional[DirectoryEntry]:
        return self._entries.get(region)

    def lookup(self, region: int) -> DirectoryEntry:
        """Entry lookup on the request path; records Figure 11 buckets."""
        entry = self.entry(region)
        if entry.owned:
            if len(entry.writers) > 1:
                self.owned_multi_owner += 1
            elif entry.readers - entry.writers:
                self.owned_one_owner_with_sharers += 1
            else:
                self.owned_one_owner_only += 1
        return entry

    def forget(self, region: int) -> None:
        """Drop an entry entirely (L2 recall path)."""
        self._entries.pop(region, None)

    def snapshot(self):
        """Opaque copy of every entry plus the Figure 11 counters."""
        entries = {
            region: (set(e.readers), set(e.writers))
            for region, e in self._entries.items()
        }
        buckets = (self.owned_one_owner_only, self.owned_one_owner_with_sharers,
                   self.owned_multi_owner)
        return entries, buckets

    def restore(self, snap) -> None:
        """Reinstate a state captured by :meth:`snapshot`."""
        entries, buckets = snap
        self._entries = {}
        for region, (readers, writers) in entries.items():
            entry = DirectoryEntry()
            entry.readers = set(readers)
            entry.writers = set(writers)
            self._entries[region] = entry
        (self.owned_one_owner_only, self.owned_one_owner_with_sharers,
         self.owned_multi_owner) = buckets

    def canonical_state(self):
        """Hashable summary of the tracked sharers (unused entries elided).

        An empty entry behaves identically to an absent one everywhere in
        the engine, so eliding it lets the model checker merge those states.
        """
        return tuple(sorted(
            (region, tuple(sorted(e.readers)), tuple(sorted(e.writers)))
            for region, e in self._entries.items()
            if not e.unused
        ))

    def owned_access_buckets(self) -> Dict[str, int]:
        """Figure 11 histogram: {'1owner', '1owner+sharers', '>1owner'}."""
        return {
            "1owner": self.owned_one_owner_only,
            "1owner+sharers": self.owned_one_owner_with_sharers,
            ">1owner": self.owned_multi_owner,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.items())
